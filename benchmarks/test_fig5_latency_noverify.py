"""Fig. 5 — BcWAN process latency *without* block verification.

Paper setup (section 5.2): 5 PlanetLab gateway nodes, 30 simulated sensors
per node at SF7 / 1 % duty cycle, 128-byte payload + 4-byte header, an EC2
master that mines, block verification disabled.  Reported result: mean
full-exchange latency **1.604 s** over 2000 exchanges, measured from the
first gateway message (the ePk downlink) to the recipient's decryption.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    _emit,
    exchanges_target,
    print_header,
    print_histogram,
    print_row,
)
from repro.core import BcWANNetwork, NetworkConfig

PAPER_MEAN = 1.604


@pytest.fixture(scope="module")
def report():
    network = BcWANNetwork(NetworkConfig(seed=5, verify_blocks=False))
    return network.run(num_exchanges=exchanges_target())


def test_fig5_reproduction(report, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = report.summary

    print_header("Fig. 5 — exchange latency, block verification DISABLED")
    _emit(f"workload: {report.exchanges_launched} exchanges "
          f"({report.completed} completed, {report.failed} lost to radio), "
          f"{report.duration:.0f} simulated seconds, "
          f"chain height {report.chain_height}")
    print_row("", "paper", "measured")
    print_row("mean latency (s)", PAPER_MEAN, summary.mean)
    print_row("median latency (s)", "-", summary.median)
    print_row("p95 latency (s)", "-", summary.p95)
    print_row("max latency (s)", "-", summary.maximum)
    _emit("")
    _emit("latency distribution (the figure's histogram):")
    print_histogram(report.latencies)

    # Shape assertions: near-real-time, single-second regime.
    assert report.completed > 0.8 * report.exchanges_launched
    assert 0.8 < summary.mean < 3.2, (
        f"mean {summary.mean:.3f}s far from the paper's {PAPER_MEAN}s regime"
    )
    assert summary.median < 2.5
