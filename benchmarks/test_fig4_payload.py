"""Fig. 4 — the encrypted message layout, plus node-crypto microbenchmarks.

The figure shows the 34-byte AES bundle (``len | IV | len | ciphertext``);
section 5.1 derives the 128-byte minimum LoRa payload (64 B double
encryption + 64 B signature) plus the 4-byte header.  This benchmark
verifies every number and measures the real cost of each pipeline stage.
"""

from __future__ import annotations

import random

import pytest

from benchmarks.conftest import print_header, print_row
from repro.core.messages import encode_bundle, seal_message, sign_payload, SealedBundle
from repro.crypto import modes, rsa
from repro.lora.frames import DataFrame

RNG = random.Random(0xF16_4)
KEY = bytes(range(32))
PLAINTEXT = b"temp:21.5C"


@pytest.fixture(scope="module")
def ephemeral():
    return rsa.generate_keypair(512, random.Random(1))


@pytest.fixture(scope="module")
def node_key():
    return rsa.generate_keypair(512, random.Random(2))


def test_fig4_layout_numbers(ephemeral, node_key, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    iv, ciphertext = modes.encrypt_cbc(KEY, PLAINTEXT, rng=RNG)
    bundle = encode_bundle(SealedBundle(iv=iv, ciphertext=ciphertext))
    sealed = seal_message(PLAINTEXT, KEY, ephemeral.public_key, rng=RNG)
    signature = sign_payload(sealed, ephemeral.public_key.to_bytes(), node_key)
    frame = DataFrame(sender="dev", encrypted_message=sealed,
                      signature=signature, recipient_address="@R", nonce=1)

    print_header("Fig. 4 — encrypted message layout (paper vs measured)")
    print_row("", "paper", "measured")
    print_row("AES bundle (len+IV+len+ct)", 34, len(bundle))
    print_row("RSA-512 wrapped Em", 64, len(sealed))
    print_row("RSA-512 signature Sig", 64, len(signature))
    print_row("min payload (Em+Sig)", 128, len(sealed) + len(signature))
    print_row("LoRa frame (payload+header)", 132, frame.wire_size())

    assert len(bundle) == 34
    assert len(sealed) == 64
    assert len(signature) == 64
    assert frame.wire_size() == 132


def test_bench_aes_encrypt(benchmark):
    benchmark(lambda: modes.encrypt_cbc(KEY, PLAINTEXT,
                                        rng=random.Random(3)))


def test_bench_rsa_wrap(benchmark, ephemeral):
    benchmark(lambda: seal_message(PLAINTEXT, KEY, ephemeral.public_key,
                                   rng=random.Random(4)))


def test_bench_rsa_sign(benchmark, ephemeral, node_key):
    sealed = seal_message(PLAINTEXT, KEY, ephemeral.public_key,
                          rng=random.Random(5))
    epk = ephemeral.public_key.to_bytes()
    benchmark(lambda: sign_payload(sealed, epk, node_key))


def test_bench_ephemeral_keygen(benchmark):
    counter = iter(range(10**9))
    benchmark(lambda: rsa.generate_keypair(512,
                                           random.Random(next(counter))))
