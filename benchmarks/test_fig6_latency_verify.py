"""Fig. 6 — BcWAN process latency *with* block verification.

Identical workload to Fig. 5, but the gateway daemons verify every
incoming block, which makes the Multichain daemon "stall and become
unresponsive for extended periods upon each block arrival" (section 5.2).
Reported result: mean full-exchange latency **30.241 s**.

The reproduction target is the *regime change*: the same protocol that ran
in ~1.6 s now takes tens of seconds because every blockchain interaction
queues behind block verification.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import (
    _emit,
    exchanges_target,
    print_header,
    print_histogram,
    print_row,
)
from repro.core import BcWANNetwork, NetworkConfig

PAPER_MEAN = 30.241
FIG5_PAPER_MEAN = 1.604


@pytest.fixture(scope="module")
def report():
    network = BcWANNetwork(NetworkConfig(seed=5, verify_blocks=True))
    return network.run(num_exchanges=exchanges_target())


def test_fig6_reproduction(report, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    summary = report.summary

    print_header("Fig. 6 — exchange latency, block verification ENABLED")
    _emit(f"workload: {report.exchanges_launched} exchanges "
          f"({report.completed} completed), "
          f"{report.duration:.0f} simulated seconds")
    print_row("", "paper", "measured")
    print_row("mean latency (s)", PAPER_MEAN, summary.mean)
    print_row("median latency (s)", "-", summary.median)
    print_row("p95 latency (s)", "-", summary.p95)
    print_row("blowup vs Fig. 5 mean", PAPER_MEAN / FIG5_PAPER_MEAN,
              summary.mean / FIG5_PAPER_MEAN)
    stall = sum(s.stall_time for name, s in report.daemon_stats.items()
                if name != "master")
    _emit(f"total gateway-daemon stall time: {stall:.0f} s across "
          f"{sum(s.blocks_verified for s in report.daemon_stats.values())} "
          f"block verifications")
    _emit("")
    _emit("latency distribution (the figure's histogram):")
    print_histogram(report.latencies)

    assert report.completed > 0.75 * report.exchanges_launched
    # Tens-of-seconds regime, an order of magnitude over Fig. 5.
    assert 15.0 < summary.mean < 60.0, (
        f"mean {summary.mean:.1f}s outside the paper's ~30s regime"
    )
