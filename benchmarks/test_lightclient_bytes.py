"""Light-client tier — recipient WAN bytes, full vs compact vs multicast.

The tier's claim: a duty-cycled recipient that holds headers, watched
transactions, and inclusion proofs (never block bodies) completes the
same fair exchanges for a small fraction of the WAN ingress a
co-located full node needs, and compact block relay shaves the
full-node gossip on top.  The sweep runs the identical workload in
three modes and writes ``BENCH_lightclient.json`` for the CI artifact.

Modes:

* ``full``     — the seed behaviour: every recipient is a full node,
                 whole blocks flood the gossip mesh.
* ``compact``  — full recipients, but blocks travel as short-txid
                 sketches reconstructed from the mempool (BIP 152 "low
                 bandwidth" shape).
* ``light``    — SPV recipients fed by repeat-authenticate header
                 multicast, with compact relay between the full nodes.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import exchanges_target, print_header, print_row
from repro.core import BcWANNetwork, NetworkConfig

GATEWAYS = 5  # the paper's deployment size
SENSORS = 4

BASE = dict(
    num_gateways=GATEWAYS,
    sensors_per_gateway=SENSORS,
    exchange_interval=10.0,
    seed=4711,
)

MODES = {
    "full": dict(device_class="full", compact_blocks=False),
    "compact": dict(device_class="full", compact_blocks=True),
    "light": dict(device_class="light", compact_blocks=True,
                  multicast_interval=15.0, light_sync_interval=30.0),
}


def run_mode(mode: str, num_exchanges: int) -> dict:
    cfg = NetworkConfig(**BASE, **MODES[mode])
    network = BcWANNetwork(cfg)
    report = network.run(num_exchanges=num_exchanges)
    network.close()

    # Recipient-side ingress: in full/compact mode the recipient is the
    # site's own full node; in light mode it is the light-i host.
    if mode == "light":
        recipient_hosts = cfg.light_names
    else:
        recipient_hosts = cfg.site_names
    ingress = [network.wan.bytes_to.get(h, 0) for h in recipient_hosts]
    delivered = max(report.completed, 1)

    point = {
        "mode": mode,
        "completed": report.completed,
        "launched": report.exchanges_launched,
        "chain_height": report.chain_height,
        "wan_bytes_total": network.wan.bytes_modeled,
        "wan_bytes_per_exchange": network.wan.bytes_modeled / delivered,
        "recipient_ingress_bytes": sum(ingress),
        "recipient_bytes_per_exchange": sum(ingress) / delivered,
    }
    if network.compact_relays:
        received = sum(r.stats()["compact_received"]
                       for r in network.compact_relays)
        from_mempool = sum(r.stats()["reconstructed_from_mempool"]
                           for r in network.compact_relays)
        point["compact_received"] = received
        point["reconstruction_hit_rate"] = (
            from_mempool / received if received else None)
    if mode == "light":
        point["proofs_verified"] = sum(
            spv.stats()["proofs_verified"] for spv in network.light_clients)
        point["multicast_headers_applied"] = sum(
            spv.multicast.stats()["headers_applied"]
            for spv in network.light_clients)
    return point


def test_lightclient_bytes_sweep(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    num_exchanges = exchanges_target(default=40, full=200)
    print_header("Light-client tier — recipient WAN bytes per exchange "
                 f"({GATEWAYS} gateways, {num_exchanges} exchanges)")
    print_row("mode", "completed", "kB/exch", "recip kB/exch", "hit rate")
    series = []
    for mode in MODES:
        point = run_mode(mode, num_exchanges)
        series.append(point)
        hit = point.get("reconstruction_hit_rate")
        print_row(
            mode,
            f"{point['completed']}/{point['launched']}",
            point["wan_bytes_per_exchange"] / 1000,
            point["recipient_bytes_per_exchange"] / 1000,
            "-" if hit is None else f"{hit:.2f}",
        )
    by_mode = {p["mode"]: p for p in series}
    reduction = (by_mode["full"]["recipient_bytes_per_exchange"]
                 / by_mode["light"]["recipient_bytes_per_exchange"])
    print_row("light vs full reduction", f"{reduction:.1f}x")

    Path("BENCH_lightclient.json").write_text(json.dumps({
        "benchmark": "lightclient_bytes",
        "num_gateways": GATEWAYS,
        "sensors_per_gateway": SENSORS,
        "num_exchanges": num_exchanges,
        "recipient_reduction_light_vs_full": reduction,
        "series": series,
    }, indent=2))

    # The workload settles in every mode (radio losses may fail a few).
    for point in series:
        assert point["completed"] >= point["launched"] - 2
    # Compact relay reconstructs from the mempool in steady state.
    for mode in ("compact", "light"):
        assert by_mode[mode]["reconstruction_hit_rate"] >= 0.9
    # The acceptance bar: a light recipient costs >= 5x fewer WAN bytes
    # per delivered exchange than a co-located full node.
    assert reduction >= 5.0
    # The light tier still proves every payment it relies on.
    assert by_mode["light"]["proofs_verified"] > 0
