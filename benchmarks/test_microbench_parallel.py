"""Parallel-verification microbenchmarks.

Two tables:

* **Block connect, serial vs pooled** at 1/2/4 workers over a block of
  independent P2PKH spends — cold script cache every round, so every
  input pays a full interpreter run.
* **Single ECDSA verify, Shamir vs double-multiply** — the interleaved
  ladder shares one doubling chain between ``u1*G`` and ``u2*Q`` and
  must beat the two-multiply reference.

Process-pool speedup is hardware-dependent: the >= 1.5x acceptance gate
only arms on hosts with at least 4 CPUs (single-core CI boxes pay IPC
overhead with nothing to overlap), while correctness of every timed run
is asserted unconditionally.  Timing loops are hand-rolled so the gates
also run in CI's ``--benchmark-disable`` lane.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from benchmarks.conftest import print_header, print_row
from repro.blockchain.block import Block
from repro.blockchain.engine import ValidationEngine
from repro.blockchain.miner import Miner
from repro.blockchain.node import FullNode
from repro.blockchain.params import ChainParams
from repro.blockchain.utxo import UTXOSet
from repro.blockchain.wallet import Wallet
from repro.crypto import ecdsa
from repro.crypto.keys import KeyPair
from repro.parallel import VerifyPool

INPUTS_PER_BLOCK = 24
CONNECT_ROUNDS = 3
VERIFY_ROUNDS = 60


@pytest.fixture(scope="module")
def workload():
    """A block of independent single-input P2PKH spends, plus its UTXOs."""
    rng = random.Random(0xBCA7)
    params = ChainParams(coinbase_maturity=1)
    node = FullNode(params, "par-bench", verify_scripts=False)
    wallet = Wallet(node.chain, KeyPair.generate(rng))
    wallet.watch_chain()
    miner = Miner(chain=node.chain, mempool=node.mempool,
                  reward_pubkey_hash=wallet.pubkey_hash)
    for i in range(4):
        miner.mine_and_connect(float(i))
    node.mempool.accept(
        wallet.create_fanout(wallet.pubkey_hash, 500, INPUTS_PER_BLOCK))
    miner.mine_and_connect(50.0)

    gateway = Wallet(node.chain, KeyPair.generate(rng))
    txs = [wallet.create_payment(gateway.pubkey_hash, 100 + i)
           for i in range(INPUTS_PER_BLOCK)]
    height = node.chain.height + 1
    block = Block.assemble(
        prev_hash=node.chain.tip.hash,
        timestamp=60.0,
        transactions=[miner.build_coinbase(height, 0), *txs],
    )
    return params, node, block, height


def _replica(node) -> UTXOSet:
    replica = UTXOSet()
    for outpoint, entry in node.chain.utxos.items():
        replica.add(outpoint, entry)
    return replica


def _time_connect(workload, pool) -> float:
    """Best seconds per cold-cache block connect."""
    params, node, block, height = workload
    engine = ValidationEngine(params)
    if pool is not None:
        engine.attach_pool(pool)
    best = float("inf")
    for _ in range(CONNECT_ROUNDS):
        engine.clear_cache()
        utxos = _replica(node)
        start = time.perf_counter()
        report = engine.connect_block(block, utxos, height,
                                      verify_scripts=True, commit=False)
        best = min(best, time.perf_counter() - start)
        assert report.script_executions == INPUTS_PER_BLOCK
        assert report.cache_hits == 0
    engine.detach_pool()
    return best


def test_block_connect_serial_vs_pool(workload):
    cpus = os.cpu_count() or 1
    serial = _time_connect(workload, None)
    rows = [("serial", serial)]
    for workers in (1, 2, 4):
        with VerifyPool(workers) as pool:
            pooled = _time_connect(workload, pool)
            assert pool.stats()["batches"] >= CONNECT_ROUNDS
        rows.append((f"pool x{workers}", pooled))

    print_header(
        f"Block connect, {INPUTS_PER_BLOCK} scripts, cold cache "
        f"(host: {cpus} cpu)")
    for label, seconds in rows:
        print_row(label, round(seconds * 1e3, 3),
                  round(serial / seconds, 2))
    print_row("(columns)", "ms/connect", "speedup")

    best_pooled = min(seconds for label, seconds in rows if label != "serial")
    if cpus >= 4:
        # The acceptance gate: >= 1.5x over serial at 4 workers.
        assert serial / best_pooled >= 1.5, (
            f"pool speedup {serial / best_pooled:.2f}x below 1.5x "
            f"on a {cpus}-cpu host"
        )
    else:
        # Single/dual-core host: just pin that pooling is not pathological
        # (IPC overhead bounded at ~6x serial for this small block).
        assert best_pooled <= serial * 6


def _time_verify(fn, pub, digest, sig) -> float:
    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(VERIFY_ROUNDS):
            assert fn(pub, digest, sig)
        best = min(best, (time.perf_counter() - start) / VERIFY_ROUNDS)
    return best


def test_shamir_vs_double_multiply():
    rng = random.Random(0x54A3)
    key = ecdsa.generate_private_key(rng)
    pub = key.public_key
    digest = rng.getrandbits(256).to_bytes(32, "big")
    sig = key.sign(digest)
    pub.verify(digest, sig)  # warm the per-pubkey wNAF table

    shamir = _time_verify(lambda p, d, s: p.verify(d, s), pub, digest, sig)
    naive = _time_verify(ecdsa.verify_double_multiply, pub, digest, sig)

    print_header("ECDSA verify: interleaved Shamir vs double-multiply")
    print_row("double-multiply", round(naive * 1e6, 1))
    print_row("shamir (warm table)", round(shamir * 1e6, 1))
    print_row("(columns)", "us/verify")
    print_row("speedup", round(naive / shamir, 2))

    # The ladder shares 256 doublings between both scalars; it must not
    # lose to the two-multiply reference (1.05x floor leaves timing noise
    # room while still catching a regression to two full ladders).
    assert naive / shamir >= 1.05, (
        f"Shamir path only {naive / shamir:.2f}x vs double-multiply"
    )
