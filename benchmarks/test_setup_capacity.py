"""Section 5.2 setup arithmetic — '183 messages per sensor per hour'.

The paper derives a theoretical per-sensor ceiling from SF7, 1 % duty
cycle, and the 132-byte frame (128-byte payload + 4-byte length header).
This benchmark regenerates the number under both the nominal-bitrate
approximation (which reproduces 183-186/h, evidently what the authors
used) and the exact Semtech AN1200.13 formula (which is stricter), and
sweeps the spreading factors to show the capacity cliff.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_header, print_row
from repro.lora.dutycycle import max_messages_per_hour
from repro.lora.phy import LoRaModulation

PAPER_MESSAGES_PER_HOUR = 183
FRAME_BYTES = 132
DUTY = 0.01


def test_paper_capacity_number(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    modulation = LoRaModulation(spreading_factor=7)
    nominal = max_messages_per_hour(
        modulation.nominal_time_on_air(FRAME_BYTES), DUTY)
    exact = max_messages_per_hour(
        modulation.time_on_air(FRAME_BYTES), DUTY)

    print_header("Section 5.2 — per-sensor message ceiling at SF7, 1% duty")
    print_row("", "paper", "measured")
    print_row("nominal-bitrate msgs/hour", PAPER_MESSAGES_PER_HOUR,
              nominal)
    print_row("exact-ToA msgs/hour", "-", exact)
    print_row("nominal bitrate (bit/s)", 5469, modulation.nominal_bitrate)
    print_row("exact frame ToA (ms)", "-", modulation.time_on_air(FRAME_BYTES) * 1000)

    # The paper's 183 falls out of the nominal-rate approximation.
    assert abs(nominal - PAPER_MESSAGES_PER_HOUR) < 8
    # The exact formula is stricter but in the same regime.
    assert 150 < exact < nominal


def test_capacity_per_spreading_factor(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Capacity cliff across spreading factors (132 B, 1% duty)")
    print_row("SF", "ToA (ms)", "msgs/hour")
    previous = float("inf")
    for sf in range(7, 13):
        modulation = LoRaModulation(spreading_factor=sf)
        toa = modulation.time_on_air(FRAME_BYTES)
        rate = max_messages_per_hour(toa, DUTY)
        print_row(f"SF{sf}", toa * 1000, rate)
        assert rate < previous
        previous = rate
    # At SF12 the same frame fits only a handful of messages per hour —
    # the constraint that drives the paper's RSA-512 choice.
    assert previous < 10


def test_fleet_capacity(benchmark):
    """The testbed's 150 sensors against a 3-channel gateway."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    modulation = LoRaModulation(spreading_factor=7)
    toa = modulation.time_on_air(FRAME_BYTES)
    per_sensor = max_messages_per_hour(toa, DUTY)
    sensors = 150
    offered_max = sensors * per_sensor
    # Raw channel capacity: 3 uplink channels, each at most 1/ToA fps.
    channel_ceiling = 3 * 3600 / toa
    print_header("Fleet arithmetic — 150 sensors, 5 gateways")
    print_row("per-sensor ceiling (msgs/h)", "-", per_sensor)
    print_row("fleet duty-cycle ceiling (msgs/h)", "-", offered_max)
    print_row("3-channel airtime ceiling (msgs/h)", "-", channel_ceiling)
    assert offered_max < channel_ceiling  # duty cycle binds first
