"""Ablation F (§5.1) — the block-size tunable.

Multichain's second headline parameter ("the average mining time, **the
size of a block** or the consensus ... impact the theoretical maximum
number of transactions per second") matters only once transactions must
*confirm*: BcWAN's zero-confirmation exchange never waits for a block,
but the §6 cautious variant (``wait_for_confirmation=True``) does — and
with small blocks the offer backlog stretches confirmation latency.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_header, print_row
from repro.core import BcWANNetwork, NetworkConfig

SCALE = dict(num_gateways=3, sensors_per_gateway=5, exchange_interval=30.0,
             seed=41, wait_for_confirmation=True, block_interval=10.0,
             # The bootstrap funding fan-out must itself fit in the
             # smallest block under test (~2 kB).
             funding_coins=40)
EXCHANGES = 40


def run_with_block_size(max_block_size: int):
    network = BcWANNetwork(NetworkConfig(
        max_block_size=max_block_size, **SCALE,
    ))
    return network.run(num_exchanges=EXCHANGES)


def test_block_size_sweep(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Ablation F — block size vs confirmed-exchange latency "
                 "(cautious gateways, 10 s blocks)")
    print_row("max block size", "completed", "mean (s)", "p95 (s)")
    results = {}
    for size in (2_000, 8_000, 1_000_000):
        report = run_with_block_size(size)
        results[size] = report
        print_row(
            f"{size:,} B",
            f"{report.completed}/{report.exchanges_launched}",
            report.mean_latency if report.latencies else float("nan"),
            report.summary.p95 if report.latencies else float("nan"),
        )

    # Unconstrained blocks: confirmation adds about one block interval.
    big = results[1_000_000]
    assert big.latencies
    # Tiny blocks force offers to queue across blocks: latency grows.
    small = results[2_000]
    if small.latencies:
        assert small.mean_latency >= big.mean_latency
    # Nothing breaks: the backlog drains, exchanges still settle.
    assert small.completed >= 0.7 * small.exchanges_launched
