"""Microbenchmarks of the static fast-reject pre-pass.

The claim being measured: on a non-standard script that *provably*
fails, the analyzer's verdict is far cheaper than letting the
interpreter grind through the script to discover the same failure —
and with the policy's verdict cache warm, it is near-free.  The
paired numbers land in the BENCH json next to PR 1's script-cache
benchmarks.
"""

from __future__ import annotations

import pytest

from repro.script.analysis import StandardnessPolicy, analyze
from repro.script.builder import ephemeral_key_release, p2pkh_unlocking
from repro.script.interpreter import ScriptInterpreter
from repro.script.opcodes import OP
from repro.script.script import Script


@pytest.fixture(scope="module")
def nonstandard_spend():
    """An expensive spend that always fails: 150 hash rounds of work
    before a guaranteed altstack underflow at the end."""
    unlocking = p2pkh_unlocking(b"\x01" * 70, b"\x02" * 66)
    locking = Script(tuple([OP.OP_HASH256] * 150) + (OP.OP_FROMALTSTACK,))
    # The two paths agree on the verdict before we time them.
    assert ScriptInterpreter().verify(unlocking, locking) is False
    assert StandardnessPolicy().precheck_spend(unlocking, locking) is not None
    return unlocking, locking


def test_bench_nonstandard_full_evaluation(benchmark, nonstandard_spend):
    """The baseline: the interpreter executes 150 hashes, then fails."""
    unlocking, locking = nonstandard_spend
    interpreter = ScriptInterpreter()
    benchmark(lambda: interpreter.verify(unlocking, locking))


def test_bench_nonstandard_fast_reject_cold(benchmark, nonstandard_spend):
    """A fresh policy per round: every verdict pays the analyzer."""
    unlocking, locking = nonstandard_spend
    benchmark(
        lambda: StandardnessPolicy().precheck_spend(unlocking, locking))


def test_bench_nonstandard_fast_reject_warm(benchmark, nonstandard_spend):
    """Steady state: the verdict cache answers without re-analyzing."""
    unlocking, locking = nonstandard_spend
    policy = StandardnessPolicy()
    policy.precheck_spend(unlocking, locking)  # warm it
    benchmark(lambda: policy.precheck_spend(unlocking, locking))
    assert policy.stats.analysis_cache_hits > 0


def test_bench_analyze_listing1(benchmark):
    """Analyzer cost on the paper's real workload script."""
    script = ephemeral_key_release(b"\x03" * 64, b"\x11" * 20,
                                   b"\x22" * 20, 500)
    report = benchmark(lambda: analyze(script, assume_unknown_input=True))
    assert not report.fatal
