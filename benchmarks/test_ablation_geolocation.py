"""Ablation E (§6) — geolocation: co-located vs globally-spread federations.

"In a real world environment, a sensor has higher chances to communicate
with a Gateway that is geolocated closer to his origin deployment.  The
network latency can thus be decreased between co-located foreign
Gateways and lower the data retrieval latency."

The PlanetLab testbed spread the gateways across the wide area; a real
deployment federates gateways in the same city.  This ablation sweeps the
WAN latency regime from metro (co-located) to intercontinental and shows
how much of the exchange latency is WAN-bound versus protocol-bound.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_header, print_row
from repro.core import BcWANNetwork, NetworkConfig

SCALE = dict(num_gateways=3, sensors_per_gateway=5, exchange_interval=40.0,
             seed=29)
EXCHANGES = 50

REGIMES = {
    "metro (co-located)": (0.002, 0.010),
    "regional": (0.010, 0.040),
    "PlanetLab-like (paper)": (0.040, 0.180),
    "intercontinental": (0.120, 0.350),
}


def test_geolocation_sweep(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Ablation E — WAN spread vs exchange latency")
    print_row("federation", "mean (s)", "median (s)", "p95 (s)")
    means = {}
    for label, median_range in REGIMES.items():
        network = BcWANNetwork(NetworkConfig(
            wan_median_range=median_range, **SCALE,
        ))
        report = network.run(num_exchanges=EXCHANGES)
        summary = report.summary
        means[label] = summary.mean
        print_row(label, summary.mean, summary.median, summary.p95)

    # Latency decreases monotonically as gateways co-locate...
    ordered = list(REGIMES)
    values = [means[label] for label in ordered]
    assert all(a <= b + 0.05 for a, b in zip(values, values[1:]))
    # ...and the §6 prediction holds: co-location buys a visible cut
    # relative to the paper's wide-area numbers.
    assert means["metro (co-located)"] < means["PlanetLab-like (paper)"]
    # But a protocol floor remains (radio legs + crypto + daemon work):
    # even a zero-ish WAN cannot push the exchange under ~0.5 s.
    assert means["metro (co-located)"] > 0.5
