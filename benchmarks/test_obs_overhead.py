"""The observability cost contract: disabled hooks are (nearly) free.

The hot paths instrumented by the observability layer keep their bodies
behind an ``if self.obs is None`` guard, so a run with profiling off
pays one attribute load and one branch per call.  These tests pin that:
warm-cache script verification with ``obs=None`` must stay within noise
of the same loop with a live :class:`HotPathProfiler` attached — and,
more importantly, within an absolute per-call budget that a regression
to unconditional timing would blow through.

Timing loops are hand-rolled (not pytest-benchmark) so the guard also
runs in CI's ``--benchmark-disable`` lane.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.blockchain.engine import ValidationEngine
from repro.blockchain.miner import Miner
from repro.blockchain.node import FullNode
from repro.blockchain.params import ChainParams
from repro.blockchain.wallet import Wallet
from repro.crypto.keys import KeyPair
from repro.obs.profile import HotPathProfiler

ROUNDS = 2000


@pytest.fixture(scope="module")
def stack():
    rng = random.Random(0xBEEF)
    params = ChainParams(coinbase_maturity=1)
    node = FullNode(params, "bench", verify_scripts=False)
    wallet = Wallet(node.chain, KeyPair.generate(rng))
    wallet.watch_chain()
    miner = Miner(chain=node.chain, mempool=node.mempool,
                  reward_pubkey_hash=wallet.pubkey_hash)
    for i in range(30):
        miner.mine_and_connect(float(i))
    gateway = Wallet(node.chain, KeyPair.generate(rng))
    gateway.watch_chain()
    tx = wallet.create_payment(gateway.pubkey_hash, 100)
    wallet.release_pending(tx)
    return node, tx


def _time_warm_verification(node, tx, profiler) -> float:
    """Seconds per warm-cache ``verify_transaction_scripts`` call."""
    engine = ValidationEngine(node.params)
    engine.obs = profiler
    engine.verify_transaction_scripts(tx, node.chain.utxos)  # warm it
    best = float("inf")
    # Best-of-3 batches: robust against scheduler noise on CI hosts.
    for _ in range(3):
        start = time.perf_counter()
        for _ in range(ROUNDS):
            engine.verify_transaction_scripts(tx, node.chain.utxos)
        best = min(best, (time.perf_counter() - start) / ROUNDS)
    return best


def test_disabled_tracing_overhead_within_noise(stack):
    node, tx = stack
    disabled = _time_warm_verification(node, tx, profiler=None)
    enabled = _time_warm_verification(node, tx, profiler=HotPathProfiler())
    # The disabled path must not cost more than the instrumented one
    # plus generous noise — if it does, the no-op guard regressed.
    assert disabled <= enabled * 1.5 + 20e-6, (
        f"disabled={disabled * 1e6:.2f}us vs enabled={enabled * 1e6:.2f}us: "
        f"the obs=None fast path should be the cheap one")
    # Absolute ceiling: warm-cache verification stayed microseconds-cheap
    # through PR 1; tracing hooks must not change its order of magnitude.
    assert disabled < 500e-6, (
        f"warm-cache verify costs {disabled * 1e6:.1f}us/call — "
        f"far above the PR 1 baseline")


def test_profiler_captures_hot_sites(stack):
    node, tx = stack
    profiler = HotPathProfiler()
    engine = ValidationEngine(node.params)
    engine.obs = profiler
    engine.verify_transaction_scripts(tx, node.chain.utxos)
    snapshot = profiler.snapshot()
    assert "engine.verify_input_script" in snapshot
    assert snapshot["engine.verify_input_script"]["calls"] == len(tx.inputs)
    # The cold pass also exercised the interpreter site.
    assert "script.interpreter_verify" in snapshot
    assert "verify_input_script" in profiler.format()


def test_mempool_accept_guard(stack):
    """The mempool's obs guard: identical verdicts with and without."""
    node, tx = stack
    profiler = HotPathProfiler()
    node.mempool.obs = profiler
    try:
        assert node.mempool.accept(tx).accepted
        node.mempool.remove(tx.txid)
    finally:
        node.mempool.obs = None
    assert profiler.snapshot()["mempool.accept"]["calls"] == 1
