"""Baseline comparison — BcWAN vs legacy LoRaWAN vs altruistic blockchain.

The paper's qualitative positioning (sections 1, 3, 6), quantified on one
workload: sensors deployed in *foreign* cells.

* legacy LoRaWAN (Fig. 1): fastest when it works, but foreign gateways
  drop everything — 0 % roaming delivery;
* altruistic blockchain (Durand et al. [26]): low latency, but delivery
  collapses with gateway goodwill — no incentive to forward;
* BcWAN: a few seconds of latency buys full roaming delivery *and* pays
  the gateways (the reputation scheme's stolen payments are shown for
  contrast).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_header, print_row
from repro.baselines import (
    AltruisticBaseline,
    LoRaWANBaseline,
    ReputationExchange,
)
from repro.core import BcWANNetwork, NetworkConfig

SCALE = dict(num_gateways=3, sensors_per_gateway=5, exchange_interval=40.0,
             seed=17)
EXCHANGES = 60


def test_architecture_comparison(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    bcwan = BcWANNetwork(NetworkConfig(**SCALE)).run(EXCHANGES)
    legacy = LoRaWANBaseline(NetworkConfig(**SCALE)).run(EXCHANGES)
    legacy_home = LoRaWANBaseline(
        NetworkConfig(**{**SCALE, "roaming_offset": 0})).run(EXCHANGES)
    altruistic_full = AltruisticBaseline(
        NetworkConfig(**SCALE), participation=1.0).run(EXCHANGES)
    altruistic_half = AltruisticBaseline(
        NetworkConfig(**SCALE), participation=0.5).run(EXCHANGES)

    def mean(report):
        return report.mean_latency if report.latencies else float("nan")

    print_header("Architecture comparison — roaming workload")
    print_row("system", "delivery", "mean lat (s)", "pays gw?")
    print_row("legacy LoRaWAN (roaming)",
              f"{legacy.completed}/{legacy.exchanges_launched}",
              mean(legacy), "n/a")
    print_row("legacy LoRaWAN (home)",
              f"{legacy_home.completed}/{legacy_home.exchanges_launched}",
              mean(legacy_home), "n/a")
    print_row("altruistic, 100% goodwill",
              f"{altruistic_full.completed}/{altruistic_full.exchanges_launched}",
              mean(altruistic_full), "no")
    print_row("altruistic, 50% goodwill",
              f"{altruistic_half.completed}/{altruistic_half.exchanges_launched}",
              mean(altruistic_half), "no")
    print_row("BcWAN",
              f"{bcwan.completed}/{bcwan.exchanges_launched}",
              bcwan.mean_latency, "yes")

    # The paper's claims, as assertions:
    assert legacy.completed == 0                       # no roaming
    assert bcwan.completed > 0.8 * bcwan.exchanges_launched
    assert altruistic_half.delivery_rate < 0.8         # goodwill-limited
    # BcWAN pays a latency premium over the trustful/home path...
    assert bcwan.mean_latency > mean(legacy_home)
    # ...but stays near real time (the paper's conclusion).
    assert bcwan.mean_latency < 5.0


def test_fair_exchange_vs_reputation(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    exchange = ReputationExchange(
        {"gw-honest-1": 1.0, "gw-honest-2": 0.95, "gw-thief": 0.1},
        threshold=0.5,
    )
    report = exchange.simulate(100)
    print_header("Fair exchange vs pay-first reputation (§4.4)")
    print_row("payments made", "-", report.paid)
    print_row("payments stolen", "-", report.stolen_payments)
    print_row("loss rate", "-", report.loss_rate)
    print_row("BcWAN value-at-risk", "-", 0.0)
    # Reputation loses real money before the thief is blacklisted;
    # BcWAN's script makes that loss structurally impossible.
    assert report.stolen_payments > 0
