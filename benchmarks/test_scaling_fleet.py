"""Scaling sweep — fleet size vs delivery and latency.

The paper's testbed fixes 150 sensors; an adopter's first question is how
the shared radio and the per-site daemons hold up as density grows.  This
sweep raises sensors-per-gateway at a fixed per-sensor rate and reports
delivery rate (radio collisions are the binding constraint — the chain
has head-room) and exchange latency.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_header, print_row
from repro.core import BcWANNetwork, NetworkConfig

BASE = dict(num_gateways=3, exchange_interval=40.0, seed=37)
EXCHANGES = 60


def test_fleet_density_sweep(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Scaling — sensors per gateway vs delivery and latency")
    print_row("sensors/gw", "delivered", "mean (s)", "p95 (s)",
              "collisions")
    deliveries = {}
    for density in (5, 15, 30, 60):
        network = BcWANNetwork(NetworkConfig(
            sensors_per_gateway=density, **BASE,
        ))
        report = network.run(num_exchanges=EXCHANGES)
        rate = report.completed / report.exchanges_launched
        deliveries[density] = rate
        print_row(
            str(density),
            f"{report.completed}/{report.exchanges_launched}",
            report.mean_latency if report.latencies else float("nan"),
            report.summary.p95 if report.latencies else float("nan"),
            report.frames_lost_collision,
        )
    # Sparse cells deliver essentially everything...
    assert deliveries[5] > 0.9
    # ...and delivery degrades gracefully, not catastrophically, at the
    # paper's density and beyond (ALOHA-limited, not protocol-limited).
    assert deliveries[60] > 0.6


def test_higher_offered_load_saturates_radio_not_chain(benchmark):
    """Push the per-sensor rate: failures are radio losses, never
    settlement failures — the chain keeps clearing its queue."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    network = BcWANNetwork(NetworkConfig(
        sensors_per_gateway=30, exchange_interval=15.0,
        num_gateways=3, seed=38,
    ))
    report = network.run(num_exchanges=90)
    reasons = {}
    for record in network.tracker.failed():
        key = record.failure_reason.split(":")[0][:30]
        reasons[key] = reasons.get(key, 0) + 1
    print_header("Failure taxonomy under 4x offered load")
    for reason, count in sorted(reasons.items(), key=lambda kv: -kv[1]):
        print_row(reason, "-", count)
    print_row("completed", "-", report.completed)
    settlement_failures = [
        r for r in network.tracker.failed()
        if "cannot fund" in r.failure_reason
        or "mempool" in r.failure_reason
    ]
    assert not settlement_failures
    assert report.completed > 0.6 * report.exchanges_launched
