"""Scaling sweep — fleet size vs delivery and latency.

The paper's testbed fixes 150 sensors; an adopter's first question is how
the shared radio and the per-site daemons hold up as density grows.  This
sweep raises sensors-per-gateway at a fixed per-sensor rate and reports
delivery rate (radio collisions are the binding constraint — the chain
has head-room) and exchange latency.

The fleet tier pushes to 100 gateways / 10 000 sensors on the vector
channel kernel: the full scenario must finish inside a CI wall budget,
and a kernel-replay microbench pins the vector kernel's speedup over the
scalar oracle at fleet listener density (``BENCH_fleet.json``).
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path

import pytest

from benchmarks.conftest import print_header, print_row
from repro.core import BcWANNetwork, NetworkConfig
from repro.lora.channel import (Listener, PathLossModel, Position,
                                RadioChannel, Transmission)
from repro.lora.frames import DataFrame
from repro.lora.phy import LoRaModulation
from repro.sim.core import Simulator

BASE = dict(num_gateways=3, exchange_interval=40.0, seed=37)
EXCHANGES = 60


def test_fleet_density_sweep(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Scaling — sensors per gateway vs delivery and latency")
    print_row("sensors/gw", "delivered", "mean (s)", "p95 (s)",
              "collisions")
    deliveries = {}
    for density in (5, 15, 30, 60):
        network = BcWANNetwork(NetworkConfig(
            sensors_per_gateway=density, **BASE,
        ))
        report = network.run(num_exchanges=EXCHANGES)
        rate = report.completed / report.exchanges_launched
        deliveries[density] = rate
        print_row(
            str(density),
            f"{report.completed}/{report.exchanges_launched}",
            report.mean_latency if report.latencies else float("nan"),
            report.summary.p95 if report.latencies else float("nan"),
            report.frames_lost_collision,
        )
    # Sparse cells deliver essentially everything...
    assert deliveries[5] > 0.9
    # ...and delivery degrades gracefully, not catastrophically, at the
    # paper's density and beyond (ALOHA-limited, not protocol-limited).
    assert deliveries[60] > 0.6


def test_higher_offered_load_saturates_radio_not_chain(benchmark):
    """Push the per-sensor rate: failures are radio losses, never
    settlement failures — the chain keeps clearing its queue."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    network = BcWANNetwork(NetworkConfig(
        sensors_per_gateway=30, exchange_interval=15.0,
        num_gateways=3, seed=38,
    ))
    report = network.run(num_exchanges=90)
    reasons = {}
    for record in network.tracker.failed():
        key = record.failure_reason.split(":")[0][:30]
        reasons[key] = reasons.get(key, 0) + 1
    print_header("Failure taxonomy under 4x offered load")
    for reason, count in sorted(reasons.items(), key=lambda kv: -kv[1]):
        print_row(reason, "-", count)
    print_row("completed", "-", report.completed)
    settlement_failures = [
        r for r in network.tracker.failed()
        if "cannot fund" in r.failure_reason
        or "mempool" in r.failure_reason
    ]
    assert not settlement_failures
    assert report.completed > 0.6 * report.exchanges_launched


# -- fleet tier: 100 gateways / 10k sensors on the vector kernel -------------

FLEET = dict(num_gateways=100, sensors_per_gateway=100, seed=41,
             sim_kernel="vector", funding_coins=8, exchange_interval=600.0)
FLEET_EXCHANGES = 200
# Wall budget for the full scenario (assembly + run).  Calibrated at
# ~2x a measured run on a single CI core; assembly is RSA-512 keygen
# bound (10k sensors), the run is daemon/event-loop bound.
FLEET_WALL_BUDGET_S = 1800.0
KERNEL_TARGET_SPEEDUP = 5.0
KERNEL_LISTENERS = 101  # one site at fleet density: gateway + 100 sensors
KERNEL_REPLAY = 2000


def _fleet_channel(kernel: str, seed: int = 5):
    """One site's radio at fleet density, positions spread so the verdict
    mix covers sensitivity, collision, and delivery."""
    rng = random.Random(seed)
    sim = Simulator()
    channel = RadioChannel(sim, random.Random(99), PathLossModel(),
                           kernel=kernel)
    positions = []
    for i in range(KERNEL_LISTENERS):
        position = Position(rng.uniform(-4000, 4000), rng.uniform(-4000, 4000))
        positions.append(position)
        channel.add_listener(Listener(
            name=f"l-{i}", position=position, deliver=lambda frame, rssi: None,
        ))
    return channel, positions


def _completion_stream(positions, count: int, seed: int = 5):
    """A recorded stream of (transmission, interferers) completions, the
    exact input ``RadioChannel._complete`` hands each delivery kernel."""
    rng = random.Random(seed)
    modulation = LoRaModulation(spreading_factor=7)

    def transmission(index: int) -> Transmission:
        sender = rng.randrange(len(positions))
        return Transmission(
            sender=f"l-{sender}",
            frame=DataFrame(sender=f"l-{sender}",
                            encrypted_message=b"x" * 24, nonce=index),
            modulation=modulation, frequency_hz=868_100_000, power_dbm=14.0,
            position=positions[sender], start=0.0, end=0.1,
        )

    stream = []
    for index in range(count):
        wanted = transmission(index)
        interferers = [transmission(index)
                       for _ in range(rng.choice((0, 0, 0, 1, 1, 2)))]
        stream.append((wanted, interferers))
    return stream


def _replay(channel: RadioChannel, stream) -> float:
    deliver = (channel._deliver_vector if channel.kernel == "vector"
               else channel._deliver_scalar)
    started = time.perf_counter()
    for wanted, interferers in stream:
        deliver(wanted, interferers)
    return time.perf_counter() - started


def _counters(channel: RadioChannel) -> tuple[int, int, int]:
    return (channel.frames_delivered, channel.frames_lost_sensitivity,
            channel.frames_lost_collision)


def test_channel_kernel_replay_is_deterministic(benchmark):
    """Timing-free twin of the microbench (safe under --count=N): both
    kernels replay the identical completion stream to identical verdict
    logs and counters."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    scalar, positions = _fleet_channel("scalar")
    vector, _ = _fleet_channel("vector")
    scalar.verdict_log = []
    vector.verdict_log = []
    stream = _completion_stream(positions, count=400)
    _replay(scalar, stream)
    _replay(vector, stream)
    assert scalar.verdict_log == vector.verdict_log
    assert _counters(scalar) == _counters(vector)
    assert len(scalar.verdict_log) >= 400


def test_fleet_100gw_vector_within_wall_budget(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Kernel-replay microbench at fleet listener density: warm both
    # kernels on one full pass (the vector kernel's loss/eligible rows
    # cache, as they do over a long scenario), then time a steady-state
    # replay of the same stream.
    scalar, positions = _fleet_channel("scalar")
    vector, _ = _fleet_channel("vector")
    stream = _completion_stream(positions, count=KERNEL_REPLAY)
    _replay(scalar, stream)
    _replay(vector, stream)
    scalar_s = _replay(scalar, stream)
    vector_s = _replay(vector, stream)
    speedup = scalar_s / vector_s
    assert _counters(scalar) == _counters(vector)

    # The full 100-gateway / 10k-sensor scenario on the vector kernel.
    assembly_started = time.perf_counter()
    network = BcWANNetwork(NetworkConfig(**FLEET))
    assembly_s = time.perf_counter() - assembly_started
    run_started = time.perf_counter()
    report = network.run(num_exchanges=FLEET_EXCHANGES)
    run_s = time.perf_counter() - run_started

    print_header("Fleet tier — 100 gateways / 10 000 sensors (vector kernel)")
    print_row("assembly (s)", assembly_s)
    print_row("run (s)", run_s)
    print_row("sim time (s)", network.sim.now)
    print_row("events", network.sim.events_processed)
    print_row("exchanges", f"{report.completed}/{report.exchanges_launched}")
    print_row("kernel replay", f"{KERNEL_REPLAY} completions")
    print_row("  scalar (s)", scalar_s)
    print_row("  vector (s)", vector_s)
    print_row("  speedup", f"{speedup:.1f}x")

    Path("BENCH_fleet.json").write_text(json.dumps({
        "scenario": {
            "num_gateways": FLEET["num_gateways"],
            "sensors_per_gateway": FLEET["sensors_per_gateway"],
            "sim_kernel": FLEET["sim_kernel"],
            "exchange_interval_s": FLEET["exchange_interval"],
            "num_exchanges": FLEET_EXCHANGES,
            "assembly_s": round(assembly_s, 1),
            "run_s": round(run_s, 1),
            "wall_budget_s": FLEET_WALL_BUDGET_S,
            "sim_time_s": round(network.sim.now, 1),
            "events_processed": network.sim.events_processed,
            "exchanges_launched": report.exchanges_launched,
            "exchanges_completed": report.completed,
        },
        "kernel_replay": {
            "listeners": KERNEL_LISTENERS,
            "completions": KERNEL_REPLAY,
            "scalar_s": round(scalar_s, 4),
            "vector_s": round(vector_s, 4),
            "speedup": round(speedup, 1),
            "target_speedup": KERNEL_TARGET_SPEEDUP,
        },
    }, indent=2))

    assert report.exchanges_launched == FLEET_EXCHANGES
    assert report.completed > 0.9 * report.exchanges_launched
    assert assembly_s + run_s < FLEET_WALL_BUDGET_S
    assert speedup >= KERNEL_TARGET_SPEEDUP
