"""Federation scaling — flat vs hierarchical, latency and WAN load.

The hierarchical refactor's claim: carving the federation into regional
sub-chains keeps *intra-region* exchange latency constant as the
federation grows, and keeps per-block WAN gossip bounded by the region
size instead of the federation size (blocks flood their region only; the
settlement mesh carries checkpoint digests, not traffic).

The sweep runs the same workload per gateway at growing federation sizes
in both modes and writes ``BENCH_federation.json`` for the CI artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

from benchmarks.conftest import print_header, print_row
from repro.core import BcWANNetwork, NetworkConfig, RegionTopology

GATEWAYS_PER_REGION = 2
EXCHANGES_PER_GATEWAY = 2
SIZES = (4, 8, 12)

BASE = dict(sensors_per_gateway=1, exchange_interval=30.0, seed=4711)


def run_point(size: int, sharded: bool) -> dict:
    regions = size // GATEWAYS_PER_REGION if sharded else 1
    network = BcWANNetwork(NetworkConfig(
        num_gateways=size,
        topology=RegionTopology(regions=regions, checkpoint_interval=30.0),
        **BASE,
    ))
    report = network.run(num_exchanges=size * EXCHANGES_PER_GATEWAY)
    if sharded:
        blocks = (sum(r.master_node.height for r in network.regions)
                  + network.anchor_daemon.node.height)
    else:
        blocks = network.master_daemon.node.height
    wan_bytes = network.wan.bytes_modeled
    return {
        "size": size,
        "mode": "sharded" if sharded else "flat",
        "regions": regions,
        "completed": report.completed,
        "launched": report.exchanges_launched,
        "mean_latency_s": report.mean_latency,
        "p95_latency_s": report.summary.p95 if report.latencies else None,
        "wan_bytes": wan_bytes,
        "blocks": blocks,
        "wan_bytes_per_block": wan_bytes / max(blocks, 1),
        "wan_messages": network.wan.messages_sent,
    }


def test_federation_scaling_sweep(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Federation scaling — flat vs sharded "
                 f"({GATEWAYS_PER_REGION} gateways/region)")
    print_row("size/mode", "completed", "mean (s)", "kB/block")
    series = []
    for size in SIZES:
        for sharded in (False, True):
            point = run_point(size, sharded)
            series.append(point)
            print_row(
                f"{size} {point['mode']}",
                f"{point['completed']}/{point['launched']}",
                point["mean_latency_s"],
                point["wan_bytes_per_block"] / 1000,
            )
    Path("BENCH_federation.json").write_text(json.dumps({
        "benchmark": "federation_scaling",
        "gateways_per_region": GATEWAYS_PER_REGION,
        "exchanges_per_gateway": EXCHANGES_PER_GATEWAY,
        "series": series,
    }, indent=2))

    flat = {p["size"]: p for p in series if p["mode"] == "flat"}
    sharded = {p["size"]: p for p in series if p["mode"] == "sharded"}
    # Everything settles in both modes.
    for point in series:
        assert point["completed"] == point["launched"]
    # Sharding caps gossip: at the largest size, a block costs clearly
    # fewer WAN bytes than in the flat full-mesh federation.
    largest = SIZES[-1]
    assert (sharded[largest]["wan_bytes_per_block"]
            < 0.75 * flat[largest]["wan_bytes_per_block"])
    # Intra-region latency does not grow with federation size.
    small, large = sharded[SIZES[0]], sharded[largest]
    assert large["mean_latency_s"] < 1.75 * small["mean_latency_s"]
