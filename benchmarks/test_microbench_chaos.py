"""Chaos microbenchmark — reconvergence time after partition + crash.

Not a paper figure: an operational characterization the industry track's
"federated WAN" framing implies.  A six-gateway federation is split 2+4,
both sides mine during the split, the partition heals and a minority
gateway crash-restarts with total state loss.  The metric is how long
past the last injected fault the federation takes to agree on one chain
— the recovery cost of the anti-entropy machinery, swept over sync
intervals.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_header, print_row
from repro.chaos import FaultPlan, assert_converged, build_federation

SEED = 7
HORIZON = 120.0


def acceptance_plan() -> FaultPlan:
    return (FaultPlan(seed=SEED)
            .partition([["gw-0", "gw-1"],
                        ["gw-2", "gw-3", "gw-4", "gw-5"]],
                       start=1.0, heal_at=40.0)
            .crash("gw-1", at=50.0, restart_at=60.0,
                   preserve_chain=False))


def run_scenario(sync_interval: float):
    fed = build_federation(size=6, seed=SEED, sync_interval=sync_interval)
    fed.run_plan(acceptance_plan())
    minority = fed.make_miner("gw-0", key_seed=100)
    majority = fed.make_miner("gw-2", key_seed=200)
    schedule = [(5.0, "gw-0", minority), (15.0, "gw-0", minority),
                (6.0, "gw-2", majority), (16.0, "gw-2", majority),
                (26.0, "gw-2", majority)]
    for at, name, miner in schedule:
        def job(miner=miner, name=name, at=at):
            block = miner.mine_and_connect(at)
            fed.daemons[name].gossip.broadcast_block(block)
        fed.sim.call_at(at, job)
    fed.sim.run(until=HORIZON)
    return fed


def test_partition_crash_reconvergence(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    intervals = (2.0, 5.0, 10.0)

    print_header("Chaos — reconvergence after 2+4 partition "
                 "+ crash/restart (6 gateways)")
    print_row("sync interval (s)", "reconverge (s)", "timeouts", "drops")
    results = {}
    for interval in intervals:
        fed = run_scenario(interval)
        report = assert_converged(fed.daemons)
        telemetry = fed.injector.telemetry
        assert report.height == 3  # the majority branch won
        assert telemetry.reconvergence_time is not None
        timeouts = sum(a.timeouts for a in fed.agents.values())
        results[interval] = telemetry.reconvergence_time
        print_row(f"{interval:.0f}", telemetry.reconvergence_time,
                  timeouts, telemetry.partition_drops)

    # Recovery is bounded for every cadence, and a 2 s cadence must not
    # be slower than a 10 s one by more than the polling granularity.
    assert all(value <= 30.0 for value in results.values())
    assert results[2.0] <= results[10.0] + 1.0


def test_reconvergence_is_seed_stable(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    first = run_scenario(5.0)
    second = run_scenario(5.0)
    assert (first.injector.telemetry.reconvergence_time
            == second.injector.telemetry.reconvergence_time)
    assert (first.injector.telemetry.fault_log
            == second.injector.telemetry.fault_log)
