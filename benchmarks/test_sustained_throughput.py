"""Sustained block-connect throughput: the engine redesign's headline.

The seed connected blocks strictly serially — one script at a time, one
block at a time, every signature verified from scratch.  This PR's
engine batches ECDSA verification across a block's inputs (fixed-base
window tables + Montgomery batch inversion) and pipelines block N+1's
verification against block N's settle.  The claim to defend: ``>= 1.5x``
sustained connect throughput at 10^5+ UTXO scale, with the fast path
**byte-identical** to the serial one — same chain digest, same UTXO
digest.

Writes ``BENCH_throughput.json`` for the CI artifact.  The
``determinism``-named test is timing-free and runs under the CI
``throughput`` job's 3-repeat flake guard.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from benchmarks.conftest import print_header, print_row
from repro.blockchain.chain import Chain
from repro.blockchain.miner import Miner
from repro.blockchain.node import FullNode
from repro.blockchain.params import ChainParams
from repro.blockchain.transaction import OutPoint, TxOutput
from repro.blockchain.utxo import UTXOEntry
from repro.blockchain.wallet import Wallet
from repro.chaos.verify import chain_digest, utxo_digest
from repro.crypto.keys import KeyPair
from repro.script.builder import p2pkh_locking

PARAMS = ChainParams(coinbase_maturity=1)
UTXO_SCALE = 100_000
TARGET_SPEEDUP = 1.5


def _workload() -> tuple[int, int]:
    """(blocks, spends per block): reduced by default, BCWAN_FULL=1 full."""
    return (12, 32) if os.environ.get("BCWAN_FULL") == "1" else (8, 24)


def build_corpus(blocks: int, tx_per_block: int, seed: int = 0x7124):
    """Mine a chain whose later blocks each carry ``tx_per_block`` spends."""
    rng = random.Random(seed)
    node = FullNode(PARAMS, "throughput-builder")
    wallet = Wallet(node.chain, KeyPair.generate(rng))
    wallet.watch_chain()
    miner = Miner(chain=node.chain, mempool=node.mempool,
                  reward_pubkey_hash=wallet.pubkey_hash)
    miner.mine_and_connect(0.0)
    miner.mine_and_connect(1.0)
    # Split a matured coinbase so every block can carry independent spends.
    fanout = wallet.create_fanout(wallet.pubkey_hash, 1_000, tx_per_block + 8)
    assert node.mempool.accept(fanout).accepted
    miner.mine_and_connect(2.0)
    for i in range(blocks):
        for _ in range(tx_per_block):
            tx = wallet.create_payment(wallet.pubkey_hash,
                                       rng.randint(50, 400))
            assert node.mempool.accept(tx).accepted
        miner.mine_and_connect(3.0 + i)
    return [node.chain.block_at(h) for h in range(1, node.chain.height + 1)]


def make_filler(count: int = UTXO_SCALE):
    """``count`` synthetic unspent outputs no corpus block touches."""
    entry = UTXOEntry(
        output=TxOutput(value=1, script_pubkey=p2pkh_locking(b"\xfe" * 20)),
        height=0,
        is_coinbase=False,
    )
    return [(OutPoint(txid=i.to_bytes(32, "big"), index=0), entry)
            for i in range(count)]


def fresh_chain(filler) -> Chain:
    chain = Chain(PARAMS, verify_scripts=True)
    for outpoint, entry in filler:
        chain.utxos.add(outpoint, entry)
    return chain


def connect_serial_seed(corpus, filler) -> tuple[Chain, float]:
    """The seed path: per-input verification, one block at a time."""
    chain = fresh_chain(filler)
    chain.engine.batch_verify = False
    start = time.perf_counter()
    for block in corpus:
        chain.add_block(block)
    return chain, time.perf_counter() - start


def connect_fast(corpus, filler) -> tuple[Chain, float]:
    """Batched ECDSA + pipelined two-phase connect."""
    chain = fresh_chain(filler)
    start = time.perf_counter()
    chain.add_blocks(corpus)
    return chain, time.perf_counter() - start


def test_sustained_throughput(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    blocks, tx_per_block = _workload()
    corpus = build_corpus(blocks, tx_per_block)
    spends = sum(len(b.transactions) - 1 for b in corpus)
    filler = make_filler()

    serial_chain, serial_s = connect_serial_seed(corpus, filler)
    fast_chain, fast_s = connect_fast(corpus, filler)
    speedup = serial_s / fast_s

    # The fast path must be indistinguishable from the seed path.
    assert chain_digest(fast_chain) == chain_digest(serial_chain)
    assert utxo_digest(fast_chain) == utxo_digest(serial_chain)

    print_header(f"Sustained connect throughput — {len(corpus)} blocks, "
                 f"{spends} spends, {UTXO_SCALE} filler UTXOs")
    print_row("path", "connect (s)", "blocks/s", "speedup")
    print_row("serial (seed)", serial_s, len(corpus) / serial_s, 1.0)
    print_row("batched+pipelined", fast_s, len(corpus) / fast_s, speedup)

    Path("BENCH_throughput.json").write_text(json.dumps({
        "benchmark": "sustained_throughput",
        "blocks": len(corpus),
        "spends": spends,
        "utxo_scale": len(serial_chain.utxos),
        "serial_seconds": serial_s,
        "pipelined_seconds": fast_s,
        "speedup": speedup,
        "target_speedup": TARGET_SPEEDUP,
        "digests_identical": True,
    }, indent=2))

    assert speedup >= TARGET_SPEEDUP, (
        f"batched+pipelined connect only {speedup:.2f}x the serial seed "
        f"path (target {TARGET_SPEEDUP}x)")


def test_throughput_determinism():
    """Timing-free: repeated fast connects land on the serial digests."""
    corpus = build_corpus(blocks=3, tx_per_block=6)
    serial_chain, _ = connect_serial_seed(corpus, [])
    reference = (chain_digest(serial_chain), utxo_digest(serial_chain))
    for _ in range(2):
        fast_chain, _ = connect_fast(corpus, [])
        assert (chain_digest(fast_chain),
                utxo_digest(fast_chain)) == reference
