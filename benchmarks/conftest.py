"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's figures (or an ablation the
discussion section motivates) and prints the series next to the paper's
reported numbers.  Absolute values come from a calibrated simulation —
the *shape* (who wins, by what factor) is the reproduction target.

Scale: the paper measures 2000 exchanges.  By default the harness runs a
reduced workload so ``pytest benchmarks/ --benchmark-only`` finishes in a
few minutes; set ``BCWAN_FULL=1`` in the environment for the full 2000.
"""

from __future__ import annotations

import os
import sys

import pytest


def exchanges_target(default: int = 400, full: int = 2000) -> int:
    """Workload size: reduced by default, paper-scale with BCWAN_FULL=1."""
    return full if os.environ.get("BCWAN_FULL") == "1" else default


_CAPTURE_MANAGER = None


def pytest_configure(config) -> None:
    global _CAPTURE_MANAGER
    _CAPTURE_MANAGER = config.pluginmanager.getplugin("capturemanager")


def _emit(line: str = "") -> None:
    """Write past pytest's capture so the tables always reach the
    terminal (and any ``tee``), not just on failures."""
    if _CAPTURE_MANAGER is not None:
        with _CAPTURE_MANAGER.global_and_fixture_disabled():
            sys.stdout.write(line + "\n")
            sys.stdout.flush()
    else:
        sys.stdout.write(line + "\n")
        sys.stdout.flush()


def print_header(title: str) -> None:
    _emit()
    _emit("=" * 72)
    _emit(title)
    _emit("=" * 72)


def print_row(label: str, *values) -> None:
    cells = "  ".join(f"{v:>12}" if not isinstance(v, float)
                      else f"{v:>12.3f}" for v in values)
    _emit(f"{label:<34}{cells}")


def print_histogram(samples, bins=16, width=40) -> None:
    """ASCII histogram, the shape the paper's Figs. 5/6 plot."""
    from repro.obs.stats import histogram
    rows = histogram(samples, bins=bins)
    peak = max(count for _lo, _hi, count in rows) or 1
    for lo, hi, count in rows:
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        _emit(f"  {lo:8.2f}-{hi:8.2f} s | {count:5d} | {bar}")
