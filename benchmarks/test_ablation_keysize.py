"""Ablation B (§6) — why RSA-512: key size vs payload, airtime, security.

"We chose RSA-512 as method to encrypt our data due to the size limit of
the payload that can be sent on the LoRa network ... it is possible to use
higher levels of encryption but messages will be lengthier."  This
ablation makes the whole trade-off table: for each modulus size, the LoRa
frame size, its time-on-air, the duty-cycle message ceiling, and the
estimated factoring cost (anchored on the paper's own Valenta et al.
citation).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_header, print_row
from repro.attacks import KeySizeEconomics, factoring_cost_usd
from repro.lora.dutycycle import max_messages_per_hour
from repro.lora.phy import LoRaModulation

# LoRaWAN EU868 max application payload at SF7 is ~222 bytes.
MAX_LORA_PAYLOAD = 222


def test_keysize_tradeoff_table(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    modulation = LoRaModulation(spreading_factor=7)

    print_header("Ablation B — RSA modulus vs LoRa cost vs attack cost")
    print_row("bits", "frame B", "fits SF7", "ToA ms", "msgs/h",
              "attack $")
    rows = {}
    for bits in (512, 768, 1024, 2048):
        economics = KeySizeEconomics.for_bits(bits)
        frame = economics.lora_payload_bytes
        fits = frame <= MAX_LORA_PAYLOAD
        toa = modulation.time_on_air(frame) if fits else float("nan")
        rate = max_messages_per_hour(toa, 0.01) if fits else 0.0
        rows[bits] = (frame, fits, rate)
        print_row(
            str(bits), frame, str(fits),
            toa * 1000 if fits else float("nan"),
            rate,
            f"{economics.factoring_cost_usd:,.0f}",
        )

    # The paper's constraint, reproduced: 512 fits comfortably, 768 is
    # marginal, 1024+ cannot ride a single SF7 frame at all.
    assert rows[512][1]
    assert not rows[1024][1]
    assert not rows[2048][1]
    # And the security side: breaking 512 costs ~$75, far above the
    # micro-payment a message protects.
    assert 50 < factoring_cost_usd(512) < 100


def test_rate_cost_of_upgrading_to_768(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    modulation = LoRaModulation(spreading_factor=7)
    rate_512 = max_messages_per_hour(
        modulation.time_on_air(KeySizeEconomics.for_bits(512).lora_payload_bytes),
        0.01)
    rate_768 = max_messages_per_hour(
        modulation.time_on_air(KeySizeEconomics.for_bits(768).lora_payload_bytes),
        0.01)
    print_header("Throughput price of RSA-768 over RSA-512 (SF7, 1% duty)")
    print_row("msgs/hour at 512 bits", "-", rate_512)
    print_row("msgs/hour at 768 bits", "-", rate_768)
    print_row("throughput retained", "-", rate_768 / rate_512)
    assert rate_768 < 0.75 * rate_512
