"""Ablation A (§6) — double-spend exposure vs confirmation policy.

"the foreign gateway [does] not wait for confirmation ... a malicious
user could double spend this transaction" — the paper accepts the risk to
keep latency low and notes Bitcoin's 6-confirmation folklore.  This
ablation runs the staged race at every confirmation depth and prices the
trade-off: attack success on one axis, added settlement latency (in block
intervals) on the other.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_header, print_row
from repro.attacks import run_double_spend

BLOCK_INTERVAL = 15.0  # the testbed's mining period


def test_confirmations_vs_exposure(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    print_header("Ablation A — double-spend race vs confirmation depth")
    print_row("confirmations", "key leaked", "gateway paid",
              "attack wins", "added latency")
    outcomes = {}
    for confirmations in (0, 1, 2, 3, 6):
        result = run_double_spend(confirmations_required=confirmations)
        outcomes[confirmations] = result
        print_row(
            str(confirmations),
            str(result.key_revealed),
            str(result.gateway_paid),
            str(result.attack_succeeded),
            f"~{confirmations * BLOCK_INTERVAL:.0f} s",
        )

    # The paper's configuration (0-conf) is exposed...
    assert outcomes[0].attack_succeeded
    # ...and a single confirmation already closes the window against a
    # race attacker (deep reorgs need mining power, out of scope here).
    for confirmations in (1, 2, 3, 6):
        assert not outcomes[confirmations].attack_succeeded


def test_zero_conf_leak_is_total(benchmark):
    """Quantify what the attacker gets: the key, the data, the refund."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    result = run_double_spend(confirmations_required=0)
    print_header("Zero-confirmation attack outcome")
    print_row("ephemeral key revealed", "-", str(result.key_revealed))
    print_row("offer survived on chain", "-", str(result.offer_confirmed))
    print_row("gateway compensated", "-", str(result.gateway_paid))
    assert result.key_revealed and not result.offer_confirmed
