"""Ablation C (§5.1/§6) — the Multichain tunables.

The paper picked Multichain because "the average mining time, the size of
a block or the consensus" are parameters that "impact the theoretical
maximum number of transactions per second ... thus the overall
performance".  This ablation sweeps the mining interval under both
verification regimes and shows the mechanism behind Fig. 6: with
verification on, a shorter block interval means the daemon spends a larger
fraction of its life stalled, and exchange latency explodes; with
verification off the interval barely matters.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_header, print_row
from repro.core import BcWANNetwork, NetworkConfig

SCALE = dict(num_gateways=3, sensors_per_gateway=5, exchange_interval=40.0,
             seed=9)
EXCHANGES = 60


def run_once(block_interval: float, verify: bool):
    network = BcWANNetwork(NetworkConfig(
        block_interval=block_interval, verify_blocks=verify, **SCALE,
    ))
    return network.run(num_exchanges=EXCHANGES)


def test_block_interval_sweep(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    intervals = (12.0, 15.0, 30.0, 60.0)

    print_header("Ablation C — mining interval vs mean exchange latency")
    print_row("interval (s)", "no verify", "verify", "stall frac")
    results = {}
    for interval in intervals:
        fast = run_once(interval, verify=False)
        slow = run_once(interval, verify=True)
        stall = sum(s.stall_time for n, s in slow.daemon_stats.items()
                    if n != "master")
        stall_fraction = stall / (slow.duration * 3)
        results[interval] = (fast, slow, stall_fraction)
        print_row(
            f"{interval:.0f}",
            fast.mean_latency if fast.latencies else float("nan"),
            slow.mean_latency if slow.latencies else float("nan"),
            stall_fraction,
        )

    # Without verification the interval is irrelevant (sub-second spread).
    fast_means = [results[i][0].mean_latency for i in intervals]
    assert max(fast_means) - min(fast_means) < 1.0
    # With verification, faster blocks = more stall = more latency;
    # 60 s blocks must beat 12 s blocks by a wide margin.
    assert results[12.0][1].mean_latency > results[60.0][1].mean_latency
    # And the stall fraction is monotone in block frequency.
    assert results[12.0][2] > results[60.0][2]


def test_verification_stall_share(benchmark):
    """With the paper's 15 s interval, stalls dominate the daemon's life."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    slow = run_once(15.0, verify=True)
    site_stats = [s for n, s in slow.daemon_stats.items() if n != "master"]
    busy = sum(s.busy_time for s in site_stats)
    stall = sum(s.stall_time for s in site_stats)
    print_header("Daemon time budget at 15 s blocks, verification on")
    print_row("total busy time (s)", "-", busy)
    print_row("of which verification stalls", "-", stall)
    print_row("stall share of busy time", "-", stall / busy)
    assert stall / busy > 0.5
