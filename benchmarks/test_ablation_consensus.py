"""Ablation D (§6) — consensus at the edge: master-mined vs proof-of-stake.

"The Proof-of-Work is not suitable for edge nodes ... Other methods such
as Proof-of-stake do not rely on computational power and thus can help to
further close the gap of the blockchain to the edge nodes."

This ablation runs the same workload under the paper's master-mined
configuration and under the PoS slot lottery where the gateway sites
produce the blocks themselves.  Exchange latency is essentially unchanged
(consensus is off the exchange's critical path when blocks verify
cheaply), which is the point: removing the dedicated mining master costs
nothing — the federation loses its last centralized runtime component.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_header, print_row
from repro.core import BcWANNetwork, NetworkConfig

SCALE = dict(num_gateways=3, sensors_per_gateway=5, exchange_interval=40.0,
             seed=23)
EXCHANGES = 60


def test_consensus_comparison(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    master = BcWANNetwork(NetworkConfig(consensus="master", **SCALE))
    master_report = master.run(num_exchanges=EXCHANGES)
    pos = BcWANNetwork(NetworkConfig(consensus="pos", **SCALE))
    pos_report = pos.run(num_exchanges=EXCHANGES)

    runtime_producers = set()
    for _height, block in pos.sites[0].node.chain.iter_active_blocks(1):
        if block.header.timestamp > 0:
            runtime_producers.add(
                block.coinbase.outputs[0].script_pubkey.elements[2]
            )

    print_header("Ablation D — master-mined vs proof-of-stake production")
    print_row("", "master", "PoS")
    print_row("completed exchanges",
              master_report.completed, pos_report.completed)
    print_row("mean latency (s)",
              master_report.mean_latency, pos_report.mean_latency)
    print_row("p95 latency (s)",
              master_report.summary.p95, pos_report.summary.p95)
    print_row("chain height",
              master_report.chain_height, pos_report.chain_height)
    print_row("distinct block producers", 1, len(runtime_producers))

    assert pos_report.completed >= 0.85 * master_report.completed
    # Same latency regime: PoS costs at most ~2x on this workload.
    assert pos_report.mean_latency < 2.5 * master_report.mean_latency
    # Block production is actually decentralized.
    assert len(runtime_producers) >= 2


def test_pos_with_verification_stalls(benchmark):
    """The §6 tension, measured: with verification on, a leader's own
    stalled daemon delays its block production."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    pos = BcWANNetwork(NetworkConfig(consensus="pos", verify_blocks=True,
                                     **SCALE))
    report = pos.run(num_exchanges=30)
    intervals = []
    prev = None
    for _height, block in pos.sites[0].node.chain.iter_active_blocks(1):
        if block.header.timestamp > 0:
            if prev is not None:
                intervals.append(block.header.timestamp - prev)
            prev = block.header.timestamp
    mean_interval = (sum(intervals) / len(intervals)) if intervals else 0.0
    print_header("PoS production under verification stalls")
    print_row("completed exchanges", "-", report.completed)
    print_row("mean block interval (s)", 15.0, mean_interval)
    print_row("mean latency (s)", "-",
              report.mean_latency if report.latencies else float("nan"))
    # Stalled daemons can only delay production, never run early; at this
    # scale the stretch beyond the nominal slot is small but nonnegative.
    assert mean_interval >= 15.0
    assert report.completed >= 24
