"""Microbenchmarks of the blockchain substrate's hot paths.

Not a paper figure — engineering instrumentation for the reproduction
itself: how much host CPU one exchange's chain work costs, which bounds
how large a simulated workload is practical.  (The simulated *latency*
of these operations comes from the cost model, not from these numbers.)
"""

from __future__ import annotations

import random

import pytest

from repro.blockchain.engine import ValidationEngine
from repro.blockchain.miner import Miner
from repro.blockchain.node import FullNode
from repro.blockchain.params import ChainParams
from repro.blockchain.wallet import Wallet
from repro.crypto import rsa
from repro.crypto.keys import KeyPair


@pytest.fixture(scope="module")
def stack():
    rng = random.Random(0xBEEF)
    params = ChainParams(coinbase_maturity=1)
    node = FullNode(params, "bench", verify_scripts=False)
    wallet = Wallet(node.chain, KeyPair.generate(rng))
    wallet.watch_chain()
    miner = Miner(chain=node.chain, mempool=node.mempool,
                  reward_pubkey_hash=wallet.pubkey_hash)
    for i in range(30):
        miner.mine_and_connect(float(i))
    gateway = Wallet(node.chain, KeyPair.generate(rng))
    gateway.watch_chain()
    ephemeral = rsa.generate_keypair(512, rng)
    return rng, node, wallet, miner, gateway, ephemeral


def test_bench_build_and_sign_payment(benchmark, stack):
    rng, _node, wallet, _miner, gateway, _ephemeral = stack

    def build():
        tx = wallet.create_payment(gateway.pubkey_hash, 100)
        wallet.release_pending(tx)
        return tx

    benchmark(build)


def test_bench_build_key_release_offer(benchmark, stack):
    _rng, _node, wallet, _miner, gateway, ephemeral = stack
    epk = ephemeral.public_key.to_bytes()

    def build():
        offer = wallet.create_key_release_offer(
            epk, gateway.pubkey_hash, amount=100)
        wallet.release_pending(offer.transaction)
        return offer

    benchmark(build)


def test_bench_script_verification_p2pkh(benchmark, stack):
    _rng, node, wallet, _miner, gateway, _ephemeral = stack
    tx = wallet.create_payment(gateway.pubkey_hash, 100)
    wallet.release_pending(tx)
    # A fresh engine per round keeps this a pure interpreter benchmark
    # (no cache hits), matching what the old shim measured.
    benchmark(lambda: ValidationEngine(node.params)
              .verify_transaction_scripts(tx, node.chain.utxos))


def test_bench_claim_script_verification(benchmark, stack):
    """The full Listing-1 claim path: OP_CHECKRSA512PAIR + OP_CHECKSIG."""
    _rng, node, wallet, miner, gateway, ephemeral = stack
    offer = wallet.create_key_release_offer(
        ephemeral.public_key.to_bytes(), gateway.pubkey_hash, amount=100)
    assert node.submit_transaction(offer.transaction).accepted
    miner.mine_and_connect(100.0)
    claim = gateway.claim_key_release(offer, ephemeral.to_bytes())
    benchmark(lambda: ValidationEngine(node.params)
              .verify_transaction_scripts(claim, node.chain.utxos))


def test_bench_script_verification_cold_cache(benchmark, stack):
    """Every round pays the interpreter: a fresh engine per call.

    Paired with the warm benchmark below, the BENCH json captures the
    script-cache speedup trajectory across PRs.
    """
    _rng, node, wallet, _miner, gateway, _ephemeral = stack
    tx = wallet.create_payment(gateway.pubkey_hash, 100)
    wallet.release_pending(tx)

    def cold():
        engine = ValidationEngine(node.params)
        engine.verify_transaction_scripts(tx, node.chain.utxos)

    benchmark(cold)


def test_bench_script_verification_warm_cache(benchmark, stack):
    """Steady state after mempool admission: every verdict is a cache hit."""
    _rng, node, wallet, _miner, gateway, _ephemeral = stack
    tx = wallet.create_payment(gateway.pubkey_hash, 100)
    wallet.release_pending(tx)
    engine = ValidationEngine(node.params)
    engine.verify_transaction_scripts(tx, node.chain.utxos)  # warm it

    benchmark(lambda: engine.verify_transaction_scripts(tx, node.chain.utxos))
    # Only the warm-up paid the interpreter; every benchmarked round hit.
    assert engine.cache_stats.misses == len(tx.inputs)
    assert engine.cache_stats.hits >= len(tx.inputs)


def test_bench_mempool_accept(benchmark, stack):
    _rng, node, wallet, _miner, gateway, _ephemeral = stack

    def accept_and_remove():
        tx = wallet.create_payment(gateway.pubkey_hash, 100)
        node.mempool.accept(tx)
        node.mempool.remove(tx.txid)
        wallet.release_pending(tx)

    benchmark(accept_and_remove)


def test_bench_block_assembly_and_connect(benchmark, stack):
    _rng, node, wallet, miner, gateway, _ephemeral = stack

    def mine_one():
        tx = wallet.create_payment(gateway.pubkey_hash, 100)
        node.submit_transaction(tx)
        miner.mine_and_connect(float(node.chain.height + 1000))

    benchmark.pedantic(mine_one, rounds=10, iterations=1)
