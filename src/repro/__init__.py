"""BcWAN reproduction — a federated, blockchain-backed low-power WAN.

This package reproduces *"BcWAN: A Federated Low-Power WAN for the Internet
of Things"* (Middleware '18 Industry) end to end:

* :mod:`repro.crypto` — AES-256-CBC, RSA-512, secp256k1 ECDSA, hashing,
  Base58 addresses, all from scratch;
* :mod:`repro.script` — a Bitcoin-style script interpreter including the
  paper's custom ``OP_CHECKRSA512PAIR`` operator and Listing 1's
  ephemeral-key-release script;
* :mod:`repro.blockchain` — a Multichain-like UTXO blockchain with
  configurable mining interval, block size, and a block-verification stall
  model;
* :mod:`repro.sim` — a deterministic discrete-event simulator standing in
  for the paper's PlanetLab testbed;
* :mod:`repro.lora` — LoRa PHY/MAC: time-on-air, spreading factors, duty
  cycle, collisions;
* :mod:`repro.p2p` — gateway-to-gateway gossip of transactions and blocks;
* :mod:`repro.core` — the BcWAN protocol itself: provisioning, the Fig. 3
  message exchange, the on-chain IP directory, and the fair-exchange engine;
* :mod:`repro.baselines` — legacy LoRaWAN, altruistic-blockchain, and
  reputation-based comparison systems;
* :mod:`repro.attacks` — double-spend, withholding, and RSA brute-force
  threat models from the paper's discussion section.

Quickstart::

    from repro.core import BcWANNetwork, NetworkConfig

    network = BcWANNetwork(NetworkConfig(num_gateways=5, sensors_per_gateway=30))
    report = network.run(num_exchanges=100)
    print(report.mean_latency)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
