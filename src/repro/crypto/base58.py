"""Base58 and Base58Check encoding (the Bitcoin-family address alphabet)."""

from __future__ import annotations

from repro.crypto.hashing import double_sha256

__all__ = ["Base58Error", "encode", "decode", "encode_check", "decode_check"]

_ALPHABET = "123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz"
_INDEX = {char: i for i, char in enumerate(_ALPHABET)}


class Base58Error(Exception):
    """Raised on invalid characters or checksum failures."""


def encode(data: bytes) -> str:
    """Base58-encode ``data``, preserving leading zero bytes as '1's."""
    leading_zeros = len(data) - len(data.lstrip(b"\x00"))
    value = int.from_bytes(data, "big")
    chars = []
    while value:
        value, remainder = divmod(value, 58)
        chars.append(_ALPHABET[remainder])
    return "1" * leading_zeros + "".join(reversed(chars))


def decode(text: str) -> bytes:
    """Decode a Base58 string back to bytes."""
    value = 0
    for char in text:
        if char not in _INDEX:
            raise Base58Error(f"invalid base58 character: {char!r}")
        value = value * 58 + _INDEX[char]
    leading_ones = len(text) - len(text.lstrip("1"))
    body = value.to_bytes((value.bit_length() + 7) // 8, "big") if value else b""
    return b"\x00" * leading_ones + body


def encode_check(payload: bytes) -> str:
    """Base58Check: append a 4-byte double-SHA256 checksum, then encode."""
    return encode(payload + double_sha256(payload)[:4])


def decode_check(text: str) -> bytes:
    """Decode Base58Check, verifying the checksum."""
    raw = decode(text)
    if len(raw) < 4:
        raise Base58Error("base58check payload too short")
    payload, checksum = raw[:-4], raw[-4:]
    if double_sha256(payload)[:4] != checksum:
        raise Base58Error("base58check checksum mismatch")
    return payload
