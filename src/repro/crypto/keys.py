"""Blockchain key pairs and addresses.

A BcWAN *blockchain address* (the ``@R`` of the paper) is derived exactly
like a Bitcoin P2PKH address: ``Base58Check(version || HASH160(pubkey))``.
End devices are provisioned with the recipient's address and use it as the
routing identifier; gateways resolve it to an IP address via the on-chain
directory (paper section 4.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto import base58, ecdsa
from repro.crypto.hashing import hash160

__all__ = ["ADDRESS_VERSION", "KeyPair", "address_from_pubkey", "pubkey_hash_from_address"]

# Version byte for addresses; 0x19 keeps BcWAN addresses visually distinct
# from Bitcoin mainnet ones (they start with 'B').
ADDRESS_VERSION = 0x19


def address_from_pubkey(pubkey: ecdsa.PublicKey) -> str:
    """Derive the Base58Check address of a public key."""
    return base58.encode_check(bytes([ADDRESS_VERSION]) + hash160(pubkey.to_bytes()))


def pubkey_hash_from_address(address: str) -> bytes:
    """Extract the 20-byte HASH160 a script locks to from an address."""
    payload = base58.decode_check(address)
    if len(payload) != 21 or payload[0] != ADDRESS_VERSION:
        raise base58.Base58Error(f"not a BcWAN address: {address!r}")
    return payload[1:]


@dataclass(frozen=True)
class KeyPair:
    """An ECDSA key pair with its derived address, used by wallets."""

    private_key: ecdsa.PrivateKey

    @property
    def public_key(self) -> ecdsa.PublicKey:
        return self.private_key.public_key

    @property
    def address(self) -> str:
        return address_from_pubkey(self.public_key)

    @property
    def pubkey_hash(self) -> bytes:
        return hash160(self.public_key.to_bytes())

    @classmethod
    def generate(cls, rng: Optional[random.Random] = None) -> "KeyPair":
        return cls(private_key=ecdsa.generate_private_key(rng))

    def sign(self, message_hash: bytes) -> ecdsa.Signature:
        return self.private_key.sign(message_hash)
