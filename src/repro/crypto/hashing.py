"""Hashing facade used by the rest of the repository.

SHA-256 goes through :mod:`hashlib` (C speed) on hot paths; the pure-Python
implementations in :mod:`repro.crypto.sha256` and
:mod:`repro.crypto.ripemd160` are the reference implementations the test
suite validates against.  RIPEMD-160 always uses the pure-Python code since
OpenSSL 3 dropped it from the default provider.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.crypto.ripemd160 import ripemd160 as _ripemd160_pure

__all__ = ["sha256", "double_sha256", "hash160", "hmac_sha256", "tagged_hash"]


def sha256(data: bytes) -> bytes:
    """SHA-256 of ``data``."""
    return hashlib.sha256(data).digest()


def double_sha256(data: bytes) -> bytes:
    """SHA-256 applied twice — the Bitcoin-family transaction/block hash."""
    return hashlib.sha256(hashlib.sha256(data).digest()).digest()


def hash160(data: bytes) -> bytes:
    """RIPEMD160(SHA256(data)) — the Bitcoin-family address hash."""
    return _ripemd160_pure(hashlib.sha256(data).digest())


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256, used by deterministic ECDSA nonces (RFC 6979)."""
    return _hmac.new(key, message, hashlib.sha256).digest()


def tagged_hash(tag: str, data: bytes) -> bytes:
    """BIP-340 style tagged hash; used to domain-separate protocol hashes."""
    tag_digest = hashlib.sha256(tag.encode("utf-8")).digest()
    return hashlib.sha256(tag_digest + tag_digest + data).digest()
