"""ECDSA over secp256k1, implemented from scratch.

The blockchain substrate signs transactions with ECDSA exactly as
Bitcoin/Multichain do (paper section 2 describes scripting around "ECDSA
signatures and keys").  Nonces are deterministic per RFC 6979 so that
signing is reproducible in simulation and never reuses a nonce.

Points are handled in Jacobian coordinates for speed; signatures are
low-S normalized (BIP 62) and serialized as the compact 64-byte ``r || s``
form, which keeps the script interpreter simple compared to DER.

Verification computes ``u1*G + u2*Q`` with Shamir's trick: both scalars
are recoded to width-w NAF and walked in one interleaved ladder, sharing
the 256 doublings that the two separate multiplies each paid on their
own.  The generator's odd multiples are built once at import; each public
key's odd multiples are kept in a small bounded cache so a key that
verifies many signatures (a busy gateway) pays its table once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashing import hmac_sha256

__all__ = [
    "CURVE_ORDER",
    "ECDSAError",
    "PrivateKey",
    "PublicKey",
    "Signature",
    "generate_private_key",
    "verify_batch",
    "verify_double_multiply",
]

# secp256k1 domain parameters.
_P = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEFFFFFC2F
_A = 0
_B = 7
_GX = 0x79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798
_GY = 0x483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8
CURVE_ORDER = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFEBAAEDCE6AF48A03BBFD25E8CD0364141


class ECDSAError(Exception):
    """Raised on invalid keys, points, or signature encodings."""


# --- Jacobian point arithmetic -------------------------------------------

_INFINITY = (0, 0, 0)  # z == 0 marks the point at infinity


def _jacobian_double(point: tuple[int, int, int]) -> tuple[int, int, int]:
    x, y, z = point
    if not y or not z:
        return _INFINITY
    ysq = (y * y) % _P
    s = (4 * x * ysq) % _P
    m = (3 * x * x) % _P  # a == 0 for secp256k1
    nx = (m * m - 2 * s) % _P
    ny = (m * (s - nx) - 8 * ysq * ysq) % _P
    nz = (2 * y * z) % _P
    return nx, ny, nz


def _jacobian_add(p: tuple[int, int, int],
                  q: tuple[int, int, int]) -> tuple[int, int, int]:
    if not p[2]:
        return q
    if not q[2]:
        return p
    x1, y1, z1 = p
    x2, y2, z2 = q
    z1sq = (z1 * z1) % _P
    z2sq = (z2 * z2) % _P
    u1 = (x1 * z2sq) % _P
    u2 = (x2 * z1sq) % _P
    s1 = (y1 * z2sq * z2) % _P
    s2 = (y2 * z1sq * z1) % _P
    if u1 == u2:
        if s1 != s2:
            return _INFINITY
        return _jacobian_double(p)
    h = (u2 - u1) % _P
    r = (s2 - s1) % _P
    hsq = (h * h) % _P
    hcu = (hsq * h) % _P
    u1hsq = (u1 * hsq) % _P
    nx = (r * r - hcu - 2 * u1hsq) % _P
    ny = (r * (u1hsq - nx) - s1 * hcu) % _P
    nz = (h * z1 * z2) % _P
    return nx, ny, nz


def _jacobian_multiply(point: tuple[int, int, int],
                       scalar: int) -> tuple[int, int, int]:
    scalar %= CURVE_ORDER
    result = _INFINITY
    addend = point
    while scalar:
        if scalar & 1:
            result = _jacobian_add(result, addend)
        addend = _jacobian_double(addend)
        scalar >>= 1
    return result


# Mixed addition: q comes from a precomputed table whose entries are
# normalized to affine (z == 1), which drops the z2-dependent work of the
# generic formula (~30% fewer field multiplications per add).
def _jacobian_add_affine(p: tuple[int, int, int],
                         q: tuple[int, int, int]) -> tuple[int, int, int]:
    if not p[2]:
        return q
    x1, y1, z1 = p
    x2, y2, _one = q
    z1sq = (z1 * z1) % _P
    u2 = (x2 * z1sq) % _P
    s2 = (y2 * z1sq * z1) % _P
    if x1 == u2:
        if y1 != s2:
            return _INFINITY
        return _jacobian_double(p)
    h = (u2 - x1) % _P
    r = (s2 - y1) % _P
    hsq = (h * h) % _P
    hcu = (hsq * h) % _P
    u1hsq = (x1 * hsq) % _P
    nx = (r * r - hcu - 2 * u1hsq) % _P
    ny = (r * (u1hsq - nx) - y1 * hcu) % _P
    nz = (h * z1) % _P
    return nx, ny, nz


def _batch_inverse(values: list[int], modulus: int) -> list[int]:
    """Montgomery's trick: invert every (nonzero) value in one ``pow``.

    ``k`` inversions cost one modular inversion plus ``3(k-1)``
    multiplications instead of ``k`` inversions.
    """
    if not values:
        return []
    prefix = [1] * (len(values) + 1)
    for index, value in enumerate(values):
        prefix[index + 1] = (prefix[index] * value) % modulus
    inverse = pow(prefix[-1], -1, modulus)
    out = [0] * len(values)
    for index in range(len(values) - 1, -1, -1):
        out[index] = (prefix[index] * inverse) % modulus
        inverse = (inverse * values[index]) % modulus
    return out


# Fixed-base acceleration: precompute base, 2*base, 3*base, ... for each
# w-bit window of the scalar, then normalize every table entry to affine
# so lookups feed the cheap mixed addition above.  A multiply becomes
# doubling-free — one lookup + one mixed add per nonzero window.  The
# generator affords a wide 8-bit window (32 windows, 255 entries each,
# built once at import); per-pubkey tables stay at 4 bits to keep the
# on-demand build cost amortizable.
_WINDOW_BITS = 4
_GENERATOR_WINDOW_BITS = 8


def _build_window_tables(base: tuple[int, int, int],
                         window_bits: int = _WINDOW_BITS,
                         ) -> list[list[tuple[int, int, int]]]:
    """Affine per-window multiples: ``tables[w][d] == d * 2**(w*bits) * base``."""
    windows = (256 + window_bits - 1) // window_bits
    tables: list[list[tuple[int, int, int]]] = []
    for _window in range(windows):
        row = [_INFINITY]
        current = _INFINITY
        for _ in range((1 << window_bits) - 1):
            current = _jacobian_add(current, base)
            row.append(current)
        tables.append(row)
        for _ in range(window_bits):
            base = _jacobian_double(base)
    # One Montgomery pass flattens every entry to z == 1.
    flat = [entry for row in tables for entry in row if entry[2]]
    inverses = iter(_batch_inverse([entry[2] for entry in flat], _P))
    normalized = []
    for row in tables:
        new_row = []
        for entry in row:
            if not entry[2]:
                new_row.append(entry)
                continue
            x, y, _z = entry
            z_inv = next(inverses)
            z_inv_sq = (z_inv * z_inv) % _P
            new_row.append(((x * z_inv_sq) % _P,
                            (y * z_inv_sq * z_inv) % _P, 1))
        normalized.append(new_row)
    return normalized


_G_TABLES = _build_window_tables((_GX, _GY, 1), _GENERATOR_WINDOW_BITS)


def _windowed_multiply(tables: list[list[tuple[int, int, int]]],
                       scalar: int) -> tuple[int, int, int]:
    """``scalar * base`` via ``base``'s precomputed window tables.

    Doubling-free: each window is one table lookup plus one mixed add.
    The window width is recovered from the table shape, so generator
    (8-bit) and pubkey (4-bit) tables share this walk.
    """
    mask = len(tables[0]) - 1
    shift = mask.bit_length()
    scalar %= CURVE_ORDER
    result = _INFINITY
    window = 0
    while scalar:
        digit = scalar & mask
        if digit:
            result = _jacobian_add_affine(result, tables[window][digit])
        scalar >>= shift
        window += 1
    return result


def _generator_multiply(scalar: int) -> tuple[int, int, int]:
    """``scalar * G`` via the precomputed window tables."""
    return _windowed_multiply(_G_TABLES, scalar)


def _to_affine(point: tuple[int, int, int]) -> Optional[tuple[int, int]]:
    x, y, z = point
    if not z:
        return None
    z_inv = pow(z, -1, _P)
    z_inv_sq = (z_inv * z_inv) % _P
    return (x * z_inv_sq) % _P, (y * z_inv_sq * z_inv) % _P


def _point_on_curve(x: int, y: int) -> bool:
    return (y * y - x * x * x - _B) % _P == 0


_G_JACOBIAN = (_GX, _GY, 1)


# --- Shamir's trick: interleaved dual-scalar multiplication ----------------
#
# verify() needs u1*G + u2*Q.  Doing the multiplies separately costs two
# full ladders (~512 doublings); recoding both scalars to width-w NAF and
# walking them in one interleaved pass shares the ~256 doublings and adds
# only a sparse stream of table lookups (~256/(w+1) per scalar).

_G_NAF_WIDTH = 6       # generator table is built once, afford a wide window
_PUBKEY_NAF_WIDTH = 5  # per-key tables are built on demand, keep them small

# Bound on cached per-pubkey tables: FIFO, like the engine's script cache —
# entries are immutable, so recency tracking buys nothing over FIFO.
_PUBKEY_TABLE_LIMIT = 256


def _wnaf(scalar: int, width: int) -> list[int]:
    """Width-``w`` non-adjacent form, least-significant digit first.

    Every non-zero digit is odd and within ``(-2**(w-1), 2**(w-1))``, and
    any two non-zero digits are at least ``width`` positions apart.
    """
    digits: list[int] = []
    while scalar:
        if scalar & 1:
            digit = scalar & ((1 << width) - 1)
            if digit >= 1 << (width - 1):
                digit -= 1 << width
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def _odd_multiples(point: tuple[int, int, int],
                   count: int) -> list[tuple[int, int, int]]:
    """``[P, 3P, 5P, ..., (2*count - 1)P]`` in Jacobian coordinates."""
    table = [point]
    twice = _jacobian_double(point)
    for _ in range(count - 1):
        table.append(_jacobian_add(table[-1], twice))
    return table


_G_NAF_TABLE = _odd_multiples(_G_JACOBIAN, 1 << (_G_NAF_WIDTH - 2))

_pubkey_naf_tables: dict[tuple[int, int], list[tuple[int, int, int]]] = {}


def _pubkey_naf_table(x: int, y: int) -> list[tuple[int, int, int]]:
    table = _pubkey_naf_tables.get((x, y))
    if table is None:
        table = _odd_multiples((x, y, 1), 1 << (_PUBKEY_NAF_WIDTH - 2))
        if len(_pubkey_naf_tables) >= _PUBKEY_TABLE_LIMIT:
            _pubkey_naf_tables.pop(next(iter(_pubkey_naf_tables)))
        _pubkey_naf_tables[(x, y)] = table
    return table


def _negate(point: tuple[int, int, int]) -> tuple[int, int, int]:
    x, y, z = point
    return (x, (-y) % _P, z)


def _shamir_multiply(u1: int, u2: int,
                     qx: int, qy: int) -> tuple[int, int, int]:
    """``u1*G + u2*Q`` via one interleaved width-w NAF ladder."""
    naf_g = _wnaf(u1 % CURVE_ORDER, _G_NAF_WIDTH)
    naf_q = _wnaf(u2 % CURVE_ORDER, _PUBKEY_NAF_WIDTH)
    table_q = _pubkey_naf_table(qx, qy) if naf_q else ()
    result = _INFINITY
    for i in range(max(len(naf_g), len(naf_q)) - 1, -1, -1):
        result = _jacobian_double(result)
        if i < len(naf_g):
            digit = naf_g[i]
            if digit > 0:
                result = _jacobian_add(result, _G_NAF_TABLE[digit >> 1])
            elif digit < 0:
                result = _jacobian_add(result, _negate(_G_NAF_TABLE[-digit >> 1]))
        if i < len(naf_q):
            digit = naf_q[i]
            if digit > 0:
                result = _jacobian_add(result, table_q[digit >> 1])
            elif digit < 0:
                result = _jacobian_add(result, _negate(table_q[-digit >> 1]))
    return result


# --- Cross-signature batch verification ------------------------------------
#
# A block (or a busy mempool window) verifies many signatures at once, and
# in the BcWAN deployment most of them come from a handful of gateway
# keys.  verify_batch() exploits both axes:
#
# * a pubkey seen often enough gets the same doubling-free affine window
#   tables the generator enjoys, so u1*G + u2*Q drops from ~256 doublings
#   + ~94 additions (the Shamir ladder) to ~32 + ~64 mixed additions —
#   the table build (~1.2k point ops) amortizes after about six
#   signatures;
# * every modular inversion in the batch (the s**-1 scalars mod n, the
#   z**-1 affine conversions mod p) collapses into one inversion plus
#   3(k-1) multiplications via Montgomery's trick.
#
# Verdicts are bit-identical to calling PublicKey.verify() per signature:
# both paths compute the same group element and compare the same affine
# x coordinate, only the coordinate bookkeeping differs.

#: Signatures a pubkey must contribute to one batch before the fixed-base
#: window tables are built for it (build cost ~= six Shamir ladders).
_FIXED_TABLE_THRESHOLD = 6

#: FIFO bound on cached per-pubkey window tables (1024 points each).
_FIXED_TABLE_LIMIT = 16

_pubkey_fixed_tables: dict[tuple[int, int],
                           list[list[tuple[int, int, int]]]] = {}


def _pubkey_window_tables(x: int, y: int) -> list[list[tuple[int, int, int]]]:
    tables = _pubkey_fixed_tables.get((x, y))
    if tables is None:
        tables = _build_window_tables((x, y, 1))
        if len(_pubkey_fixed_tables) >= _FIXED_TABLE_LIMIT:
            _pubkey_fixed_tables.pop(next(iter(_pubkey_fixed_tables)))
        _pubkey_fixed_tables[(x, y)] = tables
    return tables


def verify_batch(items: "list[tuple[PublicKey, bytes, Signature]]"
                 ) -> list[bool]:
    """Verify ``(public_key, message_hash, signature)`` triples together.

    Returns one verdict per item, bit-identical to
    ``public_key.verify(message_hash, signature)`` (with the default
    ``require_low_s=False``) — the batch machinery changes where the
    work happens, never what is accepted.
    """
    verdicts: list[bool] = [False] * len(items)
    live: list[tuple[int, "PublicKey", int, int, int]] = []
    for index, (public_key, message_hash, signature) in enumerate(items):
        if len(message_hash) != 32:
            raise ECDSAError("message hash must be 32 bytes")
        r, s = signature.r, signature.s
        if not (0 < r < CURVE_ORDER and 0 < s < CURVE_ORDER):
            continue  # verdict stays False, as verify() would return
        z = int.from_bytes(message_hash, "big") % CURVE_ORDER
        live.append((index, public_key, z, r, s))

    s_inverses = _batch_inverse([entry[4] for entry in live], CURVE_ORDER)

    counts: dict[tuple[int, int], int] = {}
    for _, public_key, _, _, _ in live:
        key = (public_key.x, public_key.y)
        counts[key] = counts.get(key, 0) + 1

    points: list[tuple[int, int, tuple[int, int, int]]] = []
    for (index, public_key, z, r, s), s_inv in zip(live, s_inverses):
        u1 = (z * s_inv) % CURVE_ORDER
        u2 = (r * s_inv) % CURVE_ORDER
        key = (public_key.x, public_key.y)
        if counts[key] >= _FIXED_TABLE_THRESHOLD or key in _pubkey_fixed_tables:
            point = _jacobian_add(
                _windowed_multiply(_G_TABLES, u1),
                _windowed_multiply(_pubkey_window_tables(*key), u2),
            )
        else:
            point = _shamir_multiply(u1, u2, public_key.x, public_key.y)
        points.append((index, r, point))

    finite = [(index, r, point) for index, r, point in points if point[2]]
    z_inverses = _batch_inverse([point[2] for _, _, point in finite], _P)
    for (index, r, point), z_inv in zip(finite, z_inverses):
        x_affine = (point[0] * z_inv * z_inv) % _P
        verdicts[index] = x_affine % CURVE_ORDER == r
    return verdicts


# --- Key and signature types ----------------------------------------------

@dataclass(frozen=True)
class Signature:
    """An ECDSA signature ``(r, s)`` in low-S form."""

    r: int
    s: int

    @property
    def is_low_s(self) -> bool:
        """Whether ``s`` is in the canonical (BIP 62) lower half-range."""
        return 0 < self.s <= CURVE_ORDER // 2

    def to_bytes(self) -> bytes:
        """Compact 64-byte ``r || s`` serialization."""
        return self.r.to_bytes(32, "big") + self.s.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "Signature":
        if len(data) != 64:
            raise ECDSAError(
                f"compact signature must be 64 bytes, got {len(data)}"
            )
        r = int.from_bytes(data[:32], "big")
        s = int.from_bytes(data[32:], "big")
        if not (0 < r < CURVE_ORDER and 0 < s < CURVE_ORDER):
            raise ECDSAError("signature scalars out of range")
        return cls(r=r, s=s)


@dataclass(frozen=True)
class PublicKey:
    """A point on secp256k1."""

    x: int
    y: int

    def __post_init__(self) -> None:
        if not _point_on_curve(self.x, self.y):
            raise ECDSAError("public key point is not on secp256k1")

    def to_bytes(self) -> bytes:
        """SEC1 compressed serialization (33 bytes)."""
        prefix = b"\x03" if self.y & 1 else b"\x02"
        return prefix + self.x.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PublicKey":
        if len(data) != 33 or data[0] not in (2, 3):
            raise ECDSAError(
                f"expected 33-byte compressed point, got {len(data)} bytes"
            )
        x = int.from_bytes(data[1:], "big")
        if x >= _P:
            raise ECDSAError("x coordinate out of field range")
        y_sq = (pow(x, 3, _P) + _B) % _P
        y = pow(y_sq, (_P + 1) // 4, _P)
        if (y * y) % _P != y_sq:
            raise ECDSAError("point has no square root: not on curve")
        if (y & 1) != (data[0] & 1):
            y = _P - y
        return cls(x=x, y=y)

    def verify(self, message_hash: bytes, signature: Signature,
               require_low_s: bool = False) -> bool:
        """Verify ``signature`` over a 32-byte ``message_hash``.

        ``require_low_s=True`` additionally rejects non-canonical high-S
        encodings (the malleable twin of every valid signature).  That is
        a *standardness* knob: consensus verification leaves it False so
        historical blocks carrying either encoding stay valid.
        """
        if len(message_hash) != 32:
            raise ECDSAError("message hash must be 32 bytes")
        r, s = signature.r, signature.s
        if not (0 < r < CURVE_ORDER and 0 < s < CURVE_ORDER):
            return False
        if require_low_s and not signature.is_low_s:
            return False
        z = int.from_bytes(message_hash, "big") % CURVE_ORDER
        s_inv = pow(s, -1, CURVE_ORDER)
        u1 = (z * s_inv) % CURVE_ORDER
        u2 = (r * s_inv) % CURVE_ORDER
        affine = _to_affine(_shamir_multiply(u1, u2, self.x, self.y))
        if affine is None:
            return False
        return affine[0] % CURVE_ORDER == r


@dataclass(frozen=True)
class PrivateKey:
    """A secp256k1 private scalar."""

    secret: int

    def __post_init__(self) -> None:
        if not 0 < self.secret < CURVE_ORDER:
            raise ECDSAError("private key scalar out of range")

    @property
    def public_key(self) -> PublicKey:
        affine = _to_affine(_generator_multiply(self.secret))
        assert affine is not None  # secret is in (0, order)
        return PublicKey(x=affine[0], y=affine[1])

    def to_bytes(self) -> bytes:
        return self.secret.to_bytes(32, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "PrivateKey":
        if len(data) != 32:
            raise ECDSAError(f"private key must be 32 bytes, got {len(data)}")
        return cls(secret=int.from_bytes(data, "big"))

    def sign(self, message_hash: bytes) -> Signature:
        """Sign a 32-byte ``message_hash`` with an RFC 6979 nonce."""
        if len(message_hash) != 32:
            raise ECDSAError("message hash must be 32 bytes")
        z = int.from_bytes(message_hash, "big") % CURVE_ORDER
        for k in _rfc6979_nonces(self.secret, message_hash):
            affine = _to_affine(_generator_multiply(k))
            assert affine is not None
            r = affine[0] % CURVE_ORDER
            if r == 0:
                continue
            k_inv = pow(k, -1, CURVE_ORDER)
            s = (k_inv * (z + r * self.secret)) % CURVE_ORDER
            if s == 0:
                continue
            if s > CURVE_ORDER // 2:  # low-S normalization (BIP 62)
                s = CURVE_ORDER - s
            return Signature(r=r, s=s)
        raise ECDSAError("nonce generation exhausted")  # pragma: no cover


def _rfc6979_nonces(secret: int, message_hash: bytes):
    """Yield deterministic nonce candidates per RFC 6979 (SHA-256)."""
    x = secret.to_bytes(32, "big")
    v = b"\x01" * 32
    k = b"\x00" * 32
    k = hmac_sha256(k, v + b"\x00" + x + message_hash)
    v = hmac_sha256(k, v)
    k = hmac_sha256(k, v + b"\x01" + x + message_hash)
    v = hmac_sha256(k, v)
    while True:
        v = hmac_sha256(k, v)
        candidate = int.from_bytes(v, "big")
        if 0 < candidate < CURVE_ORDER:
            yield candidate
        k = hmac_sha256(k, v + b"\x00")
        v = hmac_sha256(k, v)


def verify_double_multiply(public_key: PublicKey, message_hash: bytes,
                           signature: Signature) -> bool:
    """The pre-Shamir reference verifier: two independent multiplies.

    Kept as a differential oracle — the edge-vector corpus runs every
    input through both this and :meth:`PublicKey.verify` and demands
    identical verdicts — and as the baseline for the Shamir microbench.
    """
    if len(message_hash) != 32:
        raise ECDSAError("message hash must be 32 bytes")
    r, s = signature.r, signature.s
    if not (0 < r < CURVE_ORDER and 0 < s < CURVE_ORDER):
        return False
    z = int.from_bytes(message_hash, "big") % CURVE_ORDER
    s_inv = pow(s, -1, CURVE_ORDER)
    u1 = (z * s_inv) % CURVE_ORDER
    u2 = (r * s_inv) % CURVE_ORDER
    point = _jacobian_add(
        _generator_multiply(u1),
        _jacobian_multiply((public_key.x, public_key.y, 1), u2),
    )
    affine = _to_affine(point)
    if affine is None:
        return False
    return affine[0] % CURVE_ORDER == r


def generate_private_key(rng=None) -> PrivateKey:
    """Generate a private key; pass a seeded RNG for reproducible keys."""
    import random as _random
    rng = rng or _random.SystemRandom()
    while True:
        secret = rng.getrandbits(256)
        if 0 < secret < CURVE_ORDER:
            return PrivateKey(secret=secret)
