"""Prime generation and modular arithmetic for the RSA substrate.

Miller-Rabin here is the deterministic-for-64-bit / probabilistic-beyond
variant with configurable witness rounds; prime generation draws candidates
from a caller-supplied RNG so that simulations can be made bit-for-bit
reproducible (see :mod:`repro.sim.rng`).
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "modinv",
    "lcm",
]

# Small primes used to cheaply reject most composite candidates before the
# Miller-Rabin rounds.
_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
)

# Deterministic witness set for n < 3.3 * 10^24 (Sorenson & Webster).
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_BOUND = 3_317_044_064_679_887_385_961_981


def _miller_rabin_witness(n: int, a: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite."""
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x in (1, n - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_probable_prime(n: int, rounds: int = 40,
                      rng: Optional[random.Random] = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic (no false positives) for ``n`` below ~3.3e24; otherwise
    probabilistic with error probability at most ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False

    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n]
    else:
        rng = rng or random
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]

    return not any(_miller_rabin_witness(n, a) for a in witnesses)


def generate_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Generate a random prime of exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits (standard RSA practice), and the low bit is
    forced to 1 so candidates are odd.
    """
    if bits < 8:
        raise ValueError(f"prime size too small: {bits} bits")
    rng = rng or random.SystemRandom()
    top_bits = (1 << (bits - 1)) | (1 << (bits - 2))
    while True:
        candidate = rng.getrandbits(bits) | top_bits | 1
        if is_probable_prime(candidate, rng=rng):
            return candidate


def modinv(a: int, m: int) -> int:
    """Modular inverse of ``a`` mod ``m``; raises ValueError if none exists."""
    try:
        return pow(a, -1, m)
    except ValueError as exc:  # pragma: no cover - message normalization
        raise ValueError(f"{a} has no inverse modulo {m}") from exc


def lcm(a: int, b: int) -> int:
    """Least common multiple; used for the RSA Carmichael exponent."""
    import math
    return a // math.gcd(a, b) * b
