"""Block-cipher chaining modes and padding for the BcWAN payload pipeline.

The paper (section 5.1) encrypts sensor payloads with AES-256-CBC over
16-byte blocks with padding, prepending the random IV so the recipient can
decrypt — exactly what :func:`encrypt_cbc` / :func:`decrypt_cbc` provide.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.crypto.aes import AES, BLOCK_SIZE

__all__ = [
    "PaddingError",
    "pad_pkcs7",
    "unpad_pkcs7",
    "encrypt_cbc",
    "decrypt_cbc",
    "random_iv",
]


class PaddingError(Exception):
    """Raised when PKCS#7 padding is malformed on decryption."""


def pad_pkcs7(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """PKCS#7-pad ``data`` up to a multiple of ``block_size``.

    A full block of padding is added when the input is already aligned, so
    padding is always removable unambiguously.
    """
    if not 1 <= block_size <= 255:
        raise ValueError(f"invalid block size: {block_size}")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def unpad_pkcs7(data: bytes, block_size: int = BLOCK_SIZE) -> bytes:
    """Remove PKCS#7 padding, raising :class:`PaddingError` if malformed."""
    if not data or len(data) % block_size:
        raise PaddingError(
            f"padded data length {len(data)} is not a multiple of {block_size}"
        )
    pad_len = data[-1]
    if not 1 <= pad_len <= block_size:
        raise PaddingError(f"invalid padding length byte: {pad_len}")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("inconsistent padding bytes")
    return data[:-pad_len]


def random_iv(rng: Optional[random.Random] = None) -> bytes:
    """A fresh 16-byte CBC initialization vector."""
    rng = rng or random.SystemRandom()
    return bytes(rng.randrange(256) for _ in range(BLOCK_SIZE))


def encrypt_cbc(key: bytes, plaintext: bytes, iv: Optional[bytes] = None,
                rng: Optional[random.Random] = None) -> tuple[bytes, bytes]:
    """AES-CBC encrypt ``plaintext`` with PKCS#7 padding.

    Returns ``(iv, ciphertext)``; the IV travels alongside the ciphertext in
    the BcWAN message format (Fig. 4 of the paper).
    """
    if iv is None:
        iv = random_iv(rng)
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    cipher = AES(key)
    padded = pad_pkcs7(plaintext)
    blocks = []
    previous = iv
    for offset in range(0, len(padded), BLOCK_SIZE):
        block = bytes(
            a ^ b
            for a, b in zip(padded[offset:offset + BLOCK_SIZE], previous)
        )
        encrypted = cipher.encrypt_block(block)
        blocks.append(encrypted)
        previous = encrypted
    return iv, b"".join(blocks)


def decrypt_cbc(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """AES-CBC decrypt and strip PKCS#7 padding."""
    if len(iv) != BLOCK_SIZE:
        raise ValueError(f"IV must be {BLOCK_SIZE} bytes, got {len(iv)}")
    if not ciphertext or len(ciphertext) % BLOCK_SIZE:
        raise ValueError(
            f"ciphertext length {len(ciphertext)} is not a positive multiple "
            f"of {BLOCK_SIZE}"
        )
    cipher = AES(key)
    blocks = []
    previous = iv
    for offset in range(0, len(ciphertext), BLOCK_SIZE):
        encrypted = ciphertext[offset:offset + BLOCK_SIZE]
        decrypted = cipher.decrypt_block(encrypted)
        blocks.append(bytes(a ^ b for a, b in zip(decrypted, previous)))
        previous = encrypted
    return unpad_pkcs7(b"".join(blocks))
