"""RSA implemented from scratch, sized for BcWAN's RSA-512 usage.

BcWAN uses RSA-512 in two places (paper section 5.1):

* the **gateway** generates an *ephemeral* RSA-512 key pair per message; the
  node wraps its AES ciphertext with the ephemeral public key, and the
  blockchain script ``OP_CHECKRSA512PAIR`` later forces the gateway to reveal
  the matching private key to collect payment;
* the **node** signs the encrypted message and the ephemeral public key with
  its provisioned RSA-512 secret key so the recipient can authenticate it.

The paper explicitly accepts RSA-512's weakness because LoRa payloads are
tiny and the protected value is a micro-payment (section 6); larger moduli
are supported here for the key-size ablation benchmark.

Encryption/signature padding is PKCS#1 v1.5 (what OpenSSL's legacy RSA API,
used by the paper's PoC, applies by default).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto import primes
from repro.crypto.hashing import sha256

__all__ = [
    "RSAPublicKey",
    "RSAPrivateKey",
    "RSAError",
    "generate_keypair",
    "max_plaintext_length",
]

_PUBLIC_EXPONENT = 65537

# DER prefix of the DigestInfo structure for SHA-256 (RFC 8017 section 9.2).
_SHA256_DIGEST_INFO = bytes.fromhex(
    "3031300d060960864801650304020105000420"
)


class RSAError(Exception):
    """Raised on malformed ciphertexts, bad padding, or oversized inputs."""


@dataclass(frozen=True)
class RSAPublicKey:
    """An RSA public key ``(n, e)``."""

    n: int
    e: int = _PUBLIC_EXPONENT

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.bits + 7) // 8

    def encrypt(self, plaintext: bytes, rng: Optional[random.Random] = None) -> bytes:
        """PKCS#1 v1.5 encrypt; plaintext must be at most ``k - 11`` bytes."""
        k = self.byte_length
        if len(plaintext) > k - 11:
            raise RSAError(
                f"plaintext too long for RSA-{self.bits}: "
                f"{len(plaintext)} > {k - 11} bytes"
            )
        rng = rng or random.SystemRandom()
        pad_len = k - 3 - len(plaintext)
        padding = bytes(rng.randrange(1, 256) for _ in range(pad_len))
        block = b"\x00\x02" + padding + b"\x00" + plaintext
        return pow(int.from_bytes(block, "big"), self.e, self.n).to_bytes(k, "big")

    def verify(self, message: bytes, signature: bytes) -> bool:
        """Verify a PKCS#1 v1.5 SHA-256 signature over ``message``."""
        k = self.byte_length
        if len(signature) != k:
            return False
        value = int.from_bytes(signature, "big")
        if value >= self.n:
            return False
        block = pow(value, self.e, self.n).to_bytes(k, "big")
        expected = _signature_block(message, k)
        return block == expected

    def to_bytes(self) -> bytes:
        """Compact serialization: 2-byte modulus length, modulus, 4-byte e."""
        k = self.byte_length
        return (
            k.to_bytes(2, "big")
            + self.n.to_bytes(k, "big")
            + self.e.to_bytes(4, "big")
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RSAPublicKey":
        if len(data) < 6:
            raise RSAError("truncated RSA public key")
        k = int.from_bytes(data[:2], "big")
        if len(data) != 2 + k + 4:
            raise RSAError(
                f"RSA public key length mismatch: expected {2 + k + 4}, got {len(data)}"
            )
        n = int.from_bytes(data[2:2 + k], "big")
        e = int.from_bytes(data[2 + k:], "big")
        return cls(n=n, e=e)

    def fingerprint(self) -> bytes:
        """SHA-256 fingerprint of the serialized key."""
        return sha256(self.to_bytes())


@dataclass(frozen=True)
class RSAPrivateKey:
    """An RSA private key with CRT parameters for fast decryption."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_length(self) -> int:
        return (self.bits + 7) // 8

    @property
    def public_key(self) -> RSAPublicKey:
        return RSAPublicKey(n=self.n, e=self.e)

    def _private_op(self, value: int) -> int:
        """RSA private operation via CRT (about 3-4x faster than pow mod n)."""
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        q_inv = primes.modinv(self.q, self.p)
        m1 = pow(value % self.p, dp, self.p)
        m2 = pow(value % self.q, dq, self.q)
        h = (q_inv * (m1 - m2)) % self.p
        return m2 + h * self.q

    def decrypt(self, ciphertext: bytes) -> bytes:
        """PKCS#1 v1.5 decrypt; raises :class:`RSAError` on bad padding."""
        k = self.byte_length
        if len(ciphertext) != k:
            raise RSAError(
                f"ciphertext length mismatch: expected {k}, got {len(ciphertext)}"
            )
        value = int.from_bytes(ciphertext, "big")
        if value >= self.n:
            raise RSAError("ciphertext out of range")
        block = self._private_op(value).to_bytes(k, "big")
        if block[:2] != b"\x00\x02":
            raise RSAError("invalid PKCS#1 v1.5 padding header")
        try:
            separator = block.index(b"\x00", 2)
        except ValueError:
            raise RSAError("missing PKCS#1 v1.5 padding separator") from None
        if separator < 10:
            raise RSAError("PKCS#1 v1.5 padding too short")
        return block[separator + 1:]

    def sign(self, message: bytes) -> bytes:
        """PKCS#1 v1.5 SHA-256 signature over ``message``."""
        k = self.byte_length
        block = _signature_block(message, k)
        return self._private_op(int.from_bytes(block, "big")).to_bytes(k, "big")

    def matches(self, public_key: RSAPublicKey) -> bool:
        """True if this private key is the pair of ``public_key``.

        This is the check behind the paper's ``OP_CHECKRSA512PAIR`` operator
        (implemented there with OpenSSL's ``VerifyPubKey``): the modulus must
        match and a probe value must survive an encrypt/decrypt round trip.
        """
        if self.n != public_key.n or self.e != public_key.e:
            return False
        probe = 0x5A5A5A5A
        return pow(pow(probe, public_key.e, self.n), self.d, self.n) == probe

    def to_bytes(self) -> bytes:
        """Compact serialization of ``(n, e, d, p, q)``."""
        k = self.byte_length
        half = (k + 1) // 2
        return (
            k.to_bytes(2, "big")
            + self.n.to_bytes(k, "big")
            + self.e.to_bytes(4, "big")
            + self.d.to_bytes(k, "big")
            + self.p.to_bytes(half, "big")
            + self.q.to_bytes(half, "big")
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "RSAPrivateKey":
        if len(data) < 2:
            raise RSAError("truncated RSA private key")
        k = int.from_bytes(data[:2], "big")
        half = (k + 1) // 2
        expected = 2 + k + 4 + k + half + half
        if len(data) != expected:
            raise RSAError(
                f"RSA private key length mismatch: expected {expected}, got {len(data)}"
            )
        offset = 2
        n = int.from_bytes(data[offset:offset + k], "big")
        offset += k
        e = int.from_bytes(data[offset:offset + 4], "big")
        offset += 4
        d = int.from_bytes(data[offset:offset + k], "big")
        offset += k
        p = int.from_bytes(data[offset:offset + half], "big")
        offset += half
        q = int.from_bytes(data[offset:offset + half], "big")
        return cls(n=n, e=e, d=d, p=p, q=q)


def _signature_block(message: bytes, k: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of SHA-256(message) into ``k`` bytes."""
    digest_info = _SHA256_DIGEST_INFO + sha256(message)
    pad_len = k - 3 - len(digest_info)
    if pad_len < 8:
        raise RSAError(f"modulus too small for SHA-256 signatures: {k} bytes")
    return b"\x00\x01" + b"\xff" * pad_len + b"\x00" + digest_info


def generate_keypair(bits: int = 512,
                     rng: Optional[random.Random] = None) -> RSAPrivateKey:
    """Generate an RSA key pair with a modulus of exactly ``bits`` bits.

    The default of 512 bits matches the paper's choice (section 6 discusses
    the deliberate security/payload-size trade-off).  Pass a seeded
    ``random.Random`` for reproducible simulation keys; the default draws
    from the OS CSPRNG.
    """
    if bits < 128 or bits % 2:
        raise ValueError(f"unsupported RSA modulus size: {bits} bits")
    rng = rng or random.SystemRandom()
    half = bits // 2
    while True:
        p = primes.generate_prime(half, rng)
        q = primes.generate_prime(half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        carmichael = primes.lcm(p - 1, q - 1)
        if math.gcd(_PUBLIC_EXPONENT, carmichael) != 1:
            continue
        d = primes.modinv(_PUBLIC_EXPONENT, carmichael)
        return RSAPrivateKey(n=n, e=_PUBLIC_EXPONENT, d=d, p=p, q=q)


def max_plaintext_length(bits: int) -> int:
    """Largest PKCS#1 v1.5 plaintext for an RSA modulus of ``bits`` bits."""
    return (bits + 7) // 8 - 11
