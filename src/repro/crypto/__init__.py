"""Cryptographic substrate for the BcWAN reproduction.

Everything here is implemented from scratch (the only stdlib crypto used is
``hashlib``'s SHA-256 on hot paths, cross-validated against the pure-Python
implementation in :mod:`repro.crypto.sha256`):

* :mod:`repro.crypto.aes` / :mod:`repro.crypto.modes` — AES-256-CBC for the
  node→recipient payload (paper Fig. 4);
* :mod:`repro.crypto.rsa` — RSA-512 ephemeral key pairs and node signatures;
* :mod:`repro.crypto.ecdsa` — secp256k1 transaction signatures;
* :mod:`repro.crypto.sha256`, :mod:`repro.crypto.ripemd160`,
  :mod:`repro.crypto.hashing` — hashing (HASH160, double SHA-256);
* :mod:`repro.crypto.base58`, :mod:`repro.crypto.keys` — addresses.
"""

from repro.crypto.aes import AES, BLOCK_SIZE
from repro.crypto.base58 import Base58Error
from repro.crypto.ecdsa import (
    ECDSAError,
    PrivateKey,
    PublicKey,
    Signature,
    generate_private_key,
)
from repro.crypto.hashing import double_sha256, hash160, sha256
from repro.crypto.keys import KeyPair, address_from_pubkey, pubkey_hash_from_address
from repro.crypto.modes import (
    PaddingError,
    decrypt_cbc,
    encrypt_cbc,
    pad_pkcs7,
    random_iv,
    unpad_pkcs7,
)
from repro.crypto.rsa import (
    RSAError,
    RSAPrivateKey,
    RSAPublicKey,
    generate_keypair,
    max_plaintext_length,
)

__all__ = [
    "AES",
    "BLOCK_SIZE",
    "Base58Error",
    "ECDSAError",
    "KeyPair",
    "PaddingError",
    "PrivateKey",
    "PublicKey",
    "RSAError",
    "RSAPrivateKey",
    "RSAPublicKey",
    "Signature",
    "address_from_pubkey",
    "decrypt_cbc",
    "double_sha256",
    "encrypt_cbc",
    "generate_keypair",
    "generate_private_key",
    "hash160",
    "max_plaintext_length",
    "pad_pkcs7",
    "pubkey_hash_from_address",
    "random_iv",
    "sha256",
    "unpad_pkcs7",
]
