"""BIP 152-style compact block relay between full nodes.

Instead of flooding ~full blocks, a relaying node sends the 84-byte
header plus a 6-byte *short txid* per transaction; receivers rebuild the
block from their own mempool (steady-state gossip means they already
hold nearly every tx) and fetch only the gaps with a getblocktxn-style
round-trip.  Short ids are salted with the block hash so a collision is
confined to one block; a collision or stale mempool shows up as a Merkle
root mismatch and falls back to fetching the affected positions.

Reconstructed blocks re-enter the daemon through the same verification
queue as gossiped full blocks — compact relay saves bytes, never
verification work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.transaction import Transaction
from repro.crypto.hashing import double_sha256
from repro.p2p.message import (
    BlockTxnMessage,
    CompactBlockMessage,
    Envelope,
    GetBlockTxnMessage,
)

if TYPE_CHECKING:  # avoid a light <-> core import cycle
    from repro.core.daemon import BlockchainDaemon

__all__ = ["SHORT_TXID_BYTES", "short_txid", "make_compact_block",
           "CompactBlockRelay"]

#: Sketch width.  6 bytes ≈ BIP 152; collision odds within one block are
#: ``n_mempool / 2**48`` — negligible, and recoverable via fallback.
SHORT_TXID_BYTES = 6


def short_txid(block_hash: bytes, txid: bytes) -> bytes:
    """The per-block short id of one transaction."""
    return double_sha256(block_hash + txid)[:SHORT_TXID_BYTES]


def make_compact_block(block: Block) -> CompactBlockMessage:
    """Sketch a block: prefilled coinbase + short ids for the rest."""
    block_hash = block.hash
    short_ids = tuple(
        short_txid(block_hash, tx.txid) for tx in block.transactions[1:]
    )
    prefilled = ((0, block.transactions[0].serialize()),)
    return CompactBlockMessage(
        header_bytes=block.header.serialize(),
        tx_count=len(block.transactions),
        short_ids=short_ids,
        prefilled=prefilled,
    )


@dataclass
class _PartialBlock:
    """A sketch awaiting its getblocktxn fallback reply."""

    header: BlockHeader
    slots: list[Optional[Transaction]]
    missing: tuple[int, ...]
    origin: str
    trace: Any = None
    token: int = 0
    requested_all: bool = field(default=False)


class CompactBlockRelay:
    """Compact send/receive for one daemon's gossip node.

    Attaching the relay flips the gossip node's block fan-out from
    :class:`~repro.p2p.message.BlockMessage` to sketches; inbound
    sketches and fallback messages arrive through the daemon's protocol
    queue (so reconstruction competes for daemon time like any message).
    """

    def __init__(self, daemon: "BlockchainDaemon",
                 fallback_timeout: float = 10.0) -> None:
        self.daemon = daemon
        self.network = daemon.network
        self.fallback_timeout = fallback_timeout
        self._partials: dict[bytes, _PartialBlock] = {}
        self._tokens = 0
        # Counters feeding the lightclient benchmark's hit-rate figure.
        self.compact_announced = 0
        self.compact_received = 0
        self.reconstructed_from_mempool = 0
        self.reconstructed_after_fallback = 0
        self.fallback_roundtrips = 0
        self.reconstruct_failed = 0
        self.txs_from_mempool = 0
        self.txs_fetched = 0
        daemon.register_protocol(CompactBlockMessage, self._on_compact)
        daemon.register_protocol(GetBlockTxnMessage, self._on_get_block_txn)
        daemon.register_protocol(BlockTxnMessage, self._on_block_txn)
        daemon.gossip.compact_relay = self

    # -- sender side -----------------------------------------------------------

    def announce(self, block: Block, exclude: tuple[str, ...] = (),
                 parent: Any = None) -> None:
        """Relay ``block`` to every peer as a sketch."""
        # A block we announce is a block we hold: gate the echoes peers
        # relay back, or they cost a pointless getblocktxn round-trip
        # (our own txs left the mempool when the block connected).
        self.daemon.mark_block_seen(block.hash)
        message = make_compact_block(block)
        gossip = self.daemon.gossip
        for peer in gossip.peers:
            if peer in exclude:
                continue
            self.network.send(gossip.name, peer, message, parent=parent)
            self.compact_announced += 1

    def _on_get_block_txn(self, envelope: Envelope) -> None:
        request = envelope.payload
        record = self.daemon.node.chain.record_for(request.block_hash)
        if record is None:
            return  # we no longer have it; requester recovers via sync
        transactions = record.block.transactions
        payload = []
        for index in request.indexes:
            if 0 <= index < len(transactions):
                payload.append(transactions[index].serialize())
        if len(payload) != len(request.indexes):
            return  # malformed request
        self.network.send(
            self.daemon.name, envelope.source,
            BlockTxnMessage(block_hash=request.block_hash,
                            indexes=request.indexes,
                            transactions=tuple(payload)),
        )

    # -- receiver side ---------------------------------------------------------

    def _on_compact(self, envelope: Envelope) -> None:
        message = envelope.payload
        header = BlockHeader.deserialize(message.header_bytes)
        block_hash = header.hash
        if not self.daemon.mark_block_seen(block_hash):
            return
        self.compact_received += 1
        slots: list[Optional[Transaction]] = [None] * message.tx_count
        for index, raw in message.prefilled:
            if 0 <= index < message.tx_count:
                slots[index] = Transaction.deserialize(raw)
        open_indexes = [i for i, slot in enumerate(slots) if slot is None]
        if len(open_indexes) != len(message.short_ids):
            self.reconstruct_failed += 1
            return  # malformed sketch
        by_short_id: dict[bytes, list[Transaction]] = {}
        for tx in self.daemon.node.mempool.transactions():
            by_short_id.setdefault(short_txid(block_hash, tx.txid),  # lint: allow(taint-float) — header.hash digests serialize(), which quantizes the float timestamp to int milliseconds first
                                   []).append(tx)
        missing = []
        for slot_index, sid in zip(open_indexes, message.short_ids):
            candidates = by_short_id.get(sid)
            if candidates is not None and len(candidates) == 1:
                slots[slot_index] = candidates[0]
                self.txs_from_mempool += 1
            else:
                # Absent — or ambiguous, which only a refetch can settle.
                missing.append(slot_index)
        if not missing:
            block = Block(header=header, transactions=list(slots))
            if block.compute_merkle_root() == header.merkle_root:
                self.reconstructed_from_mempool += 1
                self.daemon.enqueue_network_block(
                    block, origin=envelope.source, trace=envelope.trace)
                return
            # A short-id collision picked the wrong tx: refetch everything.
            missing = open_indexes
        partial = _PartialBlock(
            header=header, slots=slots, missing=tuple(missing),
            origin=envelope.source, trace=envelope.trace,
            requested_all=missing == open_indexes,
        )
        self._request_missing(block_hash, partial)

    def _request_missing(self, block_hash: bytes,
                         partial: _PartialBlock) -> None:
        self._tokens += 1
        partial.token = self._tokens
        self._partials[block_hash] = partial
        self.fallback_roundtrips += 1
        self.network.send(
            self.daemon.name, partial.origin,
            GetBlockTxnMessage(block_hash=block_hash,
                               indexes=partial.missing),
        )
        token = partial.token
        self.daemon.sim.call_in(
            self.fallback_timeout,
            lambda: self._on_fallback_deadline(block_hash, token))

    def _on_fallback_deadline(self, block_hash: bytes, token: int) -> None:
        partial = self._partials.get(block_hash)
        if partial is None or partial.token != token:
            return  # answered in time (or superseded)
        del self._partials[block_hash]
        # Give up on the sketch; the periodic SyncAgent round will fetch
        # the full block if gossip never re-offers it.
        self.reconstruct_failed += 1

    def _on_block_txn(self, envelope: Envelope) -> None:
        message = envelope.payload
        partial = self._partials.get(message.block_hash)
        if partial is None:
            return  # late reply after deadline, or never asked
        if message.indexes != partial.missing:
            return  # stale or mismatched reply; keep waiting
        del self._partials[message.block_hash]
        for index, raw in zip(message.indexes, message.transactions):
            partial.slots[index] = Transaction.deserialize(raw)
            self.txs_fetched += 1
        if any(slot is None for slot in partial.slots):
            self.reconstruct_failed += 1
            return
        block = Block(header=partial.header,
                      transactions=list(partial.slots))
        if block.compute_merkle_root() != partial.header.merkle_root:
            if partial.requested_all:
                self.reconstruct_failed += 1
                return
            # Mempool collision on a slot we thought we had: refetch all.
            refetch = _PartialBlock(
                header=partial.header,
                slots=[None] * len(partial.slots),
                missing=tuple(range(len(partial.slots))),
                origin=partial.origin,
                trace=partial.trace,
                requested_all=True,
            )
            self._request_missing(partial.header.hash, refetch)
            return
        self.reconstructed_after_fallback += 1
        self.daemon.enqueue_network_block(
            block, origin=partial.origin, trace=partial.trace)

    def stats(self) -> dict[str, int]:
        return {
            "compact_announced": self.compact_announced,
            "compact_received": self.compact_received,
            "reconstructed_from_mempool": self.reconstructed_from_mempool,
            "reconstructed_after_fallback": self.reconstructed_after_fallback,
            "fallback_roundtrips": self.fallback_roundtrips,
            "reconstruct_failed": self.reconstruct_failed,
            "txs_from_mempool": self.txs_from_mempool,
            "txs_fetched": self.txs_fetched,
        }
