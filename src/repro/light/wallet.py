"""A chain-state-free wallet for SPV clients.

:class:`LightWallet` mirrors :class:`repro.blockchain.wallet.Wallet`'s
transaction construction but owns no :class:`~repro.blockchain.chain.Chain`:
its coin set is fed exclusively by SPV-proven transactions
(:meth:`apply_confirmed_tx`), so a light recipient can fund key-release
offers knowing only headers and the handful of transactions that touch
its address.  Refund locktimes must therefore be supplied explicitly —
the caller derives them from its header-chain tip.

Coinbase maturity never applies: block rewards pay miners, and a light
device is by definition not one.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.blockchain.transaction import (
    OutPoint,
    SEQUENCE_FINAL,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.blockchain.wallet import KeyReleaseOffer
from repro.crypto.keys import KeyPair
from repro.errors import ValidationError
from repro.script import builder
from repro.script.script import Script

__all__ = ["LightWallet"]


class LightWallet:
    """A single-key wallet whose balance is proven, not validated."""

    def __init__(self, keypair: Optional[KeyPair] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.keypair = keypair or KeyPair.generate(rng)
        self._owned: dict[OutPoint, int] = {}
        self._pending_spends: set[OutPoint] = set()
        self._applied_txids: set[bytes] = set()
        # Outpoints ever seen spent.  Proof pushes can arrive reordered
        # (independent WAN latency per message), so a spend may be
        # applied before the transaction that funded it — the tombstone
        # keeps the late credit from resurrecting a dead coin.
        self._spent: set[OutPoint] = set()

    # -- identity -------------------------------------------------------------

    @property
    def address(self) -> str:
        return self.keypair.address

    @property
    def pubkey_hash(self) -> bytes:
        return self.keypair.pubkey_hash

    @property
    def pubkey_bytes(self) -> bytes:
        return self.keypair.public_key.to_bytes()

    # -- balance tracking -------------------------------------------------------

    def apply_confirmed_tx(self, tx: Transaction) -> int:
        """Absorb one SPV-proven transaction; returns the net value change.

        The caller is responsible for only feeding transactions whose
        inclusion proof verified against its header chain — the wallet
        trusts its input completely (that *is* the SPV security model).
        Idempotent per txid, so duplicate proofs are harmless.
        """
        if tx.txid in self._applied_txids:
            return 0
        self._applied_txids.add(tx.txid)
        delta = 0
        my_script = builder.p2pkh_locking(self.pubkey_hash).to_bytes()
        for tx_input in tx.inputs:
            self._spent.add(tx_input.outpoint)
            value = self._owned.pop(tx_input.outpoint, None)
            self._pending_spends.discard(tx_input.outpoint)
            if value is not None:
                delta -= value
        for index, output in enumerate(tx.outputs):
            if output.script_pubkey.to_bytes() == my_script:
                outpoint = OutPoint(txid=tx.txid, index=index)
                if outpoint in self._spent:
                    continue  # credit arrived after its own spend
                self._owned[outpoint] = output.value
                delta += output.value
        return delta

    @property
    def balance(self) -> int:
        return sum(
            value for outpoint, value in self._owned.items()
            if outpoint not in self._pending_spends
        )

    def spendable_coins(self) -> list[tuple[OutPoint, int]]:
        """Unreserved proven coins, largest-first."""
        coins = [(outpoint, value) for outpoint, value in self._owned.items()
                 if outpoint not in self._pending_spends]
        coins.sort(key=lambda item: item[1], reverse=True)
        return coins

    def _select_coins(self, amount: int) -> tuple[list[tuple[OutPoint, int]], int]:
        selected = []
        total = 0
        for outpoint, value in self.spendable_coins():
            selected.append((outpoint, value))
            total += value
            if total >= amount:
                return selected, total
        raise ValidationError(
            f"insufficient funds: need {amount}, have {total} spendable"
        )

    # -- transaction construction ------------------------------------------------

    def sign_input(self, tx: Transaction, input_index: int,
                   locking_script: Script) -> bytes:
        digest = tx.sighash(input_index, locking_script)
        return self.keypair.sign(digest).to_bytes()

    def _finalize_p2pkh_inputs(self, tx: Transaction) -> Transaction:
        locking = builder.p2pkh_locking(self.pubkey_hash)
        for index in range(len(tx.inputs)):
            signature = self.sign_input(tx, index, locking)
            tx = tx.with_input_script(
                index, builder.p2pkh_unlocking(signature, self.pubkey_bytes)
            )
        return tx

    def _build_spend(self, outputs: list[TxOutput], fee: int,
                     locktime: int = 0,
                     sequence: int = SEQUENCE_FINAL) -> Transaction:
        amount = sum(output.value for output in outputs) + fee
        coins, total = self._select_coins(amount)
        change = total - amount
        final_outputs = list(outputs)
        if change > 0:
            final_outputs.append(TxOutput(
                value=change,
                script_pubkey=builder.p2pkh_locking(self.pubkey_hash),
            ))
        tx = Transaction(
            inputs=[TxInput(outpoint=outpoint, sequence=sequence)
                    for outpoint, _ in coins],
            outputs=final_outputs,
            locktime=locktime,
        )
        tx = self._finalize_p2pkh_inputs(tx)
        for outpoint, _ in coins:
            self._pending_spends.add(outpoint)
        return tx

    def create_announcement(self, payload: bytes, fee: int = 0) -> Transaction:
        """An OP_RETURN data-carrier transaction (IP directory entry)."""
        return self._build_spend(
            [TxOutput(value=0, script_pubkey=builder.op_return(payload))],
            fee=fee,
        )

    def create_key_release_offer(self, rsa_pubkey: bytes,
                                 gateway_pubkey_hash: bytes,
                                 amount: int, refund_locktime: int,
                                 fee: int = 0) -> KeyReleaseOffer:
        """The Listing-1 offer, with an explicit (header-tip-derived) locktime."""
        if amount <= 0:
            raise ValidationError(f"offer amount must be positive: {amount}")
        if refund_locktime <= 0:
            raise ValidationError(
                f"light offers need an explicit refund locktime, "
                f"got {refund_locktime}"
            )
        locking = builder.ephemeral_key_release(
            rsa_pubkey=rsa_pubkey,
            gateway_pubkey_hash=gateway_pubkey_hash,
            buyer_pubkey_hash=self.pubkey_hash,
            refund_locktime=refund_locktime,
        )
        tx = self._build_spend(
            [TxOutput(value=amount, script_pubkey=locking)], fee=fee,
        )
        return KeyReleaseOffer(
            transaction=tx,
            output_index=0,
            rsa_pubkey=rsa_pubkey,
            gateway_pubkey_hash=gateway_pubkey_hash,
            buyer_pubkey_hash=self.pubkey_hash,
            refund_locktime=refund_locktime,
        )

    def refund_key_release(self, offer: KeyReleaseOffer,
                           fee: int = 0) -> Transaction:
        """Reclaim an unclaimed offer after its locktime expires."""
        value = offer.amount - fee
        if value <= 0:
            raise ValidationError(
                f"fee {fee} consumes the whole offer of {offer.amount}"
            )
        tx = Transaction(
            inputs=[TxInput(outpoint=offer.outpoint,
                            sequence=SEQUENCE_FINAL - 1)],
            outputs=[TxOutput(
                value=value,
                script_pubkey=builder.p2pkh_locking(self.pubkey_hash),
            )],
            locktime=offer.refund_locktime,
        )
        locking = builder.ephemeral_key_release(
            rsa_pubkey=offer.rsa_pubkey,
            gateway_pubkey_hash=offer.gateway_pubkey_hash,
            buyer_pubkey_hash=offer.buyer_pubkey_hash,
            refund_locktime=offer.refund_locktime,
        )
        signature = self.sign_input(tx, 0, locking)
        return tx.with_input_script(
            0, builder.key_release_refund(signature, self.pubkey_bytes),
        )

    def release_pending(self, tx: Transaction) -> None:
        """Un-reserve a built transaction's inputs (broadcast failed)."""
        for tx_input in tx.inputs:
            self._pending_spends.discard(tx_input.outpoint)
