"""Header-only chain state for SPV clients.

A :class:`HeaderChain` stores the active chain as a height-indexed list
of validated :class:`~repro.blockchain.block.BlockHeader` objects — no
bodies, no UTXO set, ~84 bytes per block.  Validation is the header
subset of consensus: previous-hash linkage and the PoW target (with
``pow_bits == 0``, the repo's PoS-style default, the target check is
vacuous and linkage is the whole story, matching full-node behavior).

Fork handling mirrors longest-chain fork choice: an incoming range that
conflicts with the stored suffix replaces it only when the result is
strictly higher than the current tip (first-seen wins on equal height,
like ``Chain``).
"""

from __future__ import annotations

from typing import Optional

from repro.blockchain.block import BlockHeader
from repro.errors import ValidationError

__all__ = ["HeaderChain", "GENESIS_PREV_HASH"]

#: ``prev_hash`` of every chain's genesis block.
GENESIS_PREV_HASH = b"\x00" * 32


class HeaderChain:
    """The active header chain of one light client."""

    def __init__(self, pow_bits: int = 0) -> None:
        self.pow_bits = pow_bits
        self._headers: list[BlockHeader] = []
        self._heights: dict[bytes, int] = {}
        self.headers_connected = 0
        self.headers_rejected = 0
        self.reorgs = 0

    def __len__(self) -> int:
        return len(self._headers)

    @property
    def tip_height(self) -> int:
        """Height of the best header; ``-1`` before genesis arrives."""
        return len(self._headers) - 1

    @property
    def tip_hash(self) -> bytes:
        if not self._headers:
            return GENESIS_PREV_HASH
        return self._headers[-1].hash

    def header_at(self, height: int) -> Optional[BlockHeader]:
        if 0 <= height < len(self._headers):
            return self._headers[height]
        return None

    def height_of(self, block_hash: bytes) -> Optional[int]:
        return self._heights.get(block_hash)

    def contains(self, block_hash: bytes) -> bool:
        return block_hash in self._heights

    # -- growth ----------------------------------------------------------------

    def connect(self, header: BlockHeader) -> str:
        """Append one header; returns ``"connected"``, ``"duplicate"``,
        ``"invalid"`` (failed the PoW target) or ``"disconnected"``
        (``prev_hash`` is not our tip)."""
        if not header.meets_target(self.pow_bits):
            self.headers_rejected += 1
            return "invalid"
        if header.hash in self._heights:
            return "duplicate"
        if header.prev_hash != self.tip_hash:
            return "disconnected"
        self._heights[header.hash] = len(self._headers)
        self._headers.append(header)
        self.headers_connected += 1
        return "connected"

    def apply_range(self, start_height: int, raw_headers: tuple[bytes, ...]
                    ) -> tuple[int, str]:
        """Merge a server-supplied consecutive header range.

        Returns ``(newly_connected, status)`` where status is one of
        ``"ok"``, ``"empty"``, ``"gap"`` (range starts above our tip+1 —
        the caller should re-request from lower), ``"unanchored"``
        (``headers[0]`` does not link onto our header at
        ``start_height-1`` — a fork below the requested window), or
        ``"invalid"`` (malformed/target-failing header; nothing past it
        is applied).
        """
        if not raw_headers:
            return 0, "empty"
        if start_height < 0 or start_height > self.tip_height + 1:
            return 0, "gap"
        headers = []
        for raw in raw_headers:
            try:
                header = BlockHeader.deserialize(raw)
            except ValidationError:
                self.headers_rejected += 1
                return 0, "invalid"
            if not header.meets_target(self.pow_bits):
                self.headers_rejected += 1
                return 0, "invalid"
            headers.append(header)
        prev_hash = (GENESIS_PREV_HASH if start_height == 0
                     else self._headers[start_height - 1].hash)
        for header in headers:
            if header.prev_hash != prev_hash:
                self.headers_rejected += 1
                return 0, "unanchored" if header is headers[0] else "invalid"
            prev_hash = header.hash
        # Skip the prefix we already have; diverging suffixes only win if
        # the replacement reaches at least our current tip height.
        offset = 0
        while (offset < len(headers)
               and start_height + offset <= self.tip_height
               and self._headers[start_height + offset].hash
               == headers[offset].hash):
            offset += 1
        fresh = headers[offset:]
        if not fresh:
            return 0, "ok"
        splice_at = start_height + offset
        if (splice_at <= self.tip_height
                and splice_at + len(fresh) - 1 <= self.tip_height):
            # A conflicting branch no taller than ours: first-seen wins,
            # matching Chain's strictly-greater-work reorg rule.
            return 0, "ok"
        if splice_at <= self.tip_height:
            self.reorgs += 1
            for stale in self._headers[splice_at:]:
                del self._heights[stale.hash]
            del self._headers[splice_at:]
        for header in fresh:
            self._heights[header.hash] = len(self._headers)
            self._headers.append(header)
        self.headers_connected += len(fresh)
        return len(fresh), "ok"
