"""The full-node serving side of the light-client tier.

A :class:`LightServer` rides on one :class:`~repro.core.daemon.BlockchainDaemon`
and answers three things a light client needs:

* **header ranges** — the 84-byte-per-block view of the active chain;
* **watch-list filters** — per-client sets of addresses (pubkey hashes),
  outpoints, and txids; matching transactions are pushed the moment they
  enter the mempool and again (with height) when they confirm;
* **Merkle inclusion proofs** — pushed unsolicited alongside every
  confirmed match, and served on demand, each proof self-contained
  (header bytes travel with the branch) so the client can verify with
  nothing but its header chain.

Serving is push-first: a registered client never polls for its own
transactions.  All state here is soft — a crashed server forgets its
filters, which is exactly why clients replay them on failover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.blockchain.block import Block
from repro.blockchain.merkle import merkle_branch
from repro.blockchain.transaction import Transaction
from repro.light.messages import (
    MEMPOOL_HEIGHT,
    FilterMatchMessage,
    GetHeaderRangeMessage,
    GetTxProofMessage,
    HeaderRangeMessage,
    RegisterFilterMessage,
    TxProofMessage,
)
from repro.p2p.message import Envelope
from repro.script import builder

if TYPE_CHECKING:  # avoid a light <-> core import cycle
    from repro.core.daemon import BlockchainDaemon

__all__ = ["LightServer"]


@dataclass
class _ClientFilter:
    """One light client's registered watch list."""

    scripts: set[bytes] = field(default_factory=set)
    outpoints: set[tuple[bytes, int]] = field(default_factory=set)
    txids: set[bytes] = field(default_factory=set)

    def matches(self, tx: Transaction) -> bool:
        if tx.txid in self.txids:
            return True
        for tx_input in tx.inputs:
            spent = (tx_input.outpoint.txid, tx_input.outpoint.index)
            if spent in self.outpoints:
                return True
        for output in tx.outputs:
            if output.script_pubkey.to_bytes() in self.scripts:
                return True
        return False


class LightServer:
    """Header, filter, and proof service for one full-node daemon."""

    def __init__(self, daemon: "BlockchainDaemon") -> None:
        self.daemon = daemon
        self.network = daemon.network
        self._filters: dict[str, _ClientFilter] = {}
        self.filters_registered = 0
        self.header_requests = 0
        self.matches_pushed = 0
        self.proofs_served = 0
        daemon.register_protocol(GetHeaderRangeMessage, self._on_get_headers)
        daemon.register_protocol(RegisterFilterMessage, self._on_register)
        daemon.register_protocol(GetTxProofMessage, self._on_get_proof)
        daemon.gossip.on_transaction.append(self._on_mempool_tx)
        daemon.node.chain.add_connect_listener(self._on_block_connected)

    # -- header service ---------------------------------------------------------

    def _on_get_headers(self, envelope: Envelope) -> None:
        request = envelope.payload
        chain = self.daemon.node.chain
        self.header_requests += 1
        start = request.above_height + 1
        top = min(chain.height, request.above_height + request.limit)
        headers = []
        for height in range(start, top + 1):
            block = chain.block_at(height)
            if block is None:
                break
            headers.append(block.header.serialize())
        self.network.send(self.daemon.name, envelope.source,
                          HeaderRangeMessage(start_height=start,
                                             headers=tuple(headers),
                                             tip_height=chain.height))

    # -- filter registration ----------------------------------------------------

    def _filter_for(self, client: str) -> _ClientFilter:
        watch = self._filters.get(client)
        if watch is None:
            watch = _ClientFilter()
            self._filters[client] = watch
        return watch

    def _on_register(self, envelope: Envelope) -> None:
        request = envelope.payload
        watch = self._filter_for(envelope.source)
        self.filters_registered += 1
        # Addresses are matched at the script level: one set lookup per
        # output instead of parsing every locking script.
        for pubkey_hash in request.pubkey_hashes:
            watch.scripts.add(builder.p2pkh_locking(pubkey_hash).to_bytes())
        for txid, index in request.outpoints:
            watch.outpoints.add((txid, index))
        for txid in request.txids:
            watch.txids.add(txid)
        if request.from_height >= 0:
            self._rescan(envelope.source, watch, request.from_height)

    def _rescan(self, client: str, watch: _ClientFilter,
                from_height: int) -> None:
        """Replay history + mempool for a freshly-registered filter."""
        chain = self.daemon.node.chain
        for height, block in chain.iter_active_blocks(from_height):
            for index, tx in enumerate(block.transactions):
                if watch.matches(tx):
                    self._push_confirmed(client, tx, block, height, index)
        for tx in self.daemon.node.mempool.transactions():
            if watch.matches(tx):
                self._push_mempool(client, tx)

    # -- push paths -------------------------------------------------------------

    def _on_mempool_tx(self, tx: Transaction) -> None:
        for client, watch in self._filters.items():
            if watch.matches(tx):
                self._push_mempool(client, tx)

    def _on_block_connected(self, block: Block, height: int) -> None:
        if not self._filters:
            return
        for index, tx in enumerate(block.transactions):
            for client, watch in self._filters.items():
                if watch.matches(tx):
                    self._push_confirmed(client, tx, block, height, index)

    def _push_mempool(self, client: str, tx: Transaction) -> None:
        self.matches_pushed += 1
        self.network.send(self.daemon.name, client,
                          FilterMatchMessage(tx_bytes=tx.serialize(),
                                             height=MEMPOOL_HEIGHT))

    def _push_confirmed(self, client: str, tx: Transaction, block: Block,
                        height: int, index: int) -> None:
        self.matches_pushed += 1
        self.network.send(self.daemon.name, client,
                          FilterMatchMessage(tx_bytes=tx.serialize(),
                                             height=height))
        proof = self._build_proof(tx.txid, block, height, index)
        if proof is not None:
            self.proofs_served += 1
            self.network.send(self.daemon.name, client, proof)

    # -- proof service ----------------------------------------------------------

    def _build_proof(self, txid: bytes, block: Block, height: int,
                     index: int) -> Optional[TxProofMessage]:
        txids = [tx.txid for tx in block.transactions]
        branch = merkle_branch(txids, index)
        return TxProofMessage(
            txid=txid,
            block_hash=block.hash,
            height=height,
            index=index,
            tx_count=len(txids),
            branch=tuple(branch),
            header_bytes=block.header.serialize(),
        )

    def _on_get_proof(self, envelope: Envelope) -> None:
        chain = self.daemon.node.chain
        found = chain.find_transaction(envelope.payload.txid)
        if found is None:
            return  # unconfirmed or unknown; pushes cover the former
        tx, height = found
        block = chain.block_at(height)
        if block is None:
            return
        index = next(i for i, candidate in enumerate(block.transactions)
                     if candidate.txid == tx.txid)
        proof = self._build_proof(tx.txid, block, height, index)
        if proof is not None:
            self.proofs_served += 1
            self.network.send(self.daemon.name, envelope.source, proof)

    def stats(self) -> dict[str, int]:
        return {
            "clients": len(self._filters),
            "filters_registered": self.filters_registered,
            "header_requests": self.header_requests,
            "matches_pushed": self.matches_pushed,
            "proofs_served": self.proofs_served,
        }
