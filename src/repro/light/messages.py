"""Wire messages of the light-client protocol.

Light clients never move block bodies: headers travel as raw 84-byte
serializations, transactions of interest as raw serializations pushed by
a serving full node, and inclusion as self-contained Merkle proofs that
carry their own header (so a proof verifies even when the client's
header chain lags a multicast round behind).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MEMPOOL_HEIGHT",
    "GetHeaderRangeMessage",
    "HeaderRangeMessage",
    "RegisterFilterMessage",
    "FilterMatchMessage",
    "GetTxProofMessage",
    "TxProofMessage",
    "HeaderBundleMessage",
]

#: ``FilterMatchMessage.height`` for a transaction seen only in mempool.
MEMPOOL_HEIGHT = -1


@dataclass(frozen=True)
class GetHeaderRangeMessage:
    """Client → server: serialized headers for heights above ``above_height``."""

    above_height: int
    limit: int


@dataclass(frozen=True)
class HeaderRangeMessage:
    """Server → client: consecutive raw headers starting at ``start_height``.

    Unlike the full-node sync protocol's ``(height, hash)`` inventories,
    light sync moves the actual 84-byte headers — the client has no block
    store to resolve hashes against.
    """

    start_height: int
    headers: tuple[bytes, ...]
    tip_height: int


@dataclass(frozen=True)
class RegisterFilterMessage:
    """Client → server: watch these scripts/outpoints/txids for me.

    Additive: repeated registrations merge into the client's standing
    filter.  ``from_height >= 0`` asks for a historical rescan (plus a
    mempool sweep) from that height; ``from_height < 0`` watches forward
    traffic only.  Outpoints travel as ``(txid, index)`` pairs.
    """

    pubkey_hashes: tuple[bytes, ...] = ()
    outpoints: tuple[tuple[bytes, int], ...] = ()
    txids: tuple[bytes, ...] = ()
    from_height: int = -1


@dataclass(frozen=True)
class FilterMatchMessage:
    """Server → client: a watched transaction, in full.

    ``height`` is the confirmed height, or :data:`MEMPOOL_HEIGHT` for a
    mempool sighting (the client treats those as unconfirmed hints; only
    a verified :class:`TxProofMessage` makes a tx spendable-from).
    """

    tx_bytes: bytes
    height: int


@dataclass(frozen=True)
class GetTxProofMessage:
    """Client → server: prove inclusion of ``txid`` (if confirmed)."""

    txid: bytes


@dataclass(frozen=True)
class TxProofMessage:
    """Server → client: Merkle inclusion proof for one transaction.

    Self-contained: ``header_bytes`` is the raw header of the containing
    block, so the client can authenticate the proof the moment its header
    chain covers ``height`` — or stash it until a sync round does.
    """

    txid: bytes
    block_hash: bytes
    height: int
    index: int
    tx_count: int
    branch: tuple[bytes, ...]
    header_bytes: bytes


@dataclass(frozen=True)
class HeaderBundleMessage:
    """Gateway → listeners: one round of the repeat-authenticate multicast.

    ``digest`` chains over the previous round's digest, the round index,
    and this round's headers; ``signature`` is the gateway's ECDSA
    signature over ``digest``.  Because each digest commits to the whole
    chain of bundles since the listener's last verification, checking one
    signature every R rounds authenticates all R buffered bundles at once
    (Danzi et al.'s aggregate verification).  Empty-``headers`` bundles
    are keep-alives: they advance the round clock so listeners can tell
    "no new blocks" from "gateway went silent".
    """

    round_index: int
    start_height: int
    headers: tuple[bytes, ...]
    tip_height: int
    prev_digest: bytes
    digest: bytes
    signature: bytes
