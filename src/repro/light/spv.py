"""The SPV sync engine of a light client.

An :class:`SpvClient` is a WAN host that is *not* a daemon: it keeps an
84-byte-per-block :class:`~repro.light.headers.HeaderChain`, registers
watch-list filters (addresses, outpoints, txids) with serving full
nodes, and confirms the transactions it cares about through Merkle
inclusion proofs — never downloading, deserializing, or validating a
block body.

Failure handling borrows the full-node :class:`~repro.p2p.sync.SyncAgent`
hardening: every request carries a deadline token, unanswered peers are
scored, and after ``failover_threshold`` consecutive timeouts the client
rotates to its next serving peer and replays its whole filter there
(from height 0 — every push is idempotent downstream, so the replayed
history is harmless).  A proof that fails strict verification also
counts against the server: dishonest proof service is detectable, not
just dishonest omission.

When a :class:`~repro.light.multicast.MulticastListener` is attached,
the periodic unicast poll stands down while the broadcast stream is
healthy and resumes (as *catch-up*) on missed windows, digest breaks, or
bundle gaps — the Danzi et al. recovery path.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.blockchain.block import BlockHeader
from repro.blockchain.merkle import verify_proof
from repro.blockchain.transaction import OutPoint, Transaction
from repro.errors import ValidationError
from repro.light.headers import HeaderChain
from repro.light.messages import (
    FilterMatchMessage,
    GetHeaderRangeMessage,
    GetTxProofMessage,
    HeaderBundleMessage,
    HeaderRangeMessage,
    RegisterFilterMessage,
    TxProofMessage,
)
from repro.light.multicast import MulticastListener
from repro.obs.registry import StatsView
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.p2p.message import Envelope
from repro.p2p.sync import PeerScore
from repro.sim.core import Simulator

__all__ = ["SpvClient"]

_MAX_STASHED_PROOFS = 128


@dataclass
class _Pending:
    """One in-flight request awaiting a reply or its deadline."""

    kind: str
    peer: str
    token: int


class SpvClient:
    """Header-first chain tracking plus watch-list proofs for one host."""

    def __init__(self, sim: Simulator, network: Any, name: str,
                 peers: tuple[str, ...],
                 pow_bits: int = 0,
                 sync_interval: float = 10.0,
                 request_timeout: float = 5.0,
                 batch: int = 64,
                 failover_threshold: int = 2,
                 tracer: Tracer = NULL_TRACER) -> None:
        if not peers:
            raise ValidationError(f"light client {name} needs serving peers")
        self.sim = sim
        self.network = network
        self.name = name
        self.peers = list(peers)
        self.chain = HeaderChain(pow_bits)
        self.sync_interval = sync_interval
        self.request_timeout = request_timeout
        self.batch = batch
        self.failover_threshold = failover_threshold
        self.tracer = tracer
        # Listener callbacks; agents append.  ``on_match(tx, height)``
        # fires for every watched-filter push, ``on_proof(proof)`` only
        # after strict verification against the header chain.
        self.on_match: list[Callable[[Transaction, int], None]] = []
        self.on_proof: list[Callable[[TxProofMessage], None]] = []
        # Non-light payloads (the BcWAN delivery handshake) dispatch here.
        self._extra_handlers: dict[type, Callable[[Envelope], None]] = {}
        # The standing filter, kept whole for failover replay.
        self._watch_pubkey_hashes: list[bytes] = []
        self._watch_outpoints: list[tuple[bytes, int]] = []
        self._watch_txids: list[bytes] = []
        # Full transactions received via filter pushes, by txid — the
        # only transaction bodies a light client ever holds.
        self.matched_txs: dict[bytes, Transaction] = {}
        self._verified_proofs: set[tuple[bytes, bytes]] = set()
        # Verified proofs by txid, kept so a proof that outruns its
        # filter push (independent WAN latency per message) can be
        # replayed to on_proof consumers once the match arrives.
        self._proof_by_txid: dict[bytes, TxProofMessage] = {}
        self._stashed_proofs: dict[tuple[bytes, bytes], TxProofMessage] = {}
        self._serving_index = 0
        self.peer_scores: dict[str, PeerScore] = {}
        self._pending: Optional[_Pending] = None
        self._tokens = itertools.count(1)
        self._round_span: Any = None
        self.multicast: Optional[MulticastListener] = None
        # Every payload type this host ever received — the "no block
        # bodies" acceptance check reads this.
        self.payload_counts: dict[str, int] = {}
        # Counters.
        self.sync_rounds = 0
        self.rounds_skipped = 0
        self.sync_timeouts = 0
        self.failovers = 0
        self.catchups = 0
        self.headers_synced = 0
        self.headers_from_multicast = 0
        self.proofs_verified = 0
        self.proofs_rejected = 0
        self.matches_received = 0
        network.register(name, self._handle)
        self._process = sim.process(self._loop())

    # -- identity / peers -------------------------------------------------------

    @property
    def serving_peer(self) -> str:
        return self.peers[self._serving_index]

    def score_for(self, peer: str) -> PeerScore:
        score = self.peer_scores.get(peer)
        if score is None:
            score = PeerScore()
            self.peer_scores[peer] = score
        return score

    def register_handler(self, payload_type: type,
                         handler: Callable[[Envelope], None]) -> None:
        """Route non-light payloads (e.g. DeliveryMessage) to ``handler``."""
        self._extra_handlers[payload_type] = handler

    # -- the watch list ---------------------------------------------------------

    def watch(self, pubkey_hashes: tuple[bytes, ...] = (),
              outpoints: tuple[Any, ...] = (),
              txids: tuple[bytes, ...] = (),
              from_height: int = -1) -> None:
        """Extend the standing filter and register the delta upstream.

        ``from_height >= 0`` asks the server for a historical rescan; the
        resulting (possibly duplicate) pushes are idempotent for every
        consumer in this package.  Outpoints may be ``OutPoint`` objects
        or raw ``(txid, index)`` pairs.
        """
        new_hashes = tuple(h for h in pubkey_hashes
                           if h not in self._watch_pubkey_hashes)
        normalized = []
        for outpoint in outpoints:
            if isinstance(outpoint, OutPoint):
                pair = (outpoint.txid, outpoint.index)
            else:
                pair = (outpoint[0], outpoint[1])
            if pair not in self._watch_outpoints:
                normalized.append(pair)
        new_txids = tuple(t for t in txids if t not in self._watch_txids)
        self._watch_pubkey_hashes.extend(new_hashes)
        self._watch_outpoints.extend(normalized)
        self._watch_txids.extend(new_txids)
        if new_hashes or normalized or new_txids:
            self.network.send(self.name, self.serving_peer,
                              RegisterFilterMessage(
                                  pubkey_hashes=new_hashes,
                                  outpoints=tuple(normalized),
                                  txids=new_txids,
                                  from_height=from_height))

    def request_proof(self, txid: bytes) -> None:
        """Explicitly ask the serving peer for an inclusion proof."""
        self.network.send(self.name, self.serving_peer,
                          GetTxProofMessage(txid=txid))

    def _replay_filter(self, peer: str) -> None:
        if (self._watch_pubkey_hashes or self._watch_outpoints
                or self._watch_txids):
            self.network.send(self.name, peer, RegisterFilterMessage(
                pubkey_hashes=tuple(self._watch_pubkey_hashes),
                outpoints=tuple(self._watch_outpoints),
                txids=tuple(self._watch_txids),
                from_height=0))

    # -- multicast attachment ---------------------------------------------------

    def attach_multicast(self, gateway_pubkey: bytes, interval: float,
                         verify_every: int = 4,
                         listen_window: float = 1.0,
                         miss_threshold: int = 2) -> MulticastListener:
        """Listen to a gateway's repeat-authenticate header stream."""
        self.multicast = MulticastListener(
            self.sim, gateway_pubkey, interval,
            apply_headers=self._apply_bundle_headers,
            on_omission=self.catch_up,
            verify_every=verify_every,
            listen_window=listen_window,
            miss_threshold=miss_threshold,
        )
        return self.multicast

    def _apply_bundle_headers(self, start_height: int,
                              raw_headers: tuple[bytes, ...]) -> str:
        if start_height > self.chain.tip_height + 1:
            return "gap"
        added, status = self.chain.apply_range(start_height, raw_headers)
        if status != "ok":
            return status
        if added:
            self.headers_from_multicast += added
            self._drain_stashed_proofs()
        return "ok"

    def _multicast_is_fresh(self) -> bool:
        listener = self.multicast
        if listener is None:
            return False
        # The stream vouches for itself only while rounds keep landing;
        # headers lag at most verify_every rounds behind (the Danzi
        # latency/energy trade), which stashed proofs absorb.
        return (listener._highest_round > 0
                and listener._consecutive_missed == 0)

    # -- the periodic poll ------------------------------------------------------

    def _loop(self):
        # Bootstrap immediately: agents need funded wallets and a header
        # tip before the first exchange fires.
        self._begin_round("bootstrap")
        while True:
            yield self.sim.timeout(self.sync_interval)
            if self._pending is not None:
                continue
            if self._multicast_is_fresh():
                self.rounds_skipped += 1
                continue
            self._begin_round("poll")

    def catch_up(self) -> None:
        """Unicast recovery: missed multicast windows, proof gaps."""
        self.catchups += 1
        if self._pending is None:
            self._begin_round("catchup")

    def _begin_round(self, reason: str) -> None:
        self.sync_rounds += 1
        self._round_span = self.tracer.span(
            "light.header_sync", host=self.name, reason=reason,
            peer=self.serving_peer, above=self.chain.tip_height)
        self._request_headers()

    def _end_round(self, status: str) -> None:
        if self._round_span is not None:
            self._round_span.end(status, tip=self.chain.tip_height)
            self._round_span = None

    def _request_headers(self) -> None:
        self._send_request(self.serving_peer,
                           GetHeaderRangeMessage(
                               above_height=self.chain.tip_height,
                               limit=self.batch),
                           kind="headers")

    def _send_request(self, peer: str, message: Any, kind: str) -> None:
        token = next(self._tokens)
        self._pending = _Pending(kind=kind, peer=peer, token=token)
        self.network.send(self.name, peer, message)
        self.sim.call_in(self.request_timeout,
                         lambda: self._on_deadline(peer, token))

    def _on_deadline(self, peer: str, token: int) -> None:
        pending = self._pending
        if pending is None or pending.token != token:
            return  # answered in time
        self._pending = None
        self.sync_timeouts += 1
        score = self.score_for(peer)
        score.failures += 1
        score.consecutive_failures += 1
        self._end_round("timeout")
        if score.consecutive_failures >= self.failover_threshold:
            self._failover()
            # Retry straight away on the new peer — a light device that
            # just missed its window should not idle a full interval.
            self._begin_round("failover")

    def _failover(self) -> None:
        self.failovers += 1
        self._serving_index = (self._serving_index + 1) % len(self.peers)
        # The new server knows nothing of our filter: replay it whole,
        # with a genesis rescan so no historical match is lost.
        self._replay_filter(self.serving_peer)

    def _record_success(self, peer: str) -> None:
        score = self.score_for(peer)
        score.successes += 1
        score.consecutive_failures = 0

    # -- inbound dispatch -------------------------------------------------------

    def _handle(self, envelope: Envelope) -> None:
        payload = envelope.payload
        name = type(payload).__name__
        self.payload_counts[name] = self.payload_counts.get(name, 0) + 1
        if isinstance(payload, HeaderRangeMessage):
            self._on_header_range(envelope)
        elif isinstance(payload, FilterMatchMessage):
            self._on_filter_match(envelope)
        elif isinstance(payload, TxProofMessage):
            self._on_tx_proof(envelope)
        elif isinstance(payload, HeaderBundleMessage):
            if self.multicast is not None:
                self.multicast.receive(payload)
        else:
            handler = self._extra_handlers.get(type(payload))
            if handler is not None:
                handler(envelope)

    def _on_header_range(self, envelope: Envelope) -> None:
        pending = self._pending
        if (pending is None or pending.kind != "headers"
                or pending.peer != envelope.source):
            return  # unsolicited or stale
        self._pending = None
        self._record_success(envelope.source)
        reply = envelope.payload
        added, status = self.chain.apply_range(reply.start_height,
                                               reply.headers)
        if status == "unanchored":
            # Fork below the window: walk the request back and re-anchor.
            above = max(-1, reply.start_height - 1 - self.batch)
            self._send_request(envelope.source,
                              GetHeaderRangeMessage(above_height=above,
                                                    limit=self.batch),
                              kind="headers")
            return
        if added:
            self.headers_synced += added
            self._drain_stashed_proofs()
        if reply.tip_height > self.chain.tip_height and reply.headers:
            # Mid-catch-up: keep streaming without waiting an interval.
            self._request_headers()
            return
        self._end_round("ok")

    def _on_filter_match(self, envelope: Envelope) -> None:
        payload = envelope.payload
        try:
            tx = Transaction.deserialize(payload.tx_bytes)
        except ValidationError:
            self.proofs_rejected += 1
            return
        self.matches_received += 1
        self.matched_txs[tx.txid] = tx
        for listener in self.on_match:
            listener(tx, payload.height)
        proof = self._proof_by_txid.get(tx.txid)
        if proof is not None:
            # The inclusion proof beat this push across the WAN and its
            # listeners had no transaction body to act on — replay it.
            for listener in self.on_proof:
                listener(proof)

    def _on_tx_proof(self, envelope: Envelope) -> None:
        self._handle_proof(envelope.payload)

    def _handle_proof(self, proof: TxProofMessage) -> None:
        key = (proof.txid, proof.block_hash)
        if key in self._verified_proofs:
            return
        try:
            header = BlockHeader.deserialize(proof.header_bytes)
        except ValidationError:
            self.proofs_rejected += 1
            return
        if header.hash != proof.block_hash:
            self.proofs_rejected += 1
            return
        anchored = self.chain.header_at(proof.height)
        if anchored is None or anchored.hash != header.hash:
            # Header chain does not (yet) cover the proof.  A proof that
            # directly extends the tip self-connects; anything further
            # ahead waits for sync.
            if not (proof.height == self.chain.tip_height + 1
                    and self.chain.connect(header) == "connected"):
                self._stash_proof(key, proof)
                return
        span = self.tracer.span("light.proof_verify", host=self.name,
                                height=proof.height, txs=proof.tx_count)
        if verify_proof(proof.txid, proof.branch, proof.index,
                        proof.tx_count, header.merkle_root):
            self.proofs_verified += 1
            self._verified_proofs.add(key)
            self._proof_by_txid[proof.txid] = proof
            self._stashed_proofs.pop(key, None)
            span.end("ok")
            for listener in self.on_proof:
                listener(proof)
        else:
            # A bad proof is active dishonesty, not mere silence: score
            # the serving peer so failover routes around it.
            self.proofs_rejected += 1
            score = self.score_for(self.serving_peer)
            score.failures += 1
            score.consecutive_failures += 1
            span.end("rejected")

    def _stash_proof(self, key: tuple[bytes, bytes],
                     proof: TxProofMessage) -> None:
        if (key not in self._stashed_proofs
                and len(self._stashed_proofs) >= _MAX_STASHED_PROOFS):
            return  # bounded; sync will re-deliver via re-request
        self._stashed_proofs[key] = proof
        self.catch_up()

    def _drain_stashed_proofs(self) -> None:
        if not self._stashed_proofs:
            return
        stashed = list(self._stashed_proofs.values())
        self._stashed_proofs.clear()
        for proof in stashed:
            if proof.height <= self.chain.tip_height + 1:
                self._handle_proof(proof)
            else:
                self._stashed_proofs[(proof.txid, proof.block_hash)] = proof

    # -- observability ----------------------------------------------------------

    def stats(self) -> StatsView:
        return StatsView({
            "sync_rounds": self.sync_rounds,
            "rounds_skipped": self.rounds_skipped,
            "sync_timeouts": self.sync_timeouts,
            "failovers": self.failovers,
            "catchups": self.catchups,
            "headers_synced": self.headers_synced,
            "headers_from_multicast": self.headers_from_multicast,
            "tip_height": self.chain.tip_height,
            "proofs_verified": self.proofs_verified,
            "proofs_rejected": self.proofs_rejected,
            "matches_received": self.matches_received,
        })
