"""Repeat-authenticate chain multicast (Danzi et al.).

A gateway periodically broadcasts a *bundle* of new block headers to its
duty-cycled Class-A listeners.  Every bundle is signed, but its digest
also chains over the previous bundle's digest — so a listener buffers
incoming bundles and verifies only every R-th signature: one ECDSA
verification authenticates all R buffered bundles at once (the paper's
"repeat-authenticate" trade of latency for verification energy).

Listener safety properties:

* a digest-chain break (missed round, tampered digest) discards the
  unverified buffer — nothing unauthenticated ever reaches the header
  chain — and the next bundle is signature-checked immediately to
  re-anchor;
* a failed signature marks the broadcaster dishonest;
* a round that never arrives inside the Class-A listen window counts as
  missed; enough consecutive misses flag *omission* (dishonest or dead
  gateway) and trigger the client's unicast SPV catch-up.

The broadcaster models its downlink as LoRa frames: the bundle is
fragmented, airtime accrues per fragment, and the transmission gates on
the gateway's duty-cycle budget — a backlogged duty cycle pushes the
round past the listen window exactly like a real Class-A miss.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Optional

from repro.crypto import ecdsa
from repro.crypto.ecdsa import ECDSAError
from repro.crypto.hashing import sha256
from repro.light.messages import HeaderBundleMessage
from repro.lora.dutycycle import DutyCycleLimiter
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.sim.core import Simulator

__all__ = ["bundle_digest", "ChainMulticaster", "MulticastListener",
           "GENESIS_DIGEST"]

#: The digest a bundle chain starts from (before any round was sent).
GENESIS_DIGEST = b"\x00" * 32

#: Max LoRaWAN-style application payload per downlink fragment (DR5).
FRAGMENT_BYTES = 222


def bundle_digest(prev_digest: bytes, round_index: int,
                  raw_headers: tuple[bytes, ...]) -> bytes:
    """The chained commitment one multicast round signs."""
    return sha256(prev_digest + struct.pack("<Q", round_index)
                  + b"".join(raw_headers))


def bundle_wire_size(message: HeaderBundleMessage) -> int:
    """Bytes of one bundle on the downlink (pre-fragmentation)."""
    return (16 + 8 * 3 + len(message.prev_digest) + len(message.digest)
            + len(message.signature)
            + sum(len(raw) for raw in message.headers))


class ChainMulticaster:
    """One gateway's periodic signed header broadcast.

    ``tamper`` is a test hook: called with each outgoing bundle, its
    return value is what actually leaves the radio — the honest digest
    chain advances regardless, so a tampered signature looks exactly
    like a dishonest broadcaster to listeners.
    """

    def __init__(self, sim: Simulator, network: Any, name: str,
                 keypair: Any, chain: Any,
                 subscribers: tuple[str, ...],
                 interval: float,
                 modulation: Optional[Any] = None,
                 duty_cycle: float = 0.10,
                 max_headers_per_round: int = 16,
                 tracer: Tracer = NULL_TRACER) -> None:
        self.sim = sim
        self.network = network
        self.name = name
        self.keypair = keypair
        self.chain = chain
        self.subscribers = tuple(subscribers)
        self.interval = interval
        self.modulation = modulation
        self.limiter = DutyCycleLimiter(duty_cycle)
        self.max_headers_per_round = max_headers_per_round
        self.tracer = tracer
        self.tamper: Optional[Callable[[HeaderBundleMessage],
                                       HeaderBundleMessage]] = None
        self.rounds_sent = 0
        self.headers_broadcast = 0
        self.rounds_delayed = 0
        self.airtime_total = 0.0
        self._round = 0
        self._prev_digest = GENESIS_DIGEST
        # Listeners bootstrap their history by unicast SPV sync; the
        # multicast stream only ever carries growth past this point.
        self._next_height = chain.height + 1
        self._process = sim.process(self._loop())

    def _downlink_airtime(self, size: int) -> float:
        if self.modulation is None:
            return 0.0
        airtime = 0.0
        remaining = size
        while remaining > 0:
            fragment = min(remaining, FRAGMENT_BYTES)
            airtime += self.modulation.time_on_air(fragment)
            remaining -= fragment
        return airtime

    def _loop(self):
        while True:
            # Rounds fire on the absolute epoch schedule the listeners'
            # Class-A windows are keyed to — airtime and duty waits must
            # not accumulate into drift that pushes every later round
            # past its window.
            self._round += 1
            target = self._round * self.interval
            delay = target - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            message = self._build_bundle()
            airtime = self._downlink_airtime(bundle_wire_size(message))
            wait = self.limiter.wait_time(self.sim.now)
            if wait > 0:
                # Duty budget exhausted: the round goes out late, and
                # Class-A listeners whose window closes meanwhile will
                # score it as missed.  Deliberate — regulatory silence
                # is indistinguishable from omission at the receiver.
                self.rounds_delayed += 1
                yield self.sim.timeout(wait)
            if airtime > 0:
                self.limiter.register(self.sim.now, airtime)
                self.airtime_total += airtime
                yield self.sim.timeout(airtime)
            span = self.tracer.span(
                "multicast.round", host=self.name,
                round=message.round_index, headers=len(message.headers))
            for subscriber in self.subscribers:
                self.network.send(self.name, subscriber, message,
                                  parent=span)
            span.end("ok")
            self.rounds_sent += 1
            self.headers_broadcast += len(message.headers)

    def _build_bundle(self) -> HeaderBundleMessage:
        raw_headers = []
        height = self._next_height
        while (height <= self.chain.height
               and len(raw_headers) < self.max_headers_per_round):
            block = self.chain.block_at(height)
            if block is None:
                break
            raw_headers.append(block.header.serialize())
            height += 1
        headers = tuple(raw_headers)
        digest = bundle_digest(self._prev_digest, self._round, headers)
        signature = self.keypair.sign(digest).to_bytes()
        message = HeaderBundleMessage(
            round_index=self._round,
            start_height=self._next_height,
            headers=headers,
            tip_height=self.chain.height,
            prev_digest=self._prev_digest,
            digest=digest,
            signature=signature,
        )
        # The honest chain advances even when the test hook mangles the
        # emitted copy — subsequent bundles stay internally consistent.
        self._prev_digest = digest
        self._next_height += len(headers)
        if self.tamper is not None:
            message = self.tamper(message)
        return message


class MulticastListener:
    """The Class-A receiver side of the repeat-authenticate stream.

    ``apply_headers(start_height, raw_headers) -> status`` commits
    verified headers to the owner's chain (the SPV client's); it returns
    ``"gap"`` when the bundle starts above the chain tip, in which case
    the listener requests catch-up.  ``on_omission()`` fires after
    ``miss_threshold`` consecutive missed/invalid rounds.
    """

    def __init__(self, sim: Simulator, gateway_pubkey: bytes,
                 interval: float,
                 apply_headers: Callable[[int, tuple[bytes, ...]], str],
                 on_omission: Callable[[], None],
                 verify_every: int = 4,
                 listen_window: float = 1.0,
                 miss_threshold: int = 2,
                 epoch_start: float = 0.0) -> None:
        self.sim = sim
        self.gateway_pubkey = ecdsa.PublicKey.from_bytes(gateway_pubkey)
        self.interval = interval
        self.apply_headers = apply_headers
        self.on_omission = on_omission
        self.verify_every = verify_every
        self.listen_window = listen_window
        self.miss_threshold = miss_threshold
        self.epoch_start = epoch_start
        self.bundles_received = 0
        self.bundles_accepted = 0
        self.bundles_late = 0
        self.bundles_invalid = 0
        self.bundles_discarded = 0
        self.rounds_missed = 0
        self.signatures_verified = 0
        self.signatures_skipped = 0
        self.dishonest_bundles = 0
        self.omissions_suspected = 0
        self.headers_applied = 0
        self._buffer: list[HeaderBundleMessage] = []
        self._last_digest = GENESIS_DIGEST
        self._anchored = True
        self._highest_round = 0
        self._consecutive_missed = 0
        self._process = sim.process(self._watchdog())

    # -- receive path ----------------------------------------------------------

    def receive(self, message: HeaderBundleMessage) -> None:
        now = self.sim.now
        deadline = (self.epoch_start
                    + message.round_index * self.interval
                    + self.listen_window)
        self.bundles_received += 1
        if now > deadline:
            # Class-A: the radio only listens inside the round's window;
            # a late bundle was never heard.  The watchdog scores the
            # miss — nothing more to do here.
            self.bundles_late += 1
            return
        if bundle_digest(message.prev_digest, message.round_index,
                         message.headers) != message.digest:
            self.bundles_invalid += 1
            self._note_bad_round()
            return
        self._highest_round = max(self._highest_round, message.round_index)
        self._consecutive_missed = 0
        if self._anchored and message.prev_digest == self._last_digest:
            self._buffer.append(message)
            self._last_digest = message.digest
            if (message.round_index % self.verify_every == 0
                    or len(self._buffer) >= self.verify_every):
                self._verify_and_commit()
            return
        # Chain break (restart, missed round, or divergent prev): the
        # bundle cannot ride an aggregate verification — check its
        # signature on the spot and re-anchor on it.
        if self._check_signature(message):
            self.signatures_verified += 1
            self._buffer = [message]
            self._commit_buffer()
            self._last_digest = message.digest
            self._anchored = True
        else:
            self.dishonest_bundles += 1
            self._note_bad_round()

    def _check_signature(self, message: HeaderBundleMessage) -> bool:
        try:
            signature = ecdsa.Signature.from_bytes(message.signature)
        except ECDSAError:
            return False
        return self.gateway_pubkey.verify(message.digest, signature)

    def _verify_and_commit(self) -> None:
        last = self._buffer[-1]
        if self._check_signature(last):
            # One signature vouches for the whole chained buffer.
            self.signatures_verified += 1
            self.signatures_skipped += len(self._buffer) - 1
            self._commit_buffer()
        else:
            self.dishonest_bundles += 1
            self._drop_buffer()
            self._anchored = False
            self.omissions_suspected += 1
            self.on_omission()

    def _commit_buffer(self) -> None:
        for bundle in self._buffer:
            if not bundle.headers:
                self.bundles_accepted += 1
                continue
            status = self.apply_headers(bundle.start_height, bundle.headers)
            if status == "gap":
                # We are behind the stream (e.g. joined mid-flight):
                # unicast catch-up fills the hole; the stream stays
                # authenticated either way.
                self.on_omission()
            else:
                self.headers_applied += len(bundle.headers)
            self.bundles_accepted += 1
        self._buffer = []

    def _drop_buffer(self) -> None:
        self.bundles_discarded += len(self._buffer)
        self._buffer = []

    def _note_bad_round(self) -> None:
        self._drop_buffer()
        self._anchored = False
        self._consecutive_missed += 1
        if self._consecutive_missed >= self.miss_threshold:
            self.omissions_suspected += 1
            self.on_omission()

    # -- the Class-A window clock ---------------------------------------------

    def _watchdog(self):
        round_no = 0
        grace = 0.25
        while True:
            round_no += 1
            target = (self.epoch_start + round_no * self.interval
                      + self.listen_window + grace)
            delay = target - self.sim.now
            if delay > 0:
                yield self.sim.timeout(delay)
            if self._highest_round < round_no:
                self.rounds_missed += 1
                self._consecutive_missed += 1
                self._drop_buffer()
                self._anchored = False
                if self._consecutive_missed >= self.miss_threshold:
                    self.omissions_suspected += 1
                    self.on_omission()

    def stats(self) -> dict[str, int]:
        return {
            "bundles_received": self.bundles_received,
            "bundles_accepted": self.bundles_accepted,
            "bundles_late": self.bundles_late,
            "bundles_invalid": self.bundles_invalid,
            "bundles_discarded": self.bundles_discarded,
            "rounds_missed": self.rounds_missed,
            "signatures_verified": self.signatures_verified,
            "signatures_skipped": self.signatures_skipped,
            "dishonest_bundles": self.dishonest_bundles,
            "omissions_suspected": self.omissions_suspected,
            "headers_applied": self.headers_applied,
        }
