"""The light-client tier: SPV sync, compact relay, chain multicast.

BcWAN's constrained device classes (duty-cycled recipients, thin
gateways) must complete fair exchanges without storing or validating
full blocks.  This package provides the three cooperating mechanisms:

* :mod:`repro.light.spv` — header-first chain tracking with watch-list
  filters and Merkle inclusion proofs served by full-node peers;
* :mod:`repro.light.compact` — BIP 152-style compact block relay
  between full nodes (short-txid sketches + mempool reconstruction);
* :mod:`repro.light.multicast` — Danzi-style repeat-authenticate
  broadcast of signed header bundles to duty-cycled Class-A listeners.

Everything here is opt-in: with ``NetworkConfig.device_class == "full"``
and ``compact_blocks`` off, no module in this package is imported into a
running network and full-node behavior is byte-identical.
"""

from repro.light.compact import (
    SHORT_TXID_BYTES,
    CompactBlockRelay,
    make_compact_block,
    short_txid,
)
from repro.light.headers import HeaderChain
from repro.light.messages import (
    FilterMatchMessage,
    GetHeaderRangeMessage,
    GetTxProofMessage,
    HeaderBundleMessage,
    HeaderRangeMessage,
    RegisterFilterMessage,
    TxProofMessage,
)
from repro.light.multicast import (
    ChainMulticaster,
    MulticastListener,
    bundle_digest,
)
from repro.light.server import LightServer
from repro.light.spv import SpvClient
from repro.light.wallet import LightWallet

__all__ = [
    "ChainMulticaster",
    "CompactBlockRelay",
    "FilterMatchMessage",
    "GetHeaderRangeMessage",
    "GetTxProofMessage",
    "HeaderBundleMessage",
    "HeaderChain",
    "HeaderRangeMessage",
    "LightServer",
    "LightWallet",
    "MulticastListener",
    "RegisterFilterMessage",
    "SHORT_TXID_BYTES",
    "SpvClient",
    "TxProofMessage",
    "bundle_digest",
    "make_compact_block",
    "short_txid",
]
