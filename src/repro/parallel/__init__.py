"""Process-pool verification backend.

Input-script verifications inside a block (and across a transaction's
inputs) are independent of each other, which makes them embarrassingly
parallel — the standard scaling lever in comparative blockchain studies.
This package is the only place in the repo allowed to touch
``multiprocessing`` (a lint rule enforces that):

* :mod:`repro.parallel.jobs` — picklable :class:`VerifyJob` /
  :class:`VerifyResult` wire forms plus the worker entry point that
  rebuilds the transaction and runs the interpreter;
* :mod:`repro.parallel.pool` — :class:`VerifyPool`, the chunked
  scheduler with deterministic ``(txid, input_index)`` aggregation,
  serial fallback, restart-on-crash, and registry-backed metrics.

The cache-coherence rule: workers return *verdicts only*.  The parent
process owns the PR-1 script-verification cache and decides — in serial
order — what gets cached, so pooled and serial runs leave identical
cache state behind.
"""

from repro.parallel.jobs import VerifyJob, VerifyResult, execute_job, run_batch
from repro.parallel.pool import VerifyPool

__all__ = [
    "VerifyJob",
    "VerifyResult",
    "VerifyPool",
    "execute_job",
    "run_batch",
]
