"""The process-pool verification scheduler.

:class:`VerifyPool` fans :class:`~repro.parallel.jobs.VerifyJob` batches
across ``multiprocessing`` workers and aggregates verdicts back into a
deterministic order.  Its contract, in decreasing order of importance:

1. **Determinism** — ``run()`` returns results sorted by
   ``(txid, input_index)`` no matter which worker finished first, and a
   broken pool degrades to in-process execution of the *same* jobs, so
   callers see identical verdicts with or without worker processes.
2. **Graceful degradation** — a failed spawn (sandboxes, fork limits),
   ``workers=0``, or a crashed worker never surfaces as an error to
   validation: the pool restarts once, then falls back to serial for
   good.  Fallbacks are visible in the metrics, not in verdicts.
3. **Observability** — jobs, batches, queue depth, fallbacks, restarts
   and per-worker utilisation land in the PR-4 metrics registry.
"""

from __future__ import annotations

import multiprocessing
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, StatsView
from repro.parallel.jobs import VerifyJob, VerifyResult, run_batch

__all__ = ["DEFAULT_CHUNK_SIZE", "PendingRun", "VerifyPool"]

#: Jobs per scheduling chunk.  Small enough that a block's inputs spread
#: across workers, large enough that one pickle round-trip amortises over
#: several interpreter runs.
DEFAULT_CHUNK_SIZE = 8


class VerifyPool:
    """A pool of verification workers with deterministic aggregation.

    :param workers: worker process count; ``0`` builds a pool that runs
        every batch in-process (the explicit serial configuration).
    :param chunk_size: jobs per scheduled batch.
    :param registry: the deployment's metrics registry; a private one is
        created when omitted so the pool is always observable.
    :param start_method: ``multiprocessing`` start method override; the
        default prefers ``fork`` (cheap on Linux) and falls back to
        whatever the platform offers.
    """

    def __init__(self, workers: int, chunk_size: int = DEFAULT_CHUNK_SIZE,
                 registry: Optional[MetricsRegistry] = None,
                 start_method: Optional[str] = None) -> None:
        if workers < 0:
            raise ConfigurationError(f"worker count cannot be negative: {workers}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk size must be positive: {chunk_size}")
        self.workers = workers
        self.chunk_size = chunk_size
        self.registry = registry if registry is not None else MetricsRegistry()
        self._start_method = start_method
        self._pool = None
        self._broken = False  # permanent serial fallback after restart failed
        self._worker_ordinals: dict[int, int] = {}  # pid -> stable label
        reg = self.registry
        self._m_jobs = reg.counter("parallel.jobs")
        self._m_batches = reg.counter("parallel.batches")
        self._m_serial_jobs = reg.counter("parallel.serial_jobs")
        self._m_fallbacks = reg.counter("parallel.serial_fallbacks")
        self._m_restarts = reg.counter("parallel.pool_restarts")
        self._m_spawn_failures = reg.counter("parallel.spawn_failures")
        self._m_workers = reg.gauge("parallel.workers")
        self._m_queue_depth = reg.gauge("parallel.queue_depth")
        self._m_worker_jobs = reg.counter("parallel.worker_jobs", "worker")
        self._m_workers.set(workers)
        if workers > 0:
            self._spawn()

    # -- lifecycle ---------------------------------------------------------------

    def _spawn(self) -> None:
        """Start the worker pool; a failure means serial fallback, not error."""
        try:
            method = self._start_method
            if method is None:
                available = multiprocessing.get_all_start_methods()
                method = "fork" if "fork" in available else available[0]
            context = multiprocessing.get_context(method)
            self._pool = context.Pool(processes=self.workers)
        except (OSError, ValueError, RuntimeError):
            # The documented spawn failure modes: fork/pipe limits and
            # sandbox denials (OSError), an unknown start method
            # (ValueError), and spawn-without-main-guard (RuntimeError).
            self._pool = None
            self._m_spawn_failures.inc()

    def _teardown(self) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except (OSError, ValueError, RuntimeError, AssertionError):
                # A half-dead pool must not block shutdown: broken pipes
                # (OSError), double-close (ValueError), and the state
                # assertions inside multiprocessing.Pool.join.
                pass

    def shutdown(self) -> None:
        """Terminate workers; the pool keeps working, serially."""
        self._teardown()

    close = shutdown

    def __enter__(self) -> "VerifyPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    def __del__(self) -> None:
        try:
            self._teardown()
        except (AttributeError, TypeError, RuntimeError):
            # Interpreter teardown: module globals and the pool's own
            # attributes may already be None'd out under us.
            pass

    @property
    def active(self) -> bool:
        """Whether worker processes are currently serving batches."""
        return self._pool is not None

    # -- scheduling --------------------------------------------------------------

    def run(self, jobs: Sequence[VerifyJob]) -> list[VerifyResult]:
        """Execute ``jobs``; return verdicts sorted by ``(txid, input_index)``.

        Never raises on worker failure: a crashed pool is restarted once,
        and if that fails too every remaining call runs in-process.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        self._m_jobs.inc(len(jobs))
        if self._pool is None:
            results = run_batch(jobs)
            self._m_serial_jobs.inc(len(jobs))
        else:
            chunks = [jobs[i:i + self.chunk_size]
                      for i in range(0, len(jobs), self.chunk_size)]
            self._m_batches.inc(len(chunks))
            self._m_queue_depth.set(len(chunks))
            try:
                nested = self._dispatch(chunks)
            finally:
                self._m_queue_depth.set(0)
            results = [result for chunk in nested for result in chunk]
            self._observe_workers(results)
        results.sort(key=lambda result: result.order_key)
        return results

    def _dispatch(self, chunks: list[list[VerifyJob]]) -> list[list[VerifyResult]]:
        try:
            return self._pool.map(run_batch, chunks)
        except Exception:  # lint: allow(exception-flow) — worker failures re-raise with arbitrary types; a genuine ValidationError re-raises in the serial fallback below
            # A worker died mid-batch (or the pool pipe broke).  Restart
            # once; a second failure retires the pool permanently.
            return self._recover(chunks)

    def _recover(self, chunks: list[list[VerifyJob]]) -> list[list[VerifyResult]]:
        """The degradation ladder after a failed dispatch: restart the
        pool once and retry, else run the same chunks in-process."""
        self._m_restarts.inc()
        self._teardown()
        if not self._broken:
            self._spawn()
        if self._pool is not None:
            try:
                return self._pool.map(run_batch, chunks)
            except Exception:  # lint: allow(exception-flow) — same contract as the first attempt: the serial re-run below surfaces real validation errors
                self._teardown()
        self._broken = True
        self._m_fallbacks.inc()
        return [run_batch(chunk) for chunk in chunks]

    def run_async(self, jobs: Sequence[VerifyJob]) -> "PendingRun":
        """Submit ``jobs`` without waiting; ``wait()`` collects later.

        The pipelined connect path: workers start crunching immediately
        while the caller walks the next block.  ``PendingRun.wait()``
        returns exactly what the matching synchronous :meth:`run` would
        have — same ordering, same restart-once/serial-fallback ladder.
        Without active workers nothing runs until ``wait()``, which then
        executes in-process (deferral, not background execution).
        """
        jobs = list(jobs)
        pending = PendingRun(self, jobs)
        if not jobs:
            return pending
        self._m_jobs.inc(len(jobs))
        if self._pool is not None:
            chunks = [jobs[i:i + self.chunk_size]
                      for i in range(0, len(jobs), self.chunk_size)]
            self._m_batches.inc(len(chunks))
            self._m_queue_depth.set(len(chunks))
            pending._chunks = chunks
            try:
                pending._async = self._pool.map_async(run_batch, chunks)
            except Exception:  # lint: allow(exception-flow) — a broken pool raises arbitrary types at submit; recovery re-runs the same chunks
                pending._nested = self._recover(chunks)
                self._m_queue_depth.set(0)
        return pending

    def _collect(self, pending: "PendingRun") -> list[VerifyResult]:
        """Finish a :meth:`run_async`: gather, degrade, order, observe."""
        jobs = pending._jobs
        if not jobs:
            return []
        if pending._nested is not None:
            nested = pending._nested
            results = [result for chunk in nested for result in chunk]
            self._observe_workers(results)
        elif pending._async is not None:
            try:
                nested = pending._async.get()
            except Exception:  # lint: allow(exception-flow) — a worker died mid-batch; same degradation ladder as the synchronous path
                nested = self._recover(pending._chunks)
            finally:
                self._m_queue_depth.set(0)
            results = [result for chunk in nested for result in chunk]
            self._observe_workers(results)
        else:
            # No workers were active at submit time: the deferred jobs
            # simply run in-process now.
            results = run_batch(jobs)
            self._m_serial_jobs.inc(len(jobs))
        results.sort(key=lambda result: result.order_key)
        return results

    def _observe_workers(self, results: list[VerifyResult]) -> None:
        """Worker utilisation: jobs per worker under stable ordinal labels."""
        for result in results:
            ordinal = self._worker_ordinals.get(result.worker_pid)
            if ordinal is None:
                ordinal = len(self._worker_ordinals)
                self._worker_ordinals[result.worker_pid] = ordinal
            self._m_worker_jobs.labels(worker=f"w{ordinal}").inc()

    # -- telemetry ---------------------------------------------------------------

    def stats(self) -> StatsView:
        """The uniform ``stats()`` accessor (registry-backed)."""
        return StatsView({
            "workers": self.workers,
            "active": self.active,
            "chunk_size": self.chunk_size,
            "jobs": self._m_jobs.value,
            "batches": self._m_batches.value,
            "serial_jobs": self._m_serial_jobs.value,
            "serial_fallbacks": self._m_fallbacks.value,
            "pool_restarts": self._m_restarts.value,
            "spawn_failures": self._m_spawn_failures.value,
            "distinct_workers": len(self._worker_ordinals),
        })


class PendingRun:
    """An in-flight :meth:`VerifyPool.run_async` submission.

    ``wait()`` blocks until the verdicts are in and returns them in the
    pool's deterministic ``(txid, input_index)`` order.  Idempotent: a
    second ``wait()`` returns the cached results.
    """

    def __init__(self, pool: VerifyPool, jobs: list[VerifyJob]) -> None:
        self._verify_pool = pool
        self._jobs = jobs
        self._chunks: Optional[list[list[VerifyJob]]] = None
        self._async = None
        self._nested: Optional[list[list[VerifyResult]]] = None
        self._results: Optional[list[VerifyResult]] = None

    def wait(self) -> list[VerifyResult]:
        if self._results is None:
            self._results = self._verify_pool._collect(self)
            self._async = None
            self._nested = None
        return self._results


