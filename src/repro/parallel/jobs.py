"""Picklable verification jobs and the worker-side entry point.

A :class:`VerifyJob` carries everything a worker needs in wire form —
serialized transaction, serialized locking script — so the job pickles
cheaply and never drags engine, chain, or UTXO state across the process
boundary.  Workers are pure functions: they rebuild the transaction, run
the interpreter, and return a verdict.  They never see the script cache
(the parent owns it) and never raise on a failed script — a False
verdict is data, not an exception, so result aggregation stays total.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Optional

__all__ = ["VerifyJob", "VerifyResult", "execute_job", "run_batch"]

#: The one error code a worker can produce: the interpreter ran and the
#: script pair did not verify.  The parent maps it back to the engine's
#: canonical ValidationError message (which needs the UTXO entry the
#: worker never sees).
ERROR_SCRIPT_FAILED = "script-failed"


@dataclass(frozen=True)
class VerifyJob:
    """One input-script verification, in picklable wire form.

    ``tag`` is the caller's serial-order key (position of the transaction
    in its block; 0 for single-transaction batches) — it rides along so
    the parent can reconstruct which failure a serial run would have hit
    first.
    """

    txid: bytes
    input_index: int
    tx_bytes: bytes
    locking_bytes: bytes
    tag: int = 0


@dataclass(frozen=True)
class VerifyResult:
    """A worker's verdict on one :class:`VerifyJob`."""

    txid: bytes
    input_index: int
    ok: bool
    error_code: Optional[str]
    tag: int = 0
    worker_pid: int = 0

    @property
    def order_key(self) -> tuple[bytes, int]:
        """The deterministic aggregation order: ``(txid, input_index)``."""
        return (self.txid, self.input_index)


def execute_job(job: VerifyJob, tx=None, locking=None,
                sighash_hint=None, verdict_cache=None) -> VerifyResult:
    """Run one job's script pair; total — failures are False, not raises.

    ``sighash_hint`` and ``verdict_cache`` are the optional batch-layer
    accelerations (see :mod:`repro.blockchain.sigbatch`); a lone job runs
    without them and computes everything itself.
    """
    # Imported here, not at module top: the engine imports VerifyJob from
    # this module, so a blockchain import up top would be a cycle.  After
    # the first call these are sys.modules lookups, dwarfed by the
    # interpreter run they precede.
    from repro.blockchain.context import TransactionContext
    from repro.blockchain.transaction import Transaction
    from repro.script.interpreter import ScriptInterpreter
    from repro.script.script import Script

    if tx is None:
        tx = Transaction.deserialize(job.tx_bytes)
    if locking is None:
        locking = Script.from_bytes(job.locking_bytes)
    context = TransactionContext(
        tx=tx, input_index=job.input_index, locking_script=locking,
        sighash_hint=sighash_hint, verdict_cache=verdict_cache,
    )
    ok = ScriptInterpreter(context=context).verify(
        tx.inputs[job.input_index].script_sig, locking,
    )
    return VerifyResult(
        txid=job.txid,
        input_index=job.input_index,
        ok=ok,
        error_code=None if ok else ERROR_SCRIPT_FAILED,
        tag=job.tag,
        worker_pid=os.getpid(),
    )


def run_batch(jobs: Iterable[VerifyJob]) -> list[VerifyResult]:
    """The pool's map target: execute a chunk of jobs in one worker.

    Transactions are deserialized once per batch, not once per input,
    and the whole chunk goes through the cross-input batch layer: one
    :func:`~repro.blockchain.sigbatch.precompute_verdicts` pass shares
    sighash serialization and ECDSA table setup across the chunk before
    the interpreter replays each pair with identical verdicts.
    """
    from repro.blockchain.sigbatch import precompute_verdicts
    from repro.blockchain.transaction import Transaction
    from repro.script.script import Script

    jobs = list(jobs)
    parsed: dict[bytes, "Transaction"] = {}
    lockings = []
    spends = []
    for job in jobs:
        tx = parsed.get(job.txid)
        if tx is None:
            tx = Transaction.deserialize(job.tx_bytes)
            parsed[job.txid] = tx
        locking = Script.from_bytes(job.locking_bytes)
        lockings.append(locking)
        spends.append((tx, job.input_index, locking))
    hints, verdicts = precompute_verdicts(spends)
    results: list[VerifyResult] = []
    for job, locking in zip(jobs, lockings):
        results.append(execute_job(
            job, tx=parsed[job.txid], locking=locking,
            sighash_hint=hints.get((job.txid, job.input_index)),
            verdict_cache=verdicts,
        ))
    return results
