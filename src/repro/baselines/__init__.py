"""Comparison systems.

* :mod:`repro.baselines.lorawan` — the centralized Fig. 1 architecture
  (fast, but no roaming without a shared operator);
* :mod:`repro.baselines.altruistic` — Durand et al.'s incentive-free
  blockchain directory (delivery tracks gateway goodwill);
* :mod:`repro.baselines.reputation` — the pay-first reputation scheme the
  paper's §4.4 argues "does not eliminate the problem".
"""

from repro.baselines.altruistic import AltruisticBaseline
from repro.baselines.lorawan import BaselineReport, LoRaWANBaseline
from repro.baselines.reputation import (
    ReputationExchange,
    ReputationOutcome,
    ReputationReport,
)

__all__ = [
    "AltruisticBaseline",
    "BaselineReport",
    "LoRaWANBaseline",
    "ReputationExchange",
    "ReputationOutcome",
    "ReputationReport",
]
