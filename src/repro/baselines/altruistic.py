"""The altruistic-blockchain baseline (Durand et al. [26]).

The related-work system the paper positions itself against: a blockchain
acts purely as an *activation/directory* server; gateways forward data to
the recipient resolved on-chain but receive **no reward**.  Latency is
lower than BcWAN (no fair-exchange transactions on the critical path),
but — as the paper argues — "their solution does not incentive gateways
of the network and thus it reduces users interest in deploying gateways".

The model makes that argument quantitative with a ``participation``
parameter: the fraction of foreign gateways willing to forward for free.
Delivery rate degrades linearly with participation, while BcWAN holds at
(radio-loss-limited) full delivery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.baselines.lorawan import BaselineReport
from repro.core.config import NetworkConfig
from repro.obs.exchange import ExchangeTracker
from repro.errors import ConfigurationError
from repro.lora.channel import Position, RadioChannel
from repro.lora.device import EU868_DOWNLINK_CHANNEL, LoRaRadio
from repro.lora.frames import DataFrame
from repro.lora.phy import LoRaModulation
from repro.p2p.message import Envelope
from repro.p2p.network import WANetwork
from repro.sim.core import Simulator
from repro.sim.latency import PlanetLabLatencyMatrix
from repro.sim.rng import RngRegistry

__all__ = ["AltruisticBaseline"]

# Directory lookup against the local chain copy.
_LOOKUP = 0.040
# Gateway frame handling.
_GW_FORWARDING = 0.004
# Recipient-side decryption (static keys; no ephemeral unwrap).
_DECRYPT = 0.012


class AltruisticBaseline:
    """Blockchain-as-directory forwarding with voluntary gateways."""

    def __init__(self, config: Optional[NetworkConfig] = None,
                 participation: float = 1.0) -> None:
        if not 0 <= participation <= 1:
            raise ConfigurationError(
                f"participation must be in [0, 1]: {participation}"
            )
        self.config = config or NetworkConfig()
        self.participation = participation
        cfg = self.config
        self.rngs = RngRegistry(cfg.seed)
        self.sim = Simulator()
        self.tracker = ExchangeTracker()
        self._exchanges_launched = 0
        self.drops_unwilling = 0

        hosts = cfg.site_names
        latency = PlanetLabLatencyMatrix(
            hosts, seed=cfg.seed ^ 0x5EED,
            median_range=cfg.wan_median_range, sigma=cfg.wan_sigma,
        )
        self.wan = WANetwork(self.sim, self.rngs.stream("wan"), latency)
        for name in hosts:
            self.wan.register(name, self._at_recipient)

        decision_rng = self.rngs.stream("participation")
        self.gateway_willing = [
            decision_rng.random() < participation
            for _ in range(cfg.num_gateways)
        ]

        modulation = LoRaModulation(spreading_factor=cfg.spreading_factor)
        self.channels = []
        for i, name in enumerate(cfg.site_names):
            channel = RadioChannel(self.sim, self.rngs.stream(f"radio-{name}"))
            radio = LoRaRadio(
                f"gw-{i}", channel, position=Position(0.0, 0.0),
                modulation=modulation, duty_cycle=cfg.gateway_duty_cycle,
                frequencies=(EU868_DOWNLINK_CHANNEL,), power_dbm=27.0,
            )
            radio.on_receive(
                lambda frame, rssi, index=i: self._at_gateway(index, frame)
            )
            self.channels.append(channel)
        self._deploy_sensors(modulation)

    def _deploy_sensors(self, modulation: LoRaModulation) -> None:
        cfg = self.config
        placement = self.rngs.stream("placement")
        self.sensor_radios: list[tuple[str, LoRaRadio]] = []
        for i in range(cfg.num_gateways):
            host_cell = (i + cfg.roaming_offset) % cfg.num_gateways
            for j in range(cfg.sensors_per_gateway):
                device_id = f"dev-{i}-{j}"
                angle = placement.uniform(0, 2 * math.pi)
                radius = cfg.cell_radius * math.sqrt(placement.random())
                radio = LoRaRadio(
                    device_id, self.channels[host_cell],
                    position=Position(radius * math.cos(angle),
                                      radius * math.sin(angle)),
                    modulation=modulation, duty_cycle=cfg.duty_cycle,
                )
                self.sensor_radios.append((device_id, radio))

    # -- protocol -------------------------------------------------------------------

    def _at_gateway(self, gateway_index: int, frame) -> None:
        if not isinstance(frame, DataFrame):
            return
        record = self.tracker.get(frame.nonce)
        if record is not None:
            record.t_data_received = self.sim.now
            record.gateway = f"gw-{gateway_index}"
        if not self.gateway_willing[gateway_index]:
            # No incentive, no forwarding — the argument against
            # altruistic designs made concrete.
            self.drops_unwilling += 1
            if record is not None and record.status == "pending":
                record.status = "failed"
                record.failure_reason = "gateway unwilling (no incentive)"
            return

        def forward():
            yield self.sim.timeout(_GW_FORWARDING + _LOOKUP)
            owner = int(frame.sender.split("-")[1])
            self.wan.send(self.config.site_names[gateway_index],
                          self.config.site_names[owner], frame)
        self.sim.process(forward())

    def _at_recipient(self, envelope: Envelope) -> None:
        frame = envelope.payload
        if not isinstance(frame, DataFrame):
            return

        def settle():
            yield self.sim.timeout(_DECRYPT)
            record = self.tracker.get(frame.nonce)
            if record is not None:
                record.t_delivered = self.sim.now
                record.t_decrypted = self.sim.now
                record.status = "completed"
        self.sim.process(settle())

    # -- workload --------------------------------------------------------------------

    def _sensor_loop(self, device_id: str, radio: LoRaRadio, budget_check):
        cfg = self.config
        rng = self.rngs.stream(f"workload-{device_id}")
        yield self.sim.timeout(rng.uniform(0, cfg.exchange_interval))
        while budget_check():
            self._exchanges_launched += 1
            record = self.tracker.new_exchange(device_id, b"reading")
            record.t_request = self.sim.now

            def one_uplink(record=record, radio=radio, device_id=device_id):
                transmission = yield from radio.send(DataFrame(
                    sender=device_id,
                    encrypted_message=b"\x00" * 64,
                    signature=b"\x00" * 64,
                    recipient_address="",
                    nonce=record.exchange_id,
                ))
                record.t_epk_sent = transmission.start
                record.t_data_sent = transmission.end
            self.sim.process(one_uplink())
            yield self.sim.timeout(rng.expovariate(1.0 / cfg.exchange_interval))

    def run(self, num_exchanges: int = 100,
            max_duration: Optional[float] = None) -> BaselineReport:
        cfg = self.config
        if max_duration is None:
            expected = (num_exchanges / max(cfg.total_sensors, 1)
                        * cfg.exchange_interval)
            max_duration = max(600.0, expected * 6 + 300.0)

        def budget_check() -> bool:
            return self._exchanges_launched < num_exchanges

        for device_id, radio in self.sensor_radios:
            self.sim.process(self._sensor_loop(device_id, radio, budget_check))

        while self.sim.now < max_duration:
            self.sim.run(until=self.sim.now + 10.0)
            if self._exchanges_launched >= num_exchanges:
                records = self.tracker.records()
                pending = [r for r in records if r.status == "pending"]
                if not pending:
                    break
                if all(self.sim.now - (r.t_request or 0) > 60 for r in pending):
                    for record in pending:
                        record.status = "failed"
                        record.failure_reason = "frame lost"
                    break
        records = self.tracker.records()
        completed = [r for r in records if r.completed]
        return BaselineReport(
            exchanges_launched=self._exchanges_launched,
            completed=len(completed),
            failed=len([r for r in records if r.status == "failed"]),
            duration=self.sim.now,
            latencies=[r.latency for r in completed if r.latency is not None],
        )
