"""The reputation-based exchange the paper considers and rejects (§4.4).

"A solution for this problem could be the usage of reputation. ... This
solution reduces the probability of misbehavior but does not eliminate
the problem."  This module makes the comparison quantitative: recipients
pay *first* (plain payment, no script protection) and gateways deliver —
or defect, keeping the payment.  Recipients track per-gateway reputation
and stop paying gateways below a threshold.

Against BcWAN's zero value-at-risk, the reputation scheme loses the
payments made before a defector's score crosses the threshold, and loses
all deliveries routed through blacklisted gateways afterwards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["ReputationExchange", "ReputationOutcome", "ReputationReport"]


@dataclass
class ReputationOutcome:
    """One pay-first exchange attempt."""

    gateway: str
    paid: bool
    delivered: bool
    rating_after: float


@dataclass
class ReputationReport:
    """Aggregate results of a reputation-scheme simulation."""

    attempts: int = 0
    paid: int = 0
    delivered: int = 0
    stolen_payments: int = 0
    refused_low_reputation: int = 0
    outcomes: list[ReputationOutcome] = field(default_factory=list)

    @property
    def loss_rate(self) -> float:
        """Fraction of payments made that bought no delivery."""
        return self.stolen_payments / self.paid if self.paid else 0.0

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.attempts if self.attempts else 0.0


class ReputationExchange:
    """Pay-first exchanges guarded only by an EWMA reputation score.

    :param gateway_honesty: per-gateway probability of delivering after
        being paid (1.0 = honest, 0.0 = pure thief).
    :param threshold: recipients refuse to pay gateways scoring below this.
    :param smoothing: EWMA weight of the newest observation.
    :param optimism: initial reputation for unknown gateways.
    """

    def __init__(self, gateway_honesty: dict[str, float],
                 threshold: float = 0.5, smoothing: float = 0.25,
                 optimism: float = 1.0,
                 rng: Optional[random.Random] = None) -> None:
        for name, honesty in gateway_honesty.items():
            if not 0 <= honesty <= 1:
                raise ConfigurationError(
                    f"honesty of {name} out of range: {honesty}"
                )
        if not 0 <= threshold <= 1:
            raise ConfigurationError(f"threshold out of range: {threshold}")
        if not 0 < smoothing <= 1:
            raise ConfigurationError(f"smoothing out of range: {smoothing}")
        self.gateway_honesty = dict(gateway_honesty)
        self.threshold = threshold
        self.smoothing = smoothing
        self.optimism = optimism
        self.rng = rng or random.Random(0)
        self.reputation: dict[str, float] = {
            name: optimism for name in gateway_honesty
        }

    def attempt(self, gateway: str, report: ReputationReport) -> ReputationOutcome:
        """One exchange through ``gateway``, updating reputation."""
        if gateway not in self.gateway_honesty:
            raise ConfigurationError(f"unknown gateway: {gateway}")
        report.attempts += 1
        score = self.reputation[gateway]
        if score < self.threshold:
            report.refused_low_reputation += 1
            outcome = ReputationOutcome(
                gateway=gateway, paid=False, delivered=False,
                rating_after=score,
            )
            report.outcomes.append(outcome)
            return outcome

        report.paid += 1
        delivered = self.rng.random() < self.gateway_honesty[gateway]
        observation = 1.0 if delivered else 0.0
        score = (1 - self.smoothing) * score + self.smoothing * observation
        self.reputation[gateway] = score
        if delivered:
            report.delivered += 1
        else:
            report.stolen_payments += 1
        outcome = ReputationOutcome(
            gateway=gateway, paid=True, delivered=delivered,
            rating_after=score,
        )
        report.outcomes.append(outcome)
        return outcome

    def simulate(self, exchanges_per_gateway: int = 100) -> ReputationReport:
        """Round-robin exchanges across all gateways."""
        report = ReputationReport()
        gateways = sorted(self.gateway_honesty)
        for _round in range(exchanges_per_gateway):
            for gateway in gateways:
                self.attempt(gateway, report)
        return report
