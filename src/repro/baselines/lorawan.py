"""The legacy LoRaWAN baseline (the paper's Fig. 1 architecture).

A centralized deployment: end devices uplink to gateways *of their own
operator*, gateways forward raw frames to the operator's Network Server
over the backhaul, and the Network Server routes to the application
server.  Latency is low — one uplink plus two WAN hops and MIC
processing — but there is no roaming: a foreign operator's gateway
silently drops frames from devices it does not manage, which is exactly
the limitation BcWAN removes.

:class:`LoRaWANBaseline` runs the same workload as
:class:`repro.core.network.BcWANNetwork` (same radio model, same WAN
model, same sensor placement including the roaming scenario) so the two
report comparable numbers for the baseline-comparison benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.core.config import NetworkConfig
from repro.obs.exchange import ExchangeTracker
from repro.lora.channel import Position, RadioChannel
from repro.lora.device import EU868_DOWNLINK_CHANNEL, LoRaRadio
from repro.lora.frames import DataFrame
from repro.lora.phy import LoRaModulation
from repro.p2p.message import Envelope
from repro.p2p.network import WANetwork
from repro.sim.core import Simulator
from repro.sim.latency import PlanetLabLatencyMatrix
from repro.sim.rng import RngRegistry
from repro.obs.stats import Summary

__all__ = ["LoRaWANBaseline", "BaselineReport"]

# Modeled Network Server processing: deduplication, MIC check, routing.
_NS_PROCESSING = 0.020
# Gateway packet-forwarder handling per frame.
_GW_FORWARDING = 0.004


@dataclass(frozen=True)
class _UplinkReport:
    """Gateway → network server frame forward."""

    frame: DataFrame
    gateway: str
    received_at: float


@dataclass
class BaselineReport:
    """Results comparable with :class:`repro.core.network.RunReport`."""

    exchanges_launched: int
    completed: int
    failed: int
    duration: float
    latencies: list[float]

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            raise ValueError("no completed exchanges")
        return sum(self.latencies) / len(self.latencies)

    @property
    def summary(self) -> Summary:
        return Summary.of(self.latencies)

    @property
    def delivery_rate(self) -> float:
        if not self.exchanges_launched:
            return 0.0
        return self.completed / self.exchanges_launched


class LoRaWANBaseline:
    """The centralized architecture under the BcWAN workload.

    Every actor operates its own network: gateway ``i`` belongs to actor
    ``i`` and only forwards frames from actor ``i``'s devices.  With
    ``config.roaming_offset != 0`` the sensors sit in a foreign cell, so
    the hosting gateway drops their frames — the delivery rate collapses,
    which is the comparison's headline row.
    """

    def __init__(self, config: Optional[NetworkConfig] = None) -> None:
        self.config = config or NetworkConfig()
        cfg = self.config
        self.rngs = RngRegistry(cfg.seed)
        self.sim = Simulator()
        self.tracker = ExchangeTracker()
        self._exchanges_launched = 0

        hosts = (cfg.site_names + ["network-server"]
                 + [f"app-{i}" for i in range(cfg.num_gateways)])
        latency = PlanetLabLatencyMatrix(
            hosts, seed=cfg.seed ^ 0x5EED,
            median_range=cfg.wan_median_range, sigma=cfg.wan_sigma,
        )
        self.wan = WANetwork(self.sim, self.rngs.stream("wan"), latency)
        self.wan.register("network-server", self._at_network_server)
        for i in range(cfg.num_gateways):
            self.wan.register(f"app-{i}", self._at_app_server)

        modulation = LoRaModulation(spreading_factor=cfg.spreading_factor)
        self.channels: list[RadioChannel] = []
        self.gateway_radios: list[LoRaRadio] = []
        for i, name in enumerate(cfg.site_names):
            channel = RadioChannel(self.sim, self.rngs.stream(f"radio-{name}"))
            radio = LoRaRadio(
                f"gw-{i}", channel, position=Position(0.0, 0.0),
                modulation=modulation, duty_cycle=cfg.gateway_duty_cycle,
                frequencies=(EU868_DOWNLINK_CHANNEL,), power_dbm=27.0,
            )
            radio.on_receive(
                lambda frame, rssi, index=i: self._at_gateway(index, frame)
            )
            self.wan.register(name, lambda envelope: None)
            self.channels.append(channel)
            self.gateway_radios.append(radio)

        self._deploy_sensors(modulation)

    # -- deployment -----------------------------------------------------------

    def _deploy_sensors(self, modulation: LoRaModulation) -> None:
        cfg = self.config
        placement = self.rngs.stream("placement")
        self.sensor_radios: list[tuple[str, int, LoRaRadio]] = []
        for i in range(cfg.num_gateways):
            host_cell = (i + cfg.roaming_offset) % cfg.num_gateways
            for j in range(cfg.sensors_per_gateway):
                device_id = f"dev-{i}-{j}"
                angle = placement.uniform(0, 2 * math.pi)
                radius = cfg.cell_radius * math.sqrt(placement.random())
                radio = LoRaRadio(
                    device_id, self.channels[host_cell],
                    position=Position(radius * math.cos(angle),
                                      radius * math.sin(angle)),
                    modulation=modulation, duty_cycle=cfg.duty_cycle,
                )
                self.sensor_radios.append((device_id, i, radio))

    @staticmethod
    def _owner_of(device_id: str) -> int:
        return int(device_id.split("-")[1])

    # -- protocol -----------------------------------------------------------------

    def _at_gateway(self, gateway_index: int, frame) -> None:
        """A gateway only serves its own operator's devices."""
        if not isinstance(frame, DataFrame):
            return
        if self._owner_of(frame.sender) != gateway_index:
            # Foreign device: the legacy gateway has no session keys for it
            # and the network server would reject its MIC.  Dropped.
            record = self.tracker.get(frame.nonce)
            if record is not None and record.status == "pending":
                record.status = "failed"
                record.failure_reason = "foreign gateway: no roaming agreement"
            return
        record = self.tracker.get(frame.nonce)
        if record is not None:
            record.t_data_received = self.sim.now
            record.gateway = f"gw-{gateway_index}"

        def forward():
            yield self.sim.timeout(_GW_FORWARDING)
            self.wan.send(
                self.config.site_names[gateway_index], "network-server",
                _UplinkReport(frame=frame, gateway=f"gw-{gateway_index}",
                              received_at=self.sim.now),
            )
        self.sim.process(forward())

    def _at_network_server(self, envelope: Envelope) -> None:
        report = envelope.payload
        if not isinstance(report, _UplinkReport):
            return

        def route():
            yield self.sim.timeout(_NS_PROCESSING)
            owner = self._owner_of(report.frame.sender)
            self.wan.send("network-server", f"app-{owner}", report)
        self.sim.process(route())

    def _at_app_server(self, envelope: Envelope) -> None:
        report = envelope.payload
        if not isinstance(report, _UplinkReport):
            return
        record = self.tracker.get(report.frame.nonce)
        if record is not None:
            record.t_decrypted = self.sim.now
            record.status = "completed"

    # -- workload -------------------------------------------------------------------

    def _sensor_loop(self, device_id: str, radio: LoRaRadio, budget_check):
        cfg = self.config
        rng = self.rngs.stream(f"workload-{device_id}")
        yield self.sim.timeout(rng.uniform(0, cfg.exchange_interval))
        while budget_check():
            self._exchanges_launched += 1
            record = self.tracker.new_exchange(device_id, b"reading")
            record.t_request = self.sim.now

            def one_uplink(record=record, radio=radio, device_id=device_id):
                transmission = yield from radio.send(DataFrame(
                    sender=device_id,
                    encrypted_message=b"\x00" * 64,
                    signature=b"\x00" * 64,
                    recipient_address="",
                    nonce=record.exchange_id,
                ))
                # Legacy latency clock: start of the single data uplink.
                record.t_epk_sent = transmission.start
                record.t_data_sent = transmission.end
            self.sim.process(one_uplink())
            yield self.sim.timeout(rng.expovariate(1.0 / cfg.exchange_interval))

    def run(self, num_exchanges: int = 100,
            max_duration: Optional[float] = None) -> BaselineReport:
        cfg = self.config
        if max_duration is None:
            expected = (num_exchanges / max(cfg.total_sensors, 1)
                        * cfg.exchange_interval)
            max_duration = max(600.0, expected * 6 + 300.0)

        def budget_check() -> bool:
            return self._exchanges_launched < num_exchanges

        for device_id, _owner, radio in self.sensor_radios:
            self.sim.process(self._sensor_loop(device_id, radio, budget_check))

        while self.sim.now < max_duration:
            self.sim.run(until=self.sim.now + 10.0)
            if self._exchanges_launched >= num_exchanges:
                records = self.tracker.records()
                pending = [r for r in records if r.status == "pending"]
                if not pending:
                    break
                # Frames drop silently in ALOHA radio; expire stragglers.
                if all(self.sim.now - (r.t_request or 0) > 60 for r in pending):
                    for record in pending:
                        record.status = "failed"
                        record.failure_reason = "frame lost"
                    break
        records = self.tracker.records()
        completed = [r for r in records if r.completed]
        return BaselineReport(
            exchanges_launched=self._exchanges_launched,
            completed=len(completed),
            failed=len([r for r in records if r.status == "failed"]),
            duration=self.sim.now,
            latencies=[r.latency for r in completed if r.latency is not None],
        )
