"""Peer-to-peer overlay: simulated WAN plus blockchain gossip.

* :mod:`repro.p2p.network` — latency-modeled message passing;
* :mod:`repro.p2p.message` — wire message types (gossip + delivery);
* :mod:`repro.p2p.gossip` — tx/block flooding between full nodes.
"""

from repro.p2p.gossip import GossipNode
from repro.p2p.sync import (
    BlocksMessage,
    GetBlocksMessage,
    GetTipMessage,
    GetTxsMessage,
    SyncAgent,
    TipMessage,
    TxsMessage,
)
from repro.p2p.message import (
    BlockMessage,
    ClaimMessage,
    DeliveryAck,
    DeliveryMessage,
    Envelope,
    GetDataMessage,
    InvMessage,
    TxMessage,
)
from repro.p2p.network import Host, WANetwork

__all__ = [
    "BlockMessage",
    "BlocksMessage",
    "GetBlocksMessage",
    "GetTipMessage",
    "GetTxsMessage",
    "SyncAgent",
    "TipMessage",
    "TxsMessage",
    "ClaimMessage",
    "DeliveryAck",
    "DeliveryMessage",
    "Envelope",
    "GetDataMessage",
    "GossipNode",
    "Host",
    "InvMessage",
    "TxMessage",
    "WANetwork",
]
