"""Anti-entropy synchronization between full nodes.

Flooding gossip is push-only: on a lossy WAN a dropped ``BlockMessage``
or ``TxMessage`` would leave a node permanently behind.  Real Bitcoin-family
daemons recover through headers/inv exchanges on a timer; this module
implements the equivalent, hardened for partitions and churn:

* every ``interval`` seconds a :class:`SyncAgent` probes one peer
  (round-robin over peers that are not backing off) for its tip;
* every request is guarded by a **timeout** — a peer that fails to
  answer is scored, and repeat offenders are skipped with **jittered
  exponential backoff** until they answer again;
* a peer that is ahead (or on a different branch at the same height)
  triggers a **header-first catch-up session**: the requester fetches
  header inventories, walks back to the last common block (the fork
  point — essential after a partition in which both sides mined), then
  streams full blocks in pipelined batches until it reaches the peer's
  tip, instead of waiting one poll round per batch;
* mempool contents piggyback as a txid inventory; missing transactions
  are fetched explicitly.

Everything rides the same :class:`~repro.p2p.network.WANetwork` envelopes
as gossip and is processed through the owning daemon, so synchronization
competes for daemon time like any other traffic (and stalls behind block
verification, faithfully).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

from repro.obs.registry import StatsView
from repro.obs.telemetry import ChaosTelemetry
from repro.p2p.message import Envelope
from repro.sim.core import Simulator

if TYPE_CHECKING:  # imported lazily to avoid a p2p <-> core import cycle
    from repro.core.daemon import BlockchainDaemon
    from repro.obs.profile import HotPathProfiler

__all__ = [
    "SyncAgent",
    "PeerScore",
    "GetTipMessage",
    "TipMessage",
    "GetHeadersMessage",
    "HeadersMessage",
    "GetBlocksMessage",
    "BlocksMessage",
    "GetTxsMessage",
    "TxsMessage",
]


@dataclass(frozen=True)
class GetTipMessage:
    """Requester's view: height plus mempool inventory."""

    height: int
    mempool_txids: tuple[bytes, ...]


@dataclass(frozen=True)
class TipMessage:
    """Responder's tip (the requester decides whether to catch up).

    ``tip_hash`` lets the requester detect a divergent branch even at
    equal height — the split-brain signature a healed partition leaves.
    """

    height: int
    tip_hash: bytes = b""


@dataclass(frozen=True)
class GetHeadersMessage:
    """Fetch ``(height, hash)`` pairs for active heights above ``above_height``."""

    above_height: int
    limit: int


@dataclass(frozen=True)
class HeadersMessage:
    """Active-chain header inventory: ascending ``(height, hash)`` pairs."""

    headers: tuple[tuple[int, bytes], ...]
    tip_height: int


@dataclass(frozen=True)
class GetBlocksMessage:
    """Fetch active blocks with height > ``above_height``."""

    above_height: int


@dataclass(frozen=True)
class BlocksMessage:
    blocks: tuple[Any, ...]  # of repro.blockchain.Block


@dataclass(frozen=True)
class GetTxsMessage:
    txids: tuple[bytes, ...]


@dataclass(frozen=True)
class TxsMessage:
    transactions: tuple[Any, ...]  # of repro.blockchain.Transaction


@dataclass
class PeerScore:
    """Failure bookkeeping for one peer."""

    successes: int = 0
    failures: int = 0
    consecutive_failures: int = 0
    backoff_until: float = 0.0


@dataclass
class _Pending:
    """One in-flight request awaiting a reply (or its deadline)."""

    kind: str  # "tip" | "headers" | "blocks"
    peer: str
    token: int
    message: Any
    retries_left: int = 0


@dataclass
class _CatchupSession:
    """State of one header-first catch-up against a single peer."""

    peer: str
    target_height: int
    header_base: int = 0
    next_above: int = 0


class SyncAgent:
    """Periodic state reconciliation for one daemon.

    :param interval: seconds between tip probes.
    :param max_blocks_per_round: responder-side cap per ``BlocksMessage``.
    :param request_timeout: seconds before an unanswered request counts
        as a failure.
    :param backoff_base: exponential growth factor of the per-peer
        backoff (delay = ``interval * backoff_base**(failures-1)``).
    :param backoff_cap: ceiling on the backoff delay, in seconds; defaults
        to ``8 * interval``.
    :param backoff_jitter: relative jitter (+/-) applied to each backoff
        delay, drawn from the agent's own deterministic stream so thundering
        retries decorrelate without perturbing any other randomness.
    :param header_window: headers requested per ``GetHeadersMessage`` while
        walking back to the fork point.
    :param session_retries: automatic retransmissions of an unanswered
        catch-up request before the session is abandoned.
    """

    def __init__(self, sim: Simulator, daemon: "BlockchainDaemon",
                 interval: float = 30.0, max_blocks_per_round: int = 50,
                 request_timeout: float = 5.0,
                 backoff_base: float = 2.0,
                 backoff_cap: Optional[float] = None,
                 backoff_jitter: float = 0.2,
                 header_window: int = 32,
                 header_overlap: int = 8,
                 session_retries: int = 2) -> None:
        self.sim = sim
        self.daemon = daemon
        self.interval = interval
        self.max_blocks_per_round = max_blocks_per_round
        self.request_timeout = request_timeout
        self.backoff_base = backoff_base
        self.backoff_cap = (8 * interval) if backoff_cap is None else backoff_cap
        self.backoff_jitter = backoff_jitter
        self.header_window = header_window
        self.header_overlap = header_overlap
        self.session_retries = session_retries
        # Counters (legacy names kept: experiments read them directly).
        self.rounds = 0
        self.skipped_rounds = 0
        self.blocks_recovered = 0
        self.txs_recovered = 0
        self.timeouts = 0
        self.retries = 0
        self.backoff_resets = 0
        self.catchup_sessions = 0
        self.batches_received = 0
        self.headers_received = 0
        self.peer_scores: dict[str, PeerScore] = {}
        self._peer_cursor = 0
        self._pending: dict[str, _Pending] = {}
        self._session: Optional[_CatchupSession] = None
        self._tokens = itertools.count(1)
        # Jitter stream: seeded from the daemon name only, so backoff
        # noise is reproducible and independent of every other stream.
        self._jitter_rng = random.Random(f"sync-agent:{daemon.name}")
        # Optional shared ChaosTelemetry, set by a managing injector.
        self.telemetry: Optional[ChaosTelemetry] = None
        # Optional wall-clock profiler for the batch-apply hot path; the
        # default None keeps that path a single attribute test.
        self.obs: Optional["HotPathProfiler"] = None
        daemon.sync_agent = self
        daemon.register_protocol(GetTipMessage, self._on_get_tip)
        daemon.register_protocol(TipMessage, self._on_tip)
        daemon.register_protocol(GetHeadersMessage, self._on_get_headers)
        daemon.register_protocol(HeadersMessage, self._on_headers)
        daemon.register_protocol(GetBlocksMessage, self._on_get_blocks)
        daemon.register_protocol(BlocksMessage, self._on_blocks)
        daemon.register_protocol(GetTxsMessage, self._on_get_txs)
        daemon.register_protocol(TxsMessage, self._on_txs)
        self._process = sim.process(self._loop())

    # -- lifecycle ---------------------------------------------------------------

    def reset(self) -> None:
        """Drop in-flight request state (the owning daemon crashed)."""
        self._pending.clear()
        self._session = None

    def score_for(self, peer: str) -> PeerScore:
        score = self.peer_scores.get(peer)
        if score is None:
            score = PeerScore()
            self.peer_scores[peer] = score
        return score

    # -- the periodic probe -----------------------------------------------------

    def _loop(self):
        while True:
            yield self.sim.timeout(self.interval)
            self._run_round()

    def _run_round(self) -> None:
        if not self.daemon.online:
            self.skipped_rounds += 1
            return
        peers = self.daemon.gossip.peers
        if not peers:
            return
        peer = self._pick_peer(peers)
        if peer is None:
            self.skipped_rounds += 1
            return
        self.rounds += 1
        node = self.daemon.node
        self._send_request(peer, GetTipMessage(
            height=node.height,
            mempool_txids=tuple(tx.txid for tx in node.mempool.transactions()),
        ), kind="tip")

    def _pick_peer(self, peers: list[str]) -> Optional[str]:
        """Round-robin over peers that are neither backing off nor busy."""
        now = self.sim.now
        for offset in range(len(peers)):
            peer = peers[(self._peer_cursor + offset) % len(peers)]
            if peer in self._pending:
                continue
            if self.score_for(peer).backoff_until > now:
                continue
            self._peer_cursor = (self._peer_cursor + offset + 1) % len(peers)
            return peer
        return None

    # -- request/timeout machinery ----------------------------------------------

    def _send_request(self, peer: str, message: Any, kind: str,
                      retries_left: int = 0) -> None:
        token = next(self._tokens)
        self._pending[peer] = _Pending(kind=kind, peer=peer, token=token,
                                       message=message,
                                       retries_left=retries_left)
        self.daemon.gossip.network.send(self.daemon.name, peer, message)
        self.sim.call_in(self.request_timeout,
                         lambda: self._on_deadline(peer, token))

    def _on_deadline(self, peer: str, token: int) -> None:
        pending = self._pending.get(peer)
        if pending is None or pending.token != token:
            return  # answered (or superseded) in time
        self.timeouts += 1
        self.daemon.stats.sync_timeouts += 1
        if self.telemetry is not None:
            self.telemetry.sync_timeouts += 1
        if pending.retries_left > 0:
            self.retries += 1
            self.daemon.stats.sync_retries += 1
            if self.telemetry is not None:
                self.telemetry.sync_retries += 1
            self._send_request(peer, pending.message, pending.kind,
                               pending.retries_left - 1)
            return
        del self._pending[peer]
        self._record_failure(peer)
        if self._session is not None and self._session.peer == peer:
            self._session = None  # abandoned; a later probe restarts it

    def _record_failure(self, peer: str) -> None:
        score = self.score_for(peer)
        score.failures += 1
        score.consecutive_failures += 1
        delay = min(
            self.backoff_cap,
            self.interval * self.backoff_base ** (score.consecutive_failures - 1),
        )
        jitter = 1.0 + self.backoff_jitter * (2 * self._jitter_rng.random() - 1)
        score.backoff_until = self.sim.now + delay * jitter

    def _record_success(self, peer: str) -> None:
        score = self.score_for(peer)
        score.successes += 1
        if score.consecutive_failures > 0:
            self.backoff_resets += 1
            self.daemon.stats.sync_backoff_resets += 1
            if self.telemetry is not None:
                self.telemetry.backoff_resets += 1
        score.consecutive_failures = 0
        score.backoff_until = 0.0

    def _resolve_pending(self, peer: str, kind: str) -> bool:
        """Match a reply against the in-flight request; score the peer."""
        pending = self._pending.get(peer)
        if pending is None or pending.kind != kind:
            return False  # unsolicited (stale retransmit, duplicate)
        del self._pending[peer]
        self._record_success(peer)
        return True

    # -- responder side ------------------------------------------------------------

    def _on_get_tip(self, envelope: Envelope) -> None:
        request = envelope.payload
        node = self.daemon.node
        network = self.daemon.gossip.network
        network.send(self.daemon.name, envelope.source,
                     TipMessage(height=node.height,
                                tip_hash=node.chain.tip.hash))
        # Push any mempool transactions the requester is missing.
        theirs = set(request.mempool_txids)
        missing = [tx for tx in node.mempool.transactions()
                   if tx.txid not in theirs]
        if missing:
            network.send(self.daemon.name, envelope.source,
                         TxsMessage(transactions=tuple(missing)))
        # And fetch what they have that we lack.
        ours = {tx.txid for tx in node.mempool.transactions()}
        wanted = tuple(txid for txid in request.mempool_txids
                       if txid not in ours
                       and not node.chain.confirmations(txid))
        if wanted:
            network.send(self.daemon.name, envelope.source,
                         GetTxsMessage(txids=wanted))

    def _on_get_headers(self, envelope: Envelope) -> None:
        request = envelope.payload
        chain = self.daemon.node.chain
        top = min(chain.height, request.above_height + request.limit)
        headers = []
        for height in range(request.above_height + 1, top + 1):
            block = chain.block_at(height)
            if block is not None:
                headers.append((height, block.hash))
        self.daemon.gossip.network.send(
            self.daemon.name, envelope.source,
            HeadersMessage(headers=tuple(headers), tip_height=chain.height),
        )

    def _on_get_blocks(self, envelope: Envelope) -> None:
        above = envelope.payload.above_height
        chain = self.daemon.node.chain
        blocks = []
        for height in range(above + 1,
                            min(chain.height,
                                above + self.max_blocks_per_round) + 1):
            block = chain.block_at(height)
            if block is not None:
                blocks.append(block)
        if blocks:
            self.daemon.gossip.network.send(
                self.daemon.name, envelope.source,
                BlocksMessage(blocks=tuple(blocks)),
            )

    def _on_get_txs(self, envelope: Envelope) -> None:
        node = self.daemon.node
        found = []
        for txid in envelope.payload.txids:
            tx = node.mempool.get(txid)
            if tx is not None:
                found.append(tx)
        if found:
            self.daemon.gossip.network.send(
                self.daemon.name, envelope.source,
                TxsMessage(transactions=tuple(found)),
            )

    # -- requester side ----------------------------------------------------------

    def _on_tip(self, envelope: Envelope) -> None:
        self._resolve_pending(envelope.source, "tip")
        payload = envelope.payload
        node = self.daemon.node
        behind = payload.height > node.height
        diverged = (payload.height == node.height
                    and payload.tip_hash
                    and payload.tip_hash != node.chain.tip.hash)
        if (behind or diverged) and self._session is None:
            self._start_catchup(envelope.source, payload.height)

    def _start_catchup(self, peer: str, target_height: int) -> None:
        self.catchup_sessions += 1
        node = self.daemon.node
        base = max(0, min(node.height, target_height) - self.header_overlap)
        self._session = _CatchupSession(peer=peer,
                                        target_height=target_height,
                                        header_base=base)
        self._send_request(peer,
                           GetHeadersMessage(above_height=base,
                                             limit=self.header_window),
                           kind="headers", retries_left=self.session_retries)

    def _on_headers(self, envelope: Envelope) -> None:
        solicited = self._resolve_pending(envelope.source, "headers")
        session = self._session
        if (not solicited or session is None
                or session.peer != envelope.source):
            return
        payload = envelope.payload
        self.headers_received += len(payload.headers)
        session.target_height = max(session.target_height, payload.tip_height)
        chain = self.daemon.node.chain
        fork_height: Optional[int] = None
        for height, block_hash in reversed(payload.headers):
            if chain.contains(block_hash):
                fork_height = height
                break
        if fork_height is None:
            if session.header_base > 0:
                # Nothing in this window is ours: the fork is deeper.
                session.header_base = max(
                    0, session.header_base - self.header_window)
                self._send_request(
                    session.peer,
                    GetHeadersMessage(above_height=session.header_base,
                                      limit=self.header_window),
                    kind="headers", retries_left=self.session_retries)
                return
            # Window already starts at genesis, which every chain of this
            # network shares: the fork point is height 0.
            fork_height = 0
        session.next_above = fork_height
        self._request_next_batch()

    def _request_next_batch(self) -> None:
        session = self._session
        assert session is not None
        self._send_request(session.peer,
                           GetBlocksMessage(above_height=session.next_above),
                           kind="blocks", retries_left=self.session_retries)

    def _on_blocks(self, envelope: Envelope) -> None:
        solicited = self._resolve_pending(envelope.source, "blocks")
        blocks = envelope.payload.blocks
        self.batches_received += 1
        before = self.daemon.node.height
        if self.obs is None:
            for block in blocks:
                self.daemon.gossip.receive_block(block, origin=envelope.source)
        else:
            t0 = self.obs.clock()
            for block in blocks:
                self.daemon.gossip.receive_block(block, origin=envelope.source)
            self.obs.observe("sync.apply_batch", self.obs.clock() - t0)
        self.blocks_recovered += max(0, self.daemon.node.height - before)
        session = self._session
        if (not solicited or session is None
                or session.peer != envelope.source):
            return
        if blocks:
            session.next_above += len(blocks)
        if blocks and session.next_above < session.target_height:
            # Pipelined batching: keep streaming within this session
            # instead of waiting a full poll interval per batch.
            self._request_next_batch()
        else:
            self._session = None

    def _on_txs(self, envelope: Envelope) -> None:
        before = len(self.daemon.node.mempool)
        for tx in envelope.payload.transactions:
            self.daemon.gossip.receive_transaction(tx, origin=envelope.source)
        self.txs_recovered += max(0, len(self.daemon.node.mempool) - before)

    # -- observability ------------------------------------------------------------

    def stats(self) -> StatsView:
        """The uniform observability accessor (same shape as daemons')."""
        return StatsView({
            "rounds": self.rounds,
            "skipped_rounds": self.skipped_rounds,
            "blocks_recovered": self.blocks_recovered,
            "txs_recovered": self.txs_recovered,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "backoff_resets": self.backoff_resets,
            "catchup_sessions": self.catchup_sessions,
            "batches_received": self.batches_received,
            "headers_received": self.headers_received,
        })
