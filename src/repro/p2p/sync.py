"""Anti-entropy synchronization between full nodes.

Flooding gossip is push-only: on a lossy WAN a dropped ``BlockMessage``
or ``TxMessage`` would leave a node permanently behind.  Real Bitcoin-family
daemons recover through headers/inv exchanges on a timer; this module
implements the equivalent:

* every ``interval`` seconds a :class:`SyncAgent` asks one peer
  (round-robin) for its tip;
* a peer that is ahead answers with the blocks above the requester's
  height (bounded per round), which the requester feeds through its
  normal validation path;
* mempool contents piggyback as a txid inventory; missing transactions
  are fetched explicitly.

Everything rides the same :class:`~repro.p2p.network.WANetwork` envelopes
as gossip and is processed through the owning daemon, so synchronization
competes for daemon time like any other traffic (and stalls behind block
verification, faithfully).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.p2p.message import Envelope
from repro.sim.core import Simulator

if TYPE_CHECKING:  # imported lazily to avoid a p2p <-> core import cycle
    from repro.core.daemon import BlockchainDaemon

__all__ = [
    "SyncAgent",
    "GetTipMessage",
    "TipMessage",
    "GetBlocksMessage",
    "BlocksMessage",
    "GetTxsMessage",
    "TxsMessage",
]


@dataclass(frozen=True)
class GetTipMessage:
    """Requester's view: height plus mempool inventory."""

    height: int
    mempool_txids: tuple[bytes, ...]


@dataclass(frozen=True)
class TipMessage:
    """Responder's tip height (the requester decides whether to catch up)."""

    height: int


@dataclass(frozen=True)
class GetBlocksMessage:
    """Fetch active blocks with height > ``above_height``."""

    above_height: int


@dataclass(frozen=True)
class BlocksMessage:
    blocks: tuple  # of repro.blockchain.Block


@dataclass(frozen=True)
class GetTxsMessage:
    txids: tuple[bytes, ...]


@dataclass(frozen=True)
class TxsMessage:
    transactions: tuple  # of repro.blockchain.Transaction


class SyncAgent:
    """Periodic state reconciliation for one daemon."""

    def __init__(self, sim: Simulator, daemon: "BlockchainDaemon",
                 interval: float = 30.0, max_blocks_per_round: int = 50) -> None:
        self.sim = sim
        self.daemon = daemon
        self.interval = interval
        self.max_blocks_per_round = max_blocks_per_round
        self.rounds = 0
        self.blocks_recovered = 0
        self.txs_recovered = 0
        self._peer_cursor = 0
        daemon.register_protocol(GetTipMessage, self._on_get_tip)
        daemon.register_protocol(TipMessage, self._on_tip)
        daemon.register_protocol(GetBlocksMessage, self._on_get_blocks)
        daemon.register_protocol(BlocksMessage, self._on_blocks)
        daemon.register_protocol(GetTxsMessage, self._on_get_txs)
        daemon.register_protocol(TxsMessage, self._on_txs)
        self._process = sim.process(self._loop())

    # -- the periodic probe -----------------------------------------------------

    def _loop(self):
        while True:
            yield self.sim.timeout(self.interval)
            peers = self.daemon.gossip.peers
            if not peers:
                continue
            peer = peers[self._peer_cursor % len(peers)]
            self._peer_cursor += 1
            self.rounds += 1
            node = self.daemon.node
            self.daemon.gossip.network.send(
                self.daemon.name, peer,
                GetTipMessage(
                    height=node.height,
                    mempool_txids=tuple(
                        tx.txid for tx in node.mempool.transactions()
                    ),
                ),
            )

    # -- responder side ------------------------------------------------------------

    def _on_get_tip(self, envelope: Envelope) -> None:
        request = envelope.payload
        node = self.daemon.node
        network = self.daemon.gossip.network
        network.send(self.daemon.name, envelope.source,
                     TipMessage(height=node.height))
        # Push any mempool transactions the requester is missing.
        theirs = set(request.mempool_txids)
        missing = [tx for tx in node.mempool.transactions()
                   if tx.txid not in theirs]
        if missing:
            network.send(self.daemon.name, envelope.source,
                         TxsMessage(transactions=tuple(missing)))
        # And fetch what they have that we lack.
        ours = {tx.txid for tx in node.mempool.transactions()}
        wanted = tuple(txid for txid in request.mempool_txids
                       if txid not in ours
                       and not node.chain.confirmations(txid))
        if wanted:
            network.send(self.daemon.name, envelope.source,
                         GetTxsMessage(txids=wanted))

    def _on_tip(self, envelope: Envelope) -> None:
        their_height = envelope.payload.height
        if their_height > self.daemon.node.height:
            self.daemon.gossip.network.send(
                self.daemon.name, envelope.source,
                GetBlocksMessage(above_height=self.daemon.node.height),
            )

    def _on_get_blocks(self, envelope: Envelope) -> None:
        above = envelope.payload.above_height
        chain = self.daemon.node.chain
        blocks = []
        for height in range(above + 1,
                            min(chain.height,
                                above + self.max_blocks_per_round) + 1):
            block = chain.block_at(height)
            if block is not None:
                blocks.append(block)
        if blocks:
            self.daemon.gossip.network.send(
                self.daemon.name, envelope.source,
                BlocksMessage(blocks=tuple(blocks)),
            )

    def _on_blocks(self, envelope: Envelope) -> None:
        before = self.daemon.node.height
        for block in envelope.payload.blocks:
            self.daemon.gossip.receive_block(block, origin=envelope.source)
        self.blocks_recovered += max(0, self.daemon.node.height - before)

    def _on_get_txs(self, envelope: Envelope) -> None:
        node = self.daemon.node
        found = []
        for txid in envelope.payload.txids:
            tx = node.mempool.get(txid)
            if tx is not None:
                found.append(tx)
        if found:
            self.daemon.gossip.network.send(
                self.daemon.name, envelope.source,
                TxsMessage(transactions=tuple(found)),
            )

    def _on_txs(self, envelope: Envelope) -> None:
        before = len(self.daemon.node.mempool)
        for tx in envelope.payload.transactions:
            self.daemon.gossip.receive_transaction(tx, origin=envelope.source)
        self.txs_recovered += max(0, len(self.daemon.node.mempool) - before)
