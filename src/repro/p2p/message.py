"""Wire messages exchanged between BcWAN gateways over TCP/IP.

The overlay carries two protocols: blockchain gossip (inventories,
transactions, blocks — the Multichain peer protocol) and the BcWAN
delivery handshake of Fig. 3 step 7 (the gateway pushes ``Em``, ``ePk``
and ``Sig`` to the recipient it resolved from the chain).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Envelope",
    "InvMessage",
    "GetDataMessage",
    "TxMessage",
    "BlockMessage",
    "CompactBlockMessage",
    "GetBlockTxnMessage",
    "BlockTxnMessage",
    "DeliveryMessage",
    "DeliveryAck",
    "ClaimMessage",
]

_sequence = itertools.count(1)


@dataclass(frozen=True)
class Envelope:
    """Routing wrapper: who sent what to whom, when.

    ``trace`` carries the in-flight ``wan.transit`` span (if tracing is
    on) so a handler can parent its own spans under the delivery;
    ``message_id`` is process-global and must never enter a span —
    exports are keyed on deterministic per-tracer ids only.
    """

    source: str
    destination: str
    payload: Any
    sent_at: float
    message_id: int = field(default_factory=lambda: next(_sequence))
    trace: Any = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class InvMessage:
    """Inventory announcement: 'I have these items'."""

    kind: str  # "tx" or "block"
    hashes: tuple[bytes, ...]


@dataclass(frozen=True)
class GetDataMessage:
    """Request for announced items."""

    kind: str
    hashes: tuple[bytes, ...]


@dataclass(frozen=True)
class TxMessage:
    """A full transaction."""

    transaction: Any  # repro.blockchain.Transaction


@dataclass(frozen=True)
class BlockMessage:
    """A full block."""

    block: Any  # repro.blockchain.Block


@dataclass(frozen=True)
class CompactBlockMessage:
    """BIP 152-style block sketch: header plus short txids.

    Receivers rebuild the block from their mempool; ``prefilled`` carries
    ``(index, serialized_tx)`` pairs for transactions the sender knows the
    receiver cannot have (always the coinbase).  ``short_ids`` covers the
    remaining transactions in block order, each the first
    ``SHORT_TXID_BYTES`` of ``double_sha256(block_hash || txid)`` — salted
    by the block hash so collisions do not repeat across blocks.
    """

    header_bytes: bytes
    tx_count: int
    short_ids: tuple[bytes, ...]
    prefilled: tuple[tuple[int, bytes], ...]


@dataclass(frozen=True)
class GetBlockTxnMessage:
    """Fallback round-trip: the listed block positions were not in mempool."""

    block_hash: bytes
    indexes: tuple[int, ...]


@dataclass(frozen=True)
class BlockTxnMessage:
    """Reply to :class:`GetBlockTxnMessage`: the serialized transactions."""

    block_hash: bytes
    indexes: tuple[int, ...]
    transactions: tuple[bytes, ...]


@dataclass(frozen=True)
class DeliveryMessage:
    """Fig. 3 step 7: gateway → recipient data push.

    Carries the double-encrypted message ``Em``, the ephemeral public key
    ``ePk``, the node's signature ``Sig``, and the delivery id used to
    correlate the payment leg.
    """

    delivery_id: int
    encrypted_message: bytes
    ephemeral_pubkey: bytes
    signature: bytes
    node_id: str
    gateway_pubkey_hash: bytes
    price: int
    # Which sub-chain the sending gateway settles on.  Empty in a flat
    # federation; when it differs from the recipient's chain id, the
    # exchange settles cross-region (escrow on the recipient's sub-chain,
    # claim relayed back via ClaimMessage, audit via the anchor).
    chain_id: str = ""


@dataclass(frozen=True)
class DeliveryAck:
    """Recipient → gateway: signature verified; payment tx announced."""

    delivery_id: int
    accepted: bool
    offer_txid: bytes = b""
    reason: str = ""
    # The recipient's sub-chain id, plus — for cross-region exchanges
    # only — the full serialized key-release offer, since the gateway's
    # own daemon follows a different chain and can never look the offer
    # up from local mempool or chain state.
    chain_id: str = ""
    offer_tx_bytes: bytes = b""


@dataclass(frozen=True)
class ClaimMessage:
    """Gateway → recipient: the signed claim for a cross-region offer.

    The gateway audits the serialized offer, builds the eSk-revealing
    claim transaction with its chain-state-free wallet, and hands it to
    the recipient, who broadcasts it on *its* sub-chain — where the
    escrow lives.  The reveal still happens on-chain; only the transport
    of the claim crosses regions.
    """

    delivery_id: int
    claim_tx_bytes: bytes
