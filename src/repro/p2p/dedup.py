"""Bounded deduplication sets for long-running relay nodes.

Gossip and daemon layers remember which txids/block hashes they have
already processed.  Unbounded ``set`` memories grow forever on a
production gateway; :class:`LRUSet` keeps the most-recently-seen keys and
evicts the oldest once full, so a federation that runs for months keeps a
fixed memory footprint (at the cost of occasionally reprocessing a very
old item — which validation dedups anyway).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator

from repro.errors import ConfigurationError

__all__ = ["LRUSet"]


class LRUSet:
    """A set with least-recently-*seen* eviction.

    Both :meth:`add` and membership tests refresh recency: an item the
    relay keeps encountering stays cached, while one-shot items age out.
    """

    def __init__(self, maxsize: int = 4096) -> None:
        if maxsize <= 0:
            raise ConfigurationError(f"LRUSet maxsize must be positive: {maxsize}")
        self.maxsize = maxsize
        self.evictions = 0
        self._entries: OrderedDict[Hashable, None] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        if key in self._entries:
            self._entries.move_to_end(key)
            return True
        return False

    def add(self, key: Hashable) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = None
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def discard(self, key: Hashable) -> None:
        self._entries.pop(key, None)

    def clear(self) -> None:
        self._entries.clear()
