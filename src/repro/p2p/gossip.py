"""Flooding gossip of transactions and blocks between full nodes.

Each :class:`GossipNode` wraps one :class:`repro.blockchain.FullNode` and
relays newly-accepted items to its peers (dedup by hash, no echo to the
origin) — the inv/getdata pattern collapsed to direct push, appropriate
for the handful of gateways in a BcWAN federation.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.blockchain.block import Block
from repro.blockchain.node import FullNode
from repro.blockchain.transaction import Transaction
from repro.p2p.message import BlockMessage, Envelope, TxMessage
from repro.p2p.network import WANetwork

__all__ = ["GossipNode"]


class GossipNode:
    """P2P relay behaviour for one full node.

    The optional ``inbound_gate`` lets the daemon layer serialize message
    processing behind a busy server (the Multichain stall model); when
    absent, messages are processed at delivery time.
    """

    def __init__(self, node: FullNode, network: WANetwork,
                 name: Optional[str] = None, auto_register: bool = True) -> None:
        self.node = node
        self.network = network
        self.name = name or node.name
        self.peers: list[str] = []
        self._known_txids: set[bytes] = set()
        self._known_blocks: set[bytes] = set()
        # Listeners called when a tx/block is newly accepted locally.
        self.on_transaction: list[Callable[[Transaction], None]] = []
        self.on_block: list[Callable[[Block], None]] = []
        # A daemon wrapper may own the network registration instead, so it
        # can serialize inbound processing behind its service queue.
        if auto_register:
            network.register(self.name, self.handle_envelope)

    def connect(self, peer_name: str) -> None:
        if peer_name != self.name and peer_name not in self.peers:
            self.peers.append(peer_name)

    # -- local origination -------------------------------------------------

    def broadcast_transaction(self, tx: Transaction) -> bool:
        """Submit a locally-created transaction and gossip it.

        Local listeners fire exactly as they would for a gossiped
        transaction — an agent watching for a spend must see it whether
        the spender is remote or shares this node.
        """
        decision = self.node.submit_transaction(tx)
        if decision.accepted:
            self._known_txids.add(tx.txid)
            for listener in self.on_transaction:
                listener(tx)
            self._relay(TxMessage(transaction=tx))
        return decision.accepted

    def broadcast_block(self, block: Block) -> bool:
        """Announce a locally-mined (already connected) block."""
        self._known_blocks.add(block.hash)
        self._relay(BlockMessage(block=block))
        return True

    # -- inbound ---------------------------------------------------------------

    def handle_envelope(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, TxMessage):
            self.receive_transaction(payload.transaction, origin=envelope.source)
        elif isinstance(payload, BlockMessage):
            self.receive_block(payload.block, origin=envelope.source)

    def receive_transaction(self, tx: Transaction, origin: str = "") -> None:
        if tx.txid in self._known_txids:
            return
        self._known_txids.add(tx.txid)
        decision = self.node.submit_transaction(tx)
        if decision.accepted:
            for listener in self.on_transaction:
                listener(tx)
            if decision.relay:
                self._relay(TxMessage(transaction=tx), exclude=(origin,))

    def receive_block(self, block: Block, origin: str = "") -> None:
        if block.hash in self._known_blocks:
            return
        self._known_blocks.add(block.hash)
        decision, result = self.node.submit_block(block)
        if decision.accepted:
            if result.status in ("active", "side", "orphan"):
                for listener in self.on_block:
                    listener(block)
            if decision.relay:
                self._relay(BlockMessage(block=block), exclude=(origin,))

    def _relay(self, message, exclude: tuple[str, ...] = ()) -> None:
        for peer in self.peers:
            if peer in exclude:
                continue
            self.network.send(self.name, peer, message)
