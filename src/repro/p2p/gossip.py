"""Flooding gossip of transactions and blocks between full nodes.

Each :class:`GossipNode` wraps one :class:`repro.blockchain.FullNode` and
relays newly-accepted items to its peers (dedup by hash, no echo to the
origin) — the inv/getdata pattern collapsed to direct push, appropriate
for the handful of gateways in a BcWAN federation.

Robustness notes (the lessons a lossy, partitioned WAN teaches):

* Dedup memories are bounded :class:`~repro.p2p.dedup.LRUSet`\\ s, not
  unbounded sets — a gateway that relays for months keeps a fixed
  footprint.
* A transaction rejected only because its parents are unknown (orphan)
  is *not* marked known: it is parked in a bounded buffer and re-tried
  whenever a new transaction or block lands, so a child that raced ahead
  of its parent on a reordering WAN is recovered instead of blackholed.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Optional

from typing import Any

from repro.blockchain.block import Block
from repro.blockchain.node import FullNode
from repro.blockchain.transaction import Transaction
from repro.obs.registry import StatsView
from repro.blockchain.mempool import REJECT_MISSING_INPUTS
from repro.p2p.dedup import LRUSet
from repro.p2p.message import BlockMessage, Envelope, TxMessage
from repro.p2p.network import WANetwork

__all__ = ["GossipNode"]


class GossipNode:
    """P2P relay behaviour for one full node.

    The optional ``inbound_gate`` lets the daemon layer serialize message
    processing behind a busy server (the Multichain stall model); when
    absent, messages are processed at delivery time.
    """

    def __init__(self, node: FullNode, network: WANetwork,
                 name: Optional[str] = None, auto_register: bool = True,
                 dedup_cache_size: int = 4096,
                 orphan_pool_size: int = 256) -> None:
        self.node = node
        self.network = network
        self.name = name or node.name
        self.peers: list[str] = []
        self._known_txids: LRUSet = LRUSet(dedup_cache_size)
        self._known_blocks: LRUSet = LRUSet(dedup_cache_size)
        # Orphan transactions waiting for parents: txid -> (tx, origin).
        self.orphan_pool_size = orphan_pool_size
        self._orphan_txs: OrderedDict[bytes, tuple[Transaction, str]] = (
            OrderedDict()
        )
        self._retrying_orphans = False
        self.orphans_resolved = 0
        self.orphans_evicted = 0
        # Listeners called when a tx/block is newly accepted locally.
        self.on_transaction: list[Callable[[Transaction], None]] = []
        self.on_block: list[Callable[[Block], None]] = []
        # When a CompactBlockRelay attaches itself here, block relays go
        # out as short-txid sketches instead of full BlockMessages; None
        # (the default) keeps full-block gossip byte-identical.
        self.compact_relay: Optional[Any] = None
        # A daemon wrapper may own the network registration instead, so it
        # can serialize inbound processing behind its service queue.
        if auto_register:
            network.register(self.name, self.handle_envelope)

    def connect(self, peer_name: str) -> None:
        if peer_name != self.name and peer_name not in self.peers:
            self.peers.append(peer_name)

    def reset_caches(self) -> None:
        """Forget dedup and orphan state (crash with state loss)."""
        self._known_txids.clear()
        self._known_blocks.clear()
        self._orphan_txs.clear()

    @property
    def orphan_count(self) -> int:
        return len(self._orphan_txs)

    # -- local origination -------------------------------------------------

    def broadcast_transaction(self, tx: Transaction) -> bool:
        """Submit a locally-created transaction and gossip it.

        Local listeners fire exactly as they would for a gossiped
        transaction — an agent watching for a spend must see it whether
        the spender is remote or shares this node.
        """
        decision = self.node.submit_transaction(tx)
        if decision.accepted:
            self._known_txids.add(tx.txid)
            for listener in self.on_transaction:
                listener(tx)
            self._relay(TxMessage(transaction=tx))
            self._retry_orphans()
        return decision.accepted

    def broadcast_block(self, block: Block, parent: Any = None) -> bool:
        """Announce a locally-mined (already connected) block.

        ``parent`` (a span) threads the block's trace into the relay
        fan-out, so each peer's transit + validation hangs under it.
        """
        self._known_blocks.add(block.hash)
        self._relay_block(block, parent=parent)
        self._retry_orphans()
        return True

    # -- inbound ---------------------------------------------------------------

    def handle_envelope(self, envelope: Envelope) -> None:
        payload = envelope.payload
        if isinstance(payload, TxMessage):
            self.receive_transaction(payload.transaction, origin=envelope.source)
        elif isinstance(payload, BlockMessage):
            self.receive_block(payload.block, origin=envelope.source,
                               parent=envelope.trace)

    def receive_transaction(self, tx: Transaction, origin: str = "") -> None:
        if tx.txid in self._known_txids:
            return
        decision = self.node.submit_transaction(tx)
        if decision.accepted:
            self._known_txids.add(tx.txid)
            for listener in self.on_transaction:
                listener(tx)
            if decision.relay:
                self._relay(TxMessage(transaction=tx), exclude=(origin,))
            self._retry_orphans()
        elif decision.reason_code == REJECT_MISSING_INPUTS:
            # Parents unknown — park it; a later parent (via gossip or
            # sync) re-triggers evaluation.  Deliberately NOT marked
            # known: a re-gossip after eviction must get a fresh chance.
            self._stash_orphan(tx, origin)
        else:
            # Permanent verdict (invalid, duplicate, conflicting spend):
            # remember it so repeats are dropped cheaply.
            self._known_txids.add(tx.txid)

    def receive_block(self, block: Block, origin: str = "",
                      parent: Any = None) -> None:
        if block.hash in self._known_blocks:
            return
        self._known_blocks.add(block.hash)
        span = self.network.tracer.span("block.adopt", parent=parent,
                                        host=self.name)
        decision, result = self.node.submit_block(block)
        if decision.accepted:
            span.end("ok", outcome=result.status)
            if result.status in ("active", "side", "orphan"):
                for listener in self.on_block:
                    listener(block)
            if decision.relay:
                self._relay_block(block, exclude=(origin,), parent=span)
            self._retry_orphans()
        else:
            span.end("rejected", reason=decision.reason)

    def _relay_block(self, block: Block, exclude: tuple[str, ...] = (),
                     parent: Any = None) -> None:
        """Fan a block out to peers — compact sketch when relay is attached."""
        if self.compact_relay is not None:
            self.compact_relay.announce(block, exclude=exclude, parent=parent)
        else:
            self._relay(BlockMessage(block=block), exclude=exclude,
                        parent=parent)

    # -- orphan recovery --------------------------------------------------------

    def _stash_orphan(self, tx: Transaction, origin: str) -> None:
        if tx.txid in self._orphan_txs:
            self._orphan_txs.move_to_end(tx.txid)
            return
        self._orphan_txs[tx.txid] = (tx, origin)
        while len(self._orphan_txs) > self.orphan_pool_size:
            self._orphan_txs.popitem(last=False)
            self.orphans_evicted += 1

    def _retry_orphans(self) -> None:
        """Re-evaluate parked orphans now that new state arrived.

        Loops to a fixpoint so chains of orphans (grandchild waiting on
        child waiting on parent) resolve in one pass; the reentrancy
        guard keeps accepted orphans from recursing back in here.
        """
        if self._retrying_orphans or not self._orphan_txs:
            return
        self._retrying_orphans = True
        try:
            progress = True
            while progress and self._orphan_txs:
                progress = False
                for txid in list(self._orphan_txs):
                    entry = self._orphan_txs.get(txid)
                    if entry is None:
                        continue
                    tx, origin = entry
                    decision = self.node.submit_transaction(tx)
                    if decision.accepted:
                        del self._orphan_txs[txid]
                        self._known_txids.add(txid)
                        self.orphans_resolved += 1
                        progress = True
                        for listener in self.on_transaction:
                            listener(tx)
                        if decision.relay:
                            self._relay(TxMessage(transaction=tx),
                                        exclude=(origin,))
                    elif decision.reason_code != REJECT_MISSING_INPUTS:
                        # Now permanently decided (e.g. parent confirmed
                        # and the orphan double-spends, or it confirmed
                        # itself): stop retrying.
                        del self._orphan_txs[txid]
                        self._known_txids.add(txid)
        finally:
            self._retrying_orphans = False

    def _relay(self, message, exclude: tuple[str, ...] = (),
               parent: Any = None) -> None:
        for peer in self.peers:
            if peer in exclude:
                continue
            self.network.send(self.name, peer, message, parent=parent)

    def stats(self) -> StatsView:
        """The uniform observability accessor (same shape as daemons')."""
        return StatsView({
            "peers": len(self.peers),
            "orphans_pooled": len(self._orphan_txs),
            "orphans_resolved": self.orphans_resolved,
            "orphans_evicted": self.orphans_evicted,
        })
