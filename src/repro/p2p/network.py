"""The simulated wide-area network between gateways and servers.

Hosts register by name; :meth:`WANetwork.send` delivers a payload to the
destination's handler after a sampled one-way latency.  The latency model
defaults to PlanetLab-like per-pair lognormal distributions — the
substrate standing in for the paper's 5-node PlanetLab deployment.

Every send returns a :class:`SendReceipt` naming the verdict: queued for
delivery, lost to the sampled loss process, refused for lack of a route,
or blocked by an injected fault.  Drops are never silent — each kind has
its own counter, and an optional interceptor (the chaos engine's hook)
can drop, delay, duplicate, or corrupt any message in flight.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.obs.tracing import NULL_TRACER, Tracer
from repro.p2p.message import Envelope
from repro.sim.core import Simulator
from repro.sim.latency import LatencyModel, LogNormalLatency

__all__ = ["WANetwork", "Host", "SendReceipt", "FaultDecision",
           "estimate_wire_size"]


@dataclass
class Host:
    """A network endpoint: a name plus a message handler."""

    name: str
    handler: Callable[[Envelope], None]


@dataclass(frozen=True)
class SendReceipt:
    """The delivery verdict for one :meth:`WANetwork.send` call.

    ``status`` is one of:

    * ``"queued"`` — scheduled for delivery after a sampled latency (the
      destination may still be down by the time it arrives);
    * ``"lost"`` — consumed by the baseline sampled-loss process;
    * ``"no_route"`` — the destination name was never registered;
    * ``"blocked"`` — dropped by an injected fault (chaos engine).
    """

    envelope: Envelope
    status: str
    reason: str = ""

    @property
    def queued(self) -> bool:
        return self.status == "queued"


@dataclass(frozen=True)
class FaultDecision:
    """What an interceptor wants done with one in-flight message.

    The zero value (``FaultDecision()``) means "deliver normally".
    ``drop`` wins over everything else; otherwise ``extra_delay`` seconds
    are added to the sampled latency, ``duplicates`` extra copies are
    scheduled (each with its own latency sample), and a non-``None``
    ``replace_payload`` substitutes the payload (modeling corruption the
    receiver cannot parse).
    """

    drop: bool = False
    reason: str = ""
    extra_delay: float = 0.0
    duplicates: int = 0
    replace_payload: Any = None


# Interceptors may return None as shorthand for "no fault".
Interceptor = Callable[[Envelope], Optional[FaultDecision]]


def estimate_wire_size(payload: Any) -> int:
    """Rough TCP payload size of one wire message, in bytes.

    Chain data is sized by its actual serialization; inventory messages
    by 32 bytes per hash; everything else (the delivery handshake, sync
    and light-client messages) by a recursive field walk — bytes/str at
    face value, scalars at 8 bytes, containers by their summed elements,
    nested messages (sync's transaction batches, compact blocks'
    prefilled lists) by recursion — plus a small framing overhead.
    Every field type is counted: an unrecognized value contributes its
    conservative 8-byte default rather than silently sizing to zero.
    Feeds ``WANetwork.bytes_modeled``, the WAN-load measure of the
    federation-scaling and light-client benchmarks.
    """
    block = getattr(payload, "block", None)
    if block is not None:
        return 16 + block.serialized_size()
    transaction = getattr(payload, "transaction", None)
    if transaction is not None:
        return 16 + len(transaction.serialize())
    hashes = getattr(payload, "hashes", None)
    if hashes is not None:
        return 16 + 32 * len(hashes)
    return 16 + _field_size(payload, depth=0)


def _field_size(value: Any, depth: int) -> int:
    """Wire bytes of one message field, recursively."""
    if value is None:
        return 0
    if isinstance(value, (bytes, str)):
        return len(value)
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if depth >= 6:
        return 8  # pathological nesting; stop walking
    if isinstance(value, (tuple, list)):
        return sum(_field_size(item, depth + 1) for item in value)
    serialize = getattr(value, "serialize", None)
    if callable(serialize):
        # A nested chain object (transaction, header, block) knows its
        # own exact wire form.
        return len(serialize())
    fields = getattr(value, "__dict__", None)
    if fields is not None:
        return sum(_field_size(item, depth + 1) for item in fields.values())
    return 8


class WANetwork:
    """Latency-modeled message passing between named hosts."""

    def __init__(self, sim: Simulator, rng: random.Random,
                 latency: Optional[LatencyModel] = None,
                 loss_rate: float = 0.0) -> None:
        if not 0 <= loss_rate < 1:
            raise ConfigurationError(f"loss rate out of range: {loss_rate}")
        self.sim = sim
        self.rng = rng
        self.latency = latency or LogNormalLatency()
        self.loss_rate = loss_rate
        self._hosts: dict[str, Host] = {}
        self._down: set[str] = set()
        # Chaos hook: consulted once per send, after the baseline loss
        # sample, so injected faults compose with (rather than replace)
        # the WAN's own loss process.
        self.interceptor: Optional[Interceptor] = None
        # Observability hook: a scenario that traces swaps in its Tracer;
        # the default NULL_TRACER makes every span call a no-op.
        self.tracer: Tracer = NULL_TRACER
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0
        self.messages_duplicated = 0
        self.messages_corrupted = 0
        # Breakdown of messages_lost by cause; the sum of these four
        # always equals messages_lost.
        self.drops_sampled_loss = 0
        self.drops_unknown_destination = 0
        self.drops_offline = 0
        self.drops_injected = 0
        self.bytes_modeled = 0
        # Byte-accounting breakdowns for the WAN-economy analyses: per
        # destination host (a light device's ingress budget) and per
        # payload type (block relay vs everything else).  Both sum to
        # bytes_modeled.
        self.bytes_to: dict[str, int] = {}
        self.bytes_by_type: dict[str, int] = {}

    def register(self, name: str, handler: Callable[[Envelope], None]) -> Host:
        if name in self._hosts:
            raise ConfigurationError(f"duplicate host name: {name}")
        host = Host(name=name, handler=handler)
        self._hosts[name] = host
        self._down.discard(name)
        return host

    def unregister(self, name: str) -> None:
        self._hosts.pop(name, None)
        self._down.discard(name)

    def hosts(self) -> list[str]:
        return list(self._hosts)

    def is_registered(self, name: str) -> bool:
        return name in self._hosts

    # -- host liveness (crash/restart lifecycle) -------------------------------

    def set_host_down(self, name: str) -> None:
        """Stop delivering to ``name`` (host crashed but keeps its slot)."""
        if name in self._hosts:
            self._down.add(name)

    def set_host_up(self, name: str) -> None:
        """Resume deliveries to a previously-downed host."""
        self._down.discard(name)

    def is_host_up(self, name: str) -> bool:
        return name in self._hosts and name not in self._down

    # -- sending ---------------------------------------------------------------

    def send(self, source: str, destination: str, payload: Any,
             parent: Any = None) -> SendReceipt:
        """Queue ``payload`` for delivery; returns the delivery verdict.

        Nothing is dropped invisibly: an unknown destination, a sampled
        loss, and an injected fault each return a distinct verdict and
        bump a dedicated counter.  ``queued`` only promises the message
        entered the WAN — the destination can still crash before the
        latency elapses (counted as ``drops_offline`` at delivery time).

        With tracing on, every send opens a ``wan.transit`` span (under
        ``parent`` when given) that ends ``ok`` at handler dispatch or
        ``lost`` on whichever drop consumed it — so chaos-injected drops
        and delays are visible inside the span tree.
        """
        span = self.tracer.span("wan.transit", parent=parent,
                                source=source, destination=destination,
                                payload=type(payload).__name__)
        envelope = Envelope(source=source, destination=destination,
                            payload=payload, sent_at=self.sim.now,
                            trace=span if span else None)
        self.messages_sent += 1
        size = estimate_wire_size(payload)
        self.bytes_modeled += size
        self.bytes_to[destination] = self.bytes_to.get(destination, 0) + size
        type_name = type(payload).__name__
        self.bytes_by_type[type_name] = (
            self.bytes_by_type.get(type_name, 0) + size)
        if destination not in self._hosts:
            self.messages_lost += 1
            self.drops_unknown_destination += 1
            span.end("lost", reason="no_route")
            return SendReceipt(envelope, "no_route",
                               reason=f"unknown destination: {destination}")
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            self.messages_lost += 1
            self.drops_sampled_loss += 1
            span.end("lost", reason="sampled loss")
            return SendReceipt(envelope, "lost", reason="sampled loss")

        decision = None
        if self.interceptor is not None:
            decision = self.interceptor(envelope)
        if decision is None:
            decision = _NO_FAULT
        if decision.drop:
            self.messages_lost += 1
            self.drops_injected += 1
            span.end("lost", reason=decision.reason or "injected drop")
            return SendReceipt(envelope, "blocked",
                               reason=decision.reason or "injected drop")
        if decision.replace_payload is not None:
            envelope = replace(envelope, payload=decision.replace_payload)
            self.messages_corrupted += 1
            span.annotate(corrupted=True)
        if decision.extra_delay > 0.0:
            span.annotate(extra_delay=decision.extra_delay)

        copies = 1 + max(0, decision.duplicates)
        self.messages_duplicated += copies - 1
        for _ in range(copies):
            delay = (self.latency.sample(source, destination, self.rng)
                     + decision.extra_delay)
            self.sim.call_in(delay, lambda env=envelope: self._deliver(env))
        return SendReceipt(envelope, "queued", reason=decision.reason)

    def _deliver(self, envelope: Envelope) -> None:
        host = self._hosts.get(envelope.destination)
        if host is None:
            self.messages_lost += 1
            self.drops_unknown_destination += 1
            if envelope.trace is not None:
                envelope.trace.end("lost", reason="unregistered")
            return
        if envelope.destination in self._down:
            self.messages_lost += 1
            self.drops_offline += 1
            if envelope.trace is not None:
                envelope.trace.end("lost", reason="host offline")
            return
        self.messages_delivered += 1
        # Duplicated copies share one span; the first outcome wins
        # (Span.end is idempotent), matching the receiver's dedup view.
        if envelope.trace is not None:
            envelope.trace.end("ok")
        host.handler(envelope)

    def broadcast(self, source: str, payload: Any,
                  exclude: tuple[str, ...] = (),
                  parent: Any = None) -> int:
        """Send ``payload`` to every other host; returns the send count."""
        count = 0
        for name in self._hosts:
            if name == source or name in exclude:
                continue
            self.send(source, name, payload, parent=parent)
            count += 1
        return count


_NO_FAULT = FaultDecision()
