"""The simulated wide-area network between gateways and servers.

Hosts register by name; :meth:`WANetwork.send` delivers a payload to the
destination's handler after a sampled one-way latency.  The latency model
defaults to PlanetLab-like per-pair lognormal distributions — the
substrate standing in for the paper's 5-node PlanetLab deployment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import ConfigurationError
from repro.p2p.message import Envelope
from repro.sim.core import Simulator
from repro.sim.latency import LatencyModel, LogNormalLatency

__all__ = ["WANetwork", "Host"]


@dataclass
class Host:
    """A network endpoint: a name plus a message handler."""

    name: str
    handler: Callable[[Envelope], None]


class WANetwork:
    """Latency-modeled message passing between named hosts."""

    def __init__(self, sim: Simulator, rng: random.Random,
                 latency: Optional[LatencyModel] = None,
                 loss_rate: float = 0.0) -> None:
        if not 0 <= loss_rate < 1:
            raise ConfigurationError(f"loss rate out of range: {loss_rate}")
        self.sim = sim
        self.rng = rng
        self.latency = latency or LogNormalLatency()
        self.loss_rate = loss_rate
        self._hosts: dict[str, Host] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0
        self.bytes_modeled = 0

    def register(self, name: str, handler: Callable[[Envelope], None]) -> Host:
        if name in self._hosts:
            raise ConfigurationError(f"duplicate host name: {name}")
        host = Host(name=name, handler=handler)
        self._hosts[name] = host
        return host

    def unregister(self, name: str) -> None:
        self._hosts.pop(name, None)

    def hosts(self) -> list[str]:
        return list(self._hosts)

    def is_registered(self, name: str) -> bool:
        return name in self._hosts

    def send(self, source: str, destination: str, payload: Any) -> Envelope:
        """Queue ``payload`` for delivery; returns the envelope.

        Unknown destinations and sampled losses are silently dropped, as a
        real datagram would be; reliability is the sender's problem (the
        BcWAN exchange runs over TCP, which the protocol layer models by
        not injecting loss on those flows).
        """
        envelope = Envelope(source=source, destination=destination,
                            payload=payload, sent_at=self.sim.now)
        self.messages_sent += 1
        if self.loss_rate > 0 and self.rng.random() < self.loss_rate:
            self.messages_lost += 1
            return envelope
        delay = self.latency.sample(source, destination, self.rng)
        self.sim.call_in(delay, lambda: self._deliver(envelope))
        return envelope

    def _deliver(self, envelope: Envelope) -> None:
        host = self._hosts.get(envelope.destination)
        if host is None:
            self.messages_lost += 1
            return
        self.messages_delivered += 1
        host.handler(envelope)

    def broadcast(self, source: str, payload: Any,
                  exclude: tuple[str, ...] = ()) -> int:
        """Send ``payload`` to every other host; returns the send count."""
        count = 0
        for name in self._hosts:
            if name == source or name in exclude:
                continue
            self.send(source, name, payload)
            count += 1
        return count
