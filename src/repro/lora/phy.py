"""LoRa physical layer: modulation parameters and time-on-air.

Implements the Semtech SX127x time-on-air formula (AN1200.13) plus the
nominal-bitrate approximation the paper's capacity figure appears to use
(30 sensors/gateway at SF7, 1 % duty cycle, "183 messages per sensor per
hour" for a 132-byte frame — see ``benchmarks/test_setup_capacity.py`` for
the comparison).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

try:
    import numpy as _np
except ImportError:  # numpy is an accelerator, not a hard dependency
    _np = None

from repro.errors import ConfigurationError

__all__ = [
    "SpreadingFactor",
    "LoRaModulation",
    "SENSITIVITY_DBM",
    "SNR_THRESHOLD_DB",
    "sensitivity_vector",
    "batch_time_on_air",
]

# Receiver sensitivity (dBm) per spreading factor at 125 kHz (SX1276 data
# sheet, typical values).
SENSITIVITY_DBM = {7: -123.0, 8: -126.0, 9: -129.0, 10: -132.0,
                   11: -134.5, 12: -137.0}

# Minimum SNR (dB) for demodulation per spreading factor.
SNR_THRESHOLD_DB = {7: -7.5, 8: -10.0, 9: -12.5, 10: -15.0,
                    11: -17.5, 12: -20.0}


class SpreadingFactor(int):
    """A LoRa spreading factor in [7, 12]."""

    def __new__(cls, value: int) -> "SpreadingFactor":
        if not 7 <= value <= 12:
            raise ConfigurationError(f"spreading factor out of range: {value}")
        return super().__new__(cls, value)


@dataclass(frozen=True)
class LoRaModulation:
    """A LoRa modulation configuration.

    :param spreading_factor: 7-12 (the paper uses SF7).
    :param bandwidth_hz: 125000, 250000 or 500000.
    :param coding_rate: 1-4, meaning 4/(4+CR).
    :param preamble_symbols: programmed preamble length (8 default).
    :param explicit_header: LoRa PHY header present (True for uplinks).
    :param crc: payload CRC present.
    :param low_data_rate_optimize: forced on for SF11/12 at 125 kHz.
    """

    spreading_factor: int = 7
    bandwidth_hz: int = 125_000
    coding_rate: int = 1
    preamble_symbols: int = 8
    explicit_header: bool = True
    crc: bool = True

    def __post_init__(self) -> None:
        SpreadingFactor(self.spreading_factor)
        if self.bandwidth_hz not in (125_000, 250_000, 500_000):
            raise ConfigurationError(f"unsupported bandwidth: {self.bandwidth_hz}")
        if not 1 <= self.coding_rate <= 4:
            raise ConfigurationError(f"coding rate out of range: {self.coding_rate}")
        if self.preamble_symbols < 6:
            raise ConfigurationError(
                f"preamble too short: {self.preamble_symbols} symbols"
            )

    @property
    def symbol_time(self) -> float:
        """Seconds per symbol: ``2^SF / BW``."""
        return (1 << self.spreading_factor) / self.bandwidth_hz

    @property
    def low_data_rate_optimize(self) -> bool:
        """Mandatory when the symbol time exceeds 16 ms (SF11/12 @125 kHz)."""
        return self.symbol_time > 0.016

    @property
    def preamble_time(self) -> float:
        """Preamble duration: ``(n_preamble + 4.25) * T_sym``."""
        return (self.preamble_symbols + 4.25) * self.symbol_time

    def payload_symbols(self, payload_bytes: int) -> int:
        """Symbol count of the payload part (AN1200.13 formula)."""
        if payload_bytes < 0:
            raise ConfigurationError(f"negative payload: {payload_bytes}")
        sf = self.spreading_factor
        de = 2 if self.low_data_rate_optimize else 0
        ih = 0 if self.explicit_header else 1
        crc = 1 if self.crc else 0
        numerator = 8 * payload_bytes - 4 * sf + 28 + 16 * crc - 20 * ih
        denominator = 4 * (sf - de)
        extra = max(math.ceil(numerator / denominator), 0) * (self.coding_rate + 4)
        return 8 + extra

    def time_on_air(self, payload_bytes: int) -> float:
        """Total frame airtime in seconds for ``payload_bytes`` of payload."""
        return (self.preamble_time
                + self.payload_symbols(payload_bytes) * self.symbol_time)

    @property
    def nominal_bitrate(self) -> float:
        """Nominal LoRa bit rate: ``SF * (BW / 2^SF) * CR_ratio`` (bit/s).

        SF7/125 kHz/CR4/5 gives the familiar 5469 bit/s figure.
        """
        sf = self.spreading_factor
        cr_ratio = 4 / (4 + self.coding_rate)
        return sf * (self.bandwidth_hz / (1 << sf)) * cr_ratio

    def nominal_time_on_air(self, payload_bytes: int) -> float:
        """Airtime under the nominal-bitrate approximation (paper-style)."""
        return payload_bytes * 8 / self.nominal_bitrate


def _require_numpy():
    if _np is None:
        raise ConfigurationError("batch PHY helpers require numpy")
    return _np


def sensitivity_vector() -> "_np.ndarray":
    """:data:`SENSITIVITY_DBM` as a float64 array indexed by ``sf - 7``."""
    np = _require_numpy()
    return np.array([SENSITIVITY_DBM[sf] for sf in range(7, 13)],
                    dtype=np.float64)


def batch_time_on_air(spreading_factors, payload_bytes,
                      bandwidth_hz: int = 125_000, coding_rate: int = 1,
                      preamble_symbols: int = 8, explicit_header: bool = True,
                      crc: bool = True) -> "_np.ndarray":
    """Airtimes for parallel arrays of spreading factors and payload sizes.

    Element ``i`` is **bit-identical** to
    ``LoRaModulation(spreading_factors[i], ...).time_on_air(payload_bytes[i])``:
    the AN1200.13 formula is pure float64 arithmetic (divide, ceil,
    multiply-add), which numpy evaluates exactly as the scalar path does.
    The sweep harness and fleet benchmark use this to stamp airtime
    overlap matrices without a per-frame Python round trip.
    """
    np = _require_numpy()
    sf = np.asarray(spreading_factors, dtype=np.float64)
    if sf.size and (sf.min() < 7 or sf.max() > 12):
        raise ConfigurationError("spreading factor out of range in batch")
    payload = np.asarray(payload_bytes, dtype=np.float64)
    if payload.size and payload.min() < 0:
        raise ConfigurationError("negative payload in batch")
    symbol_time = np.exp2(sf) / bandwidth_hz
    preamble_time = (preamble_symbols + 4.25) * symbol_time
    de = np.where(symbol_time > 0.016, 2.0, 0.0)
    ih = 0.0 if explicit_header else 1.0
    crc_bit = 1.0 if crc else 0.0
    numerator = 8 * payload - 4 * sf + 28 + 16 * crc_bit - 20 * ih
    denominator = 4 * (sf - de)
    extra = np.maximum(np.ceil(numerator / denominator), 0.0) * (coding_rate + 4)
    return preamble_time + (8 + extra) * symbol_time
