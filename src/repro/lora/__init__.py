"""LoRa PHY/MAC simulation.

* :mod:`repro.lora.phy` — modulation, time-on-air (Semtech AN1200.13),
  per-SF sensitivities;
* :mod:`repro.lora.dutycycle` — the 1 % regulatory duty cycle;
* :mod:`repro.lora.channel` — shared medium, path loss, collisions;
* :mod:`repro.lora.frames` — the BcWAN frame formats of Fig. 3;
* :mod:`repro.lora.device` — the per-device radio facade.
"""

from repro.lora.adr import (
    assign_modulations,
    link_margin_db,
    select_spreading_factor,
)
from repro.lora.channel import (
    Listener,
    PathLossModel,
    Position,
    RadioChannel,
    Transmission,
)
from repro.lora.device import (
    EU868_DOWNLINK_CHANNEL,
    EU868_UPLINK_CHANNELS,
    LoRaRadio,
)
from repro.lora.dutycycle import DutyCycleLimiter, max_messages_per_hour
from repro.lora.frames import (
    HEADER_BYTES,
    DataFrame,
    KeyRequestFrame,
    KeyResponseFrame,
    LoRaFrame,
)
from repro.lora.phy import (
    SENSITIVITY_DBM,
    SNR_THRESHOLD_DB,
    LoRaModulation,
    SpreadingFactor,
)

__all__ = [
    "DataFrame",
    "DutyCycleLimiter",
    "EU868_DOWNLINK_CHANNEL",
    "EU868_UPLINK_CHANNELS",
    "HEADER_BYTES",
    "KeyRequestFrame",
    "KeyResponseFrame",
    "Listener",
    "LoRaFrame",
    "LoRaModulation",
    "LoRaRadio",
    "PathLossModel",
    "Position",
    "RadioChannel",
    "SENSITIVITY_DBM",
    "SNR_THRESHOLD_DB",
    "SpreadingFactor",
    "Transmission",
    "assign_modulations",
    "link_margin_db",
    "max_messages_per_hour",
    "select_spreading_factor",
]
