"""BcWAN LoRa frame formats.

The Fig. 3 exchange uses three radio frames:

1. :class:`KeyRequestFrame` — the node asks the gateway for an ephemeral
   public key (step "first request", not illustrated in the figure);
2. :class:`KeyResponseFrame` — the gateway downlinks ``ePk`` (step 2);
3. :class:`DataFrame` — the node uplinks the double-encrypted message
   ``Em``, the signature ``Sig`` and the recipient address ``@R``
   (step 5).

Wire sizes follow the paper's accounting (section 5.2): the data frame is
"128 bytes of payload and 4 bytes of length header" — 64 bytes for the
RSA-wrapped ciphertext and 64 for the RSA-512 signature; the recipient
identifier rides in the header.  Frames also carry the full object-level
fields the protocol needs, independent of the modeled wire size.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LoRaFrame",
    "KeyRequestFrame",
    "KeyResponseFrame",
    "DataFrame",
    "HEADER_BYTES",
]

HEADER_BYTES = 4


@dataclass(frozen=True)
class LoRaFrame:
    """Base frame: every frame names its sender device."""

    sender: str

    def wire_size(self) -> int:
        """Modeled on-air payload size in bytes (header included)."""
        raise NotImplementedError


@dataclass(frozen=True)
class KeyRequestFrame(LoRaFrame):
    """Node → gateway: request an ephemeral key pair for one message."""

    nonce: int = 0

    def wire_size(self) -> int:
        return HEADER_BYTES + 8  # device id + nonce


@dataclass(frozen=True)
class KeyResponseFrame(LoRaFrame):
    """Gateway → node: the ephemeral RSA-512 public key (``ePk``)."""

    ephemeral_pubkey: bytes = b""
    nonce: int = 0
    target: str = ""

    def wire_size(self) -> int:
        return HEADER_BYTES + len(self.ephemeral_pubkey)


@dataclass(frozen=True)
class DataFrame(LoRaFrame):
    """Node → gateway: ``Em`` (64 B), ``Sig`` (64 B) and ``@R``."""

    encrypted_message: bytes = b""
    signature: bytes = b""
    recipient_address: str = ""
    nonce: int = 0

    def wire_size(self) -> int:
        # Paper accounting: 4-byte length header + the RSA-sized payload.
        return HEADER_BYTES + len(self.encrypted_message) + len(self.signature)
