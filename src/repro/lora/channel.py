"""The shared radio medium: path loss, sensitivity, and collisions.

A LoRaSim-style model: a transmission reaches a listener if its received
power clears the per-SF sensitivity, and survives interference if every
overlapping same-frequency, same-SF transmission is at least
``capture_threshold_db`` weaker (the LoRa capture effect); otherwise the
frame is lost at that listener.

Two delivery kernels implement the same model:

``kernel="scalar"``
    The seed path: one listener at a time, one interferer at a time.
    This is the differential oracle.

``kernel="vector"``
    Batch evaluation across all listeners with numpy — cached path-loss
    rows, one RSSI vector per completion, a capture-suppression row
    accumulated across interferers.  Equivalence contract: every
    per-listener verdict,
    every delivered RSSI, and every counter is **bit-identical** to the
    scalar kernel.  That holds because the transcendentals
    (``math.hypot``/``math.log10``) stay scalar and cached, and numpy is
    used only for IEEE-754-exact float64 subtract/compare.  Lognormal
    shadowing (``shadowing_sigma_db > 0``) draws from the channel RNG
    per listener *conditionally*, which no batch formulation can replay
    exactly — the vector kernel transparently falls back to the scalar
    path in that case (the paper configuration uses sigma = 0).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

try:
    import numpy as _np
except ImportError:  # numpy is an accelerator, not a hard dependency
    _np = None

from repro.errors import ConfigurationError
from repro.lora.frames import LoRaFrame
from repro.lora.phy import LoRaModulation, SENSITIVITY_DBM
from repro.sim.core import Simulator

__all__ = ["Position", "PathLossModel", "RadioChannel", "Transmission", "Listener"]


@dataclass(frozen=True)
class Position:
    """A planar position in meters."""

    x: float = 0.0
    y: float = 0.0

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with optional lognormal shadowing.

    Defaults follow the LoRa channel-attenuation measurements of
    Petäjäjärvi et al. (the paper's reference [6]): ~129 dB at 1 km with a
    path-loss exponent of 2.32, giving SF7 a realistic ~2 km range at
    14 dBm.
    """

    reference_distance: float = 1000.0
    reference_loss_db: float = 128.95
    exponent: float = 2.32
    shadowing_sigma_db: float = 0.0

    def loss_db(self, distance: float, rng: Optional[random.Random] = None) -> float:
        distance = max(distance, 1.0)
        loss = self.reference_loss_db + 10 * self.exponent * math.log10(
            distance / self.reference_distance
        )
        if self.shadowing_sigma_db > 0 and rng is not None:
            loss += rng.gauss(0.0, self.shadowing_sigma_db)
        return loss


@dataclass
class Transmission:
    """One frame in flight on the medium."""

    sender: str
    frame: LoRaFrame
    modulation: LoRaModulation
    frequency_hz: int
    power_dbm: float
    position: Position
    start: float
    end: float

    def overlaps(self, other: "Transmission") -> bool:
        return self.start < other.end and other.start < self.end

    def interferes_with(self, other: "Transmission") -> bool:
        """Same channel and spreading factor (orthogonal SFs ignored)."""
        return (self.frequency_hz == other.frequency_hz
                and self.modulation.spreading_factor
                == other.modulation.spreading_factor)


@dataclass
class Listener:
    """A registered receiver on the medium."""

    name: str
    position: Position
    deliver: Callable[[LoRaFrame, float], None]  # (frame, rssi_dbm)
    half_duplex_owner: Optional[str] = None  # suppress hearing own radio


class RadioChannel:
    """The shared medium all radios of one deployment transmit on.

    Set ``verdict_log`` to a list to record, per completion, one
    ``(sender, listener, verdict, rssi_dbm)`` tuple for every listener the
    delivery loop evaluated (half-duplex-suppressed listeners are skipped,
    matching the scalar loop) — the differential suite compares these
    across kernels.  Set ``obs`` to a
    :class:`repro.obs.profile.HotPathProfiler` to account wall-clock time
    under the ``lora.channel_complete`` site.
    """

    def __init__(self, sim: Simulator, rng: random.Random,
                 path_loss: Optional[PathLossModel] = None,
                 capture_threshold_db: float = 6.0,
                 kernel: str = "scalar") -> None:
        if capture_threshold_db < 0:
            raise ConfigurationError(
                f"capture threshold must be non-negative: {capture_threshold_db}"
            )
        if kernel not in ("scalar", "vector"):
            raise ConfigurationError(
                f"unknown channel kernel: {kernel!r} (scalar|vector)"
            )
        if kernel == "vector" and _np is None:
            raise ConfigurationError("vector channel kernel requires numpy")
        self.sim = sim
        self.rng = rng
        self.path_loss = path_loss or PathLossModel()
        self.capture_threshold_db = capture_threshold_db
        self.kernel = kernel
        self._listeners: dict[str, Listener] = {}
        self._active: list[Transmission] = []
        self._history: list[Transmission] = []
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost_sensitivity = 0
        self.frames_lost_collision = 0
        self.verdict_log: Optional[list] = None
        self.obs = None  # optional HotPathProfiler
        # Vector-kernel state: listener arrays + per-position loss rows,
        # rebuilt whenever the listener set changes.
        self._snapshot_version = -1
        self._listener_version = 0
        self._names: list[str] = []
        self._positions: list[Position] = []
        self._delivers: list[Callable[[LoRaFrame, float], None]] = []
        self._owner_indices: dict[str, list[int]] = {}
        self._loss_rows: dict[Position, "_np.ndarray"] = {}
        self._eligible_rows: dict[str, "_np.ndarray"] = {}

    def add_listener(self, listener: Listener) -> None:
        if listener.name in self._listeners:
            raise ConfigurationError(f"duplicate listener: {listener.name}")
        self._listeners[listener.name] = listener
        self._listener_version += 1

    def remove_listener(self, name: str) -> None:
        self._listeners.pop(name, None)
        self._listener_version += 1

    def transmit(self, sender: str, position: Position, frame: LoRaFrame,
                 modulation: LoRaModulation, frequency_hz: int = 868_100_000,
                 power_dbm: float = 14.0):
        """Put a frame on the air; returns the transmission record.

        Delivery decisions are evaluated when the frame's airtime ends.
        """
        airtime = modulation.time_on_air(frame.wire_size())
        transmission = Transmission(
            sender=sender, frame=frame, modulation=modulation,
            frequency_hz=frequency_hz, power_dbm=power_dbm,
            position=position, start=self.sim.now, end=self.sim.now + airtime,
        )
        self._active.append(transmission)
        self.frames_sent += 1
        self.sim.call_at(transmission.end, lambda: self._complete(transmission))
        return transmission

    def _complete(self, transmission: Transmission) -> None:
        obs = self.obs
        t0 = obs.clock() if obs is not None else 0
        self._active.remove(transmission)
        self._history.append(transmission)
        # Keep the history bounded to overlapping-relevant entries.
        horizon = transmission.start
        self._history = [t for t in self._history if t.end > horizon - 10.0]

        interferers = [
            other for other in (self._active + self._history)
            if other is not transmission
            and transmission.overlaps(other)
            and transmission.interferes_with(other)
        ]

        if self.kernel == "vector" and self.path_loss.shadowing_sigma_db == 0:
            self._deliver_vector(transmission, interferers)
        else:
            self._deliver_scalar(transmission, interferers)
        if obs is not None:
            obs.observe("lora.channel_complete", obs.clock() - t0)

    def _deliver_scalar(self, transmission: Transmission,
                        interferers: list[Transmission]) -> None:
        """The seed delivery loop — the oracle the vector kernel is pinned to."""
        log = self.verdict_log
        for listener in list(self._listeners.values()):
            if listener.half_duplex_owner == transmission.sender:
                continue
            rssi = self._received_power(transmission, listener.position)
            sf = transmission.modulation.spreading_factor
            if rssi < SENSITIVITY_DBM[sf]:
                self.frames_lost_sensitivity += 1
                if log is not None:
                    log.append((transmission.sender, listener.name,
                                "sensitivity", rssi))
                continue
            if self._suppressed_by_collision(transmission, interferers,
                                             listener.position, rssi):
                self.frames_lost_collision += 1
                if log is not None:
                    log.append((transmission.sender, listener.name,
                                "collision", rssi))
                continue
            self.frames_delivered += 1
            if log is not None:
                log.append((transmission.sender, listener.name,
                            "delivered", rssi))
            listener.deliver(transmission.frame, rssi)

    # -- vector kernel ---------------------------------------------------------

    def _rebuild_snapshot(self) -> None:
        self._names = [ls.name for ls in self._listeners.values()]
        self._positions = [ls.position for ls in self._listeners.values()]
        self._delivers = [ls.deliver for ls in self._listeners.values()]
        owners: dict[str, list[int]] = {}
        for i, ls in enumerate(self._listeners.values()):
            if ls.half_duplex_owner is not None:
                owners.setdefault(ls.half_duplex_owner, []).append(i)
        self._owner_indices = owners
        self._loss_rows.clear()
        self._eligible_rows.clear()
        self._snapshot_version = self._listener_version

    def _loss_row(self, position: Position) -> "_np.ndarray":
        """Path loss from ``position`` to every listener, cached per position.

        The transcendentals stay in ``math`` (not numpy SIMD paths, which
        may differ by an ULP from libm), so each element is the exact float
        the scalar kernel computes.  Shadowing is sigma = 0 on this path,
        so ``loss_db`` touches no RNG.
        """
        row = self._loss_rows.get(position)
        if row is None:
            loss = self.path_loss.loss_db
            row = _np.fromiter(
                (loss(position.distance_to(at)) for at in self._positions),
                dtype=_np.float64, count=len(self._positions),
            )
            self._loss_rows[position] = row
        return row

    def _deliver_vector(self, transmission: Transmission,
                        interferers: list[Transmission]) -> None:
        if self._snapshot_version != self._listener_version:
            self._rebuild_snapshot()
        count = len(self._names)
        if count == 0:
            return
        sender = transmission.sender
        rssi = transmission.power_dbm - self._loss_row(transmission.position)
        audible = rssi >= SENSITIVITY_DBM[transmission.modulation.spreading_factor]
        eligible = self._eligible_rows.get(sender)
        if eligible is None:
            eligible = _np.ones(count, dtype=bool)
            excluded = self._owner_indices.get(sender)
            if excluded is not None:
                eligible[excluded] = False
            self._eligible_rows[sender] = eligible
        audible_e = eligible & audible
        n_eligible = count - len(self._owner_indices.get(sender, ()))
        n_audible = int(_np.count_nonzero(audible_e))
        if interferers:
            # A listener is suppressed if any interferer lands within the
            # capture threshold of the wanted signal; the suppression row
            # accumulates one interferer at a time (no K x L matrix).
            threshold = self.capture_threshold_db
            suppressed = None
            for other in interferers:
                close = rssi - (other.power_dbm
                                - self._loss_row(other.position)) < threshold
                suppressed = close if suppressed is None else suppressed | close
            delivered = audible_e & ~suppressed
            n_delivered = int(_np.count_nonzero(delivered))
        else:
            suppressed = None
            delivered = audible_e
            n_delivered = n_audible
        # eligible splits into (inaudible | suppressed | delivered), so the
        # loss counters follow from two popcounts.
        self.frames_lost_sensitivity += n_eligible - n_audible
        self.frames_lost_collision += n_audible - n_delivered
        self.frames_delivered += n_delivered
        rssi_floats = None
        if self.verdict_log is not None:
            rssi_floats = rssi.tolist()
            sens = (eligible & ~audible).tolist()
            coll = ((audible_e & suppressed).tolist() if suppressed is not None
                    else [False] * count)
            for i, hit in enumerate(delivered.tolist()):
                if hit:
                    verdict = "delivered"
                elif sens[i]:
                    verdict = "sensitivity"
                elif coll[i]:
                    verdict = "collision"
                else:
                    continue  # half-duplex: the scalar loop logs nothing
                self.verdict_log.append((sender, self._names[i],
                                         verdict, rssi_floats[i]))
        if n_delivered:
            if rssi_floats is None:
                rssi_floats = rssi.tolist()
            frame = transmission.frame
            delivers = self._delivers
            for i in _np.nonzero(delivered)[0].tolist():
                delivers[i](frame, rssi_floats[i])

    def _received_power(self, transmission: Transmission,
                        at: Position) -> float:
        distance = transmission.position.distance_to(at)
        return transmission.power_dbm - self.path_loss.loss_db(distance, self.rng)

    def _suppressed_by_collision(self, transmission: Transmission,
                                 interferers: list[Transmission],
                                 at: Position, rssi: float) -> bool:
        """Capture-effect collision resolution at one listener."""
        for other in interferers:
            other_rssi = self._received_power(other, at)
            if rssi - other_rssi < self.capture_threshold_db:
                return True
        return False
