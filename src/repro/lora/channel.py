"""The shared radio medium: path loss, sensitivity, and collisions.

A LoRaSim-style model: a transmission reaches a listener if its received
power clears the per-SF sensitivity, and survives interference if every
overlapping same-frequency, same-SF transmission is at least
``capture_threshold_db`` weaker (the LoRa capture effect); otherwise the
frame is lost at that listener.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.lora.frames import LoRaFrame
from repro.lora.phy import LoRaModulation, SENSITIVITY_DBM
from repro.sim.core import Simulator

__all__ = ["Position", "PathLossModel", "RadioChannel", "Transmission", "Listener"]


@dataclass(frozen=True)
class Position:
    """A planar position in meters."""

    x: float = 0.0
    y: float = 0.0

    def distance_to(self, other: "Position") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class PathLossModel:
    """Log-distance path loss with optional lognormal shadowing.

    Defaults follow the LoRa channel-attenuation measurements of
    Petäjäjärvi et al. (the paper's reference [6]): ~129 dB at 1 km with a
    path-loss exponent of 2.32, giving SF7 a realistic ~2 km range at
    14 dBm.
    """

    reference_distance: float = 1000.0
    reference_loss_db: float = 128.95
    exponent: float = 2.32
    shadowing_sigma_db: float = 0.0

    def loss_db(self, distance: float, rng: Optional[random.Random] = None) -> float:
        distance = max(distance, 1.0)
        loss = self.reference_loss_db + 10 * self.exponent * math.log10(
            distance / self.reference_distance
        )
        if self.shadowing_sigma_db > 0 and rng is not None:
            loss += rng.gauss(0.0, self.shadowing_sigma_db)
        return loss


@dataclass
class Transmission:
    """One frame in flight on the medium."""

    sender: str
    frame: LoRaFrame
    modulation: LoRaModulation
    frequency_hz: int
    power_dbm: float
    position: Position
    start: float
    end: float

    def overlaps(self, other: "Transmission") -> bool:
        return self.start < other.end and other.start < self.end

    def interferes_with(self, other: "Transmission") -> bool:
        """Same channel and spreading factor (orthogonal SFs ignored)."""
        return (self.frequency_hz == other.frequency_hz
                and self.modulation.spreading_factor
                == other.modulation.spreading_factor)


@dataclass
class Listener:
    """A registered receiver on the medium."""

    name: str
    position: Position
    deliver: Callable[[LoRaFrame, float], None]  # (frame, rssi_dbm)
    half_duplex_owner: Optional[str] = None  # suppress hearing own radio


class RadioChannel:
    """The shared medium all radios of one deployment transmit on."""

    def __init__(self, sim: Simulator, rng: random.Random,
                 path_loss: Optional[PathLossModel] = None,
                 capture_threshold_db: float = 6.0) -> None:
        if capture_threshold_db < 0:
            raise ConfigurationError(
                f"capture threshold must be non-negative: {capture_threshold_db}"
            )
        self.sim = sim
        self.rng = rng
        self.path_loss = path_loss or PathLossModel()
        self.capture_threshold_db = capture_threshold_db
        self._listeners: dict[str, Listener] = {}
        self._active: list[Transmission] = []
        self._history: list[Transmission] = []
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost_sensitivity = 0
        self.frames_lost_collision = 0

    def add_listener(self, listener: Listener) -> None:
        if listener.name in self._listeners:
            raise ConfigurationError(f"duplicate listener: {listener.name}")
        self._listeners[listener.name] = listener

    def remove_listener(self, name: str) -> None:
        self._listeners.pop(name, None)

    def transmit(self, sender: str, position: Position, frame: LoRaFrame,
                 modulation: LoRaModulation, frequency_hz: int = 868_100_000,
                 power_dbm: float = 14.0):
        """Put a frame on the air; returns the transmission record.

        Delivery decisions are evaluated when the frame's airtime ends.
        """
        airtime = modulation.time_on_air(frame.wire_size())
        transmission = Transmission(
            sender=sender, frame=frame, modulation=modulation,
            frequency_hz=frequency_hz, power_dbm=power_dbm,
            position=position, start=self.sim.now, end=self.sim.now + airtime,
        )
        self._active.append(transmission)
        self.frames_sent += 1
        self.sim.call_at(transmission.end, lambda: self._complete(transmission))
        return transmission

    def _complete(self, transmission: Transmission) -> None:
        self._active.remove(transmission)
        self._history.append(transmission)
        # Keep the history bounded to overlapping-relevant entries.
        horizon = transmission.start
        self._history = [t for t in self._history if t.end > horizon - 10.0]

        interferers = [
            other for other in (self._active + self._history)
            if other is not transmission
            and transmission.overlaps(other)
            and transmission.interferes_with(other)
        ]

        for listener in list(self._listeners.values()):
            if listener.half_duplex_owner == transmission.sender:
                continue
            rssi = self._received_power(transmission, listener.position)
            sf = transmission.modulation.spreading_factor
            if rssi < SENSITIVITY_DBM[sf]:
                self.frames_lost_sensitivity += 1
                continue
            if self._suppressed_by_collision(transmission, interferers,
                                             listener.position, rssi):
                self.frames_lost_collision += 1
                continue
            self.frames_delivered += 1
            listener.deliver(transmission.frame, rssi)

    def _received_power(self, transmission: Transmission,
                        at: Position) -> float:
        distance = transmission.position.distance_to(at)
        return transmission.power_dbm - self.path_loss.loss_db(distance, self.rng)

    def _suppressed_by_collision(self, transmission: Transmission,
                                 interferers: list[Transmission],
                                 at: Position, rssi: float) -> bool:
        """Capture-effect collision resolution at one listener."""
        for other in interferers:
            other_rssi = self._received_power(other, at)
            if rssi - other_rssi < self.capture_threshold_db:
                return True
        return False
