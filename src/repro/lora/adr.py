"""Adaptive data rate: pick each device's spreading factor by link budget.

The paper's testbed fixes SF7 (all simulated sensors sit close to their
gateway).  Real LoRaWAN networks run ADR: a device uses the *fastest*
spreading factor whose sensitivity still closes the link with margin.
Faster SF = shorter airtime = more duty-cycle headroom and fewer
collisions, so ADR directly improves the fleet arithmetic of §5.2.

The selection here is the static, link-budget form of ADR (the dynamic
in-band negotiation of LoRaWAN 1.x converges to the same assignment for
stationary sensors).
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.lora.channel import PathLossModel, Position
from repro.lora.phy import SENSITIVITY_DBM, LoRaModulation

__all__ = ["select_spreading_factor", "assign_modulations", "link_margin_db"]


def link_margin_db(distance: float, spreading_factor: int,
                   path_loss: PathLossModel,
                   tx_power_dbm: float = 14.0) -> float:
    """Received power above sensitivity at ``distance`` for one SF."""
    rssi = tx_power_dbm - path_loss.loss_db(distance)
    return rssi - SENSITIVITY_DBM[spreading_factor]


def select_spreading_factor(distance: float,
                            path_loss: PathLossModel | None = None,
                            tx_power_dbm: float = 14.0,
                            margin_db: float = 6.0) -> int:
    """The fastest SF that closes the link with ``margin_db`` to spare.

    Raises :class:`ConfigurationError` when even SF12 cannot close the
    link — the device is simply out of coverage.
    """
    if distance < 0:
        raise ConfigurationError(f"negative distance: {distance}")
    if margin_db < 0:
        raise ConfigurationError(f"negative margin: {margin_db}")
    path_loss = path_loss or PathLossModel()
    for spreading_factor in range(7, 13):
        if link_margin_db(distance, spreading_factor, path_loss,
                          tx_power_dbm) >= margin_db:
            return spreading_factor
    raise ConfigurationError(
        f"no spreading factor closes a {distance:.0f} m link with "
        f"{margin_db} dB margin"
    )


def assign_modulations(positions: dict[str, Position],
                       gateway_position: Position,
                       path_loss: PathLossModel | None = None,
                       tx_power_dbm: float = 14.0,
                       margin_db: float = 6.0) -> dict[str, LoRaModulation]:
    """ADR assignment for a whole cell: device name → modulation."""
    path_loss = path_loss or PathLossModel()
    assignments = {}
    for name, position in positions.items():
        distance = position.distance_to(gateway_position)
        spreading_factor = select_spreading_factor(
            distance, path_loss, tx_power_dbm, margin_db,
        )
        assignments[name] = LoRaModulation(spreading_factor=spreading_factor)
    return assignments
