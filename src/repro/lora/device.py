"""Radio endpoints: the device-side API over the shared channel.

:class:`LoRaRadio` wraps the medium with per-device state — position,
modulation, per-channel duty-cycle limiters, and a receive callback list —
and exposes a blocking ``send`` process that picks the uplink channel with
the shortest regulatory wait (EU868 devices hop across sub-band channels,
each with its own duty budget) before keying the transmitter.  Both end
devices (nodes) and gateways hold one; gateways typically configure a
single high-duty downlink channel (869.525 MHz, 10 %).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.errors import ConfigurationError
from repro.lora.channel import Listener, Position, RadioChannel, Transmission
from repro.lora.dutycycle import DutyCycleLimiter
from repro.lora.frames import LoRaFrame
from repro.lora.phy import LoRaModulation

__all__ = ["LoRaRadio", "EU868_UPLINK_CHANNELS", "EU868_DOWNLINK_CHANNEL"]

# The three mandatory EU868 LoRaWAN join channels (1 % duty each).
EU868_UPLINK_CHANNELS = (868_100_000, 868_300_000, 868_500_000)
# The high-power RX2 downlink channel (10 % duty sub-band).
EU868_DOWNLINK_CHANNEL = 869_525_000


class LoRaRadio:
    """One device's attachment to the radio medium."""

    def __init__(self, name: str, channel: RadioChannel,
                 position: Optional[Position] = None,
                 modulation: Optional[LoRaModulation] = None,
                 duty_cycle: float = 0.01,
                 frequencies: Sequence[int] = EU868_UPLINK_CHANNELS,
                 power_dbm: float = 14.0) -> None:
        if not frequencies:
            raise ConfigurationError("radio needs at least one frequency")
        self.name = name
        self.channel = channel
        self.position = position or Position()
        self.modulation = modulation or LoRaModulation()
        self.frequencies = tuple(frequencies)
        self.limiters = {
            frequency: DutyCycleLimiter(duty_cycle=duty_cycle)
            for frequency in self.frequencies
        }
        self.power_dbm = power_dbm
        # One physical transmitter: concurrent protocol processes on the
        # same device serialize their sends.
        self._tx_lock = channel.sim.lock()
        self._receive_handlers: list[Callable[[LoRaFrame, float], None]] = []
        channel.add_listener(Listener(
            name=name,
            position=self.position,
            deliver=self._on_frame,
            half_duplex_owner=name,
        ))

    @property
    def sim(self):
        return self.channel.sim

    @property
    def total_airtime(self) -> float:
        return sum(l.total_airtime for l in self.limiters.values())

    @property
    def transmissions(self) -> int:
        return sum(l.transmissions for l in self.limiters.values())

    def on_receive(self, handler: Callable[[LoRaFrame, float], None]) -> None:
        """Register a callback for every frame this radio demodulates."""
        self._receive_handlers.append(handler)

    def _on_frame(self, frame: LoRaFrame, rssi: float) -> None:
        for handler in self._receive_handlers:
            handler(frame, rssi)

    def time_on_air(self, frame: LoRaFrame) -> float:
        return self.modulation.time_on_air(frame.wire_size())

    def duty_cycle_wait(self) -> float:
        """Seconds until some channel permits the next transmission."""
        now = self.sim.now
        return min(l.wait_time(now) for l in self.limiters.values())

    def _pick_channel(self) -> tuple[int, float]:
        """The frequency with the shortest regulatory wait (stable tie)."""
        now = self.sim.now
        best_frequency = self.frequencies[0]
        best_wait = self.limiters[best_frequency].wait_time(now)
        for frequency in self.frequencies[1:]:
            wait = self.limiters[frequency].wait_time(now)
            if wait < best_wait:
                best_frequency, best_wait = frequency, wait
        return best_frequency, best_wait

    def send(self, frame: LoRaFrame):
        """A simulation process: wait for duty cycle, transmit, wait airtime.

        Yields until the frame's airtime completes; returns the
        :class:`Transmission` record.
        """
        yield self._tx_lock.acquire()
        try:
            frequency, wait = self._pick_channel()
            if wait > 0:
                yield self.sim.timeout(wait)
            start = self.sim.now
            airtime = self.time_on_air(frame)
            self.limiters[frequency].register(start, airtime)
            transmission = self.channel.transmit(
                sender=self.name, position=self.position, frame=frame,
                modulation=self.modulation, frequency_hz=frequency,
                power_dbm=self.power_dbm,
            )
            yield self.sim.timeout(airtime)
        finally:
            self._tx_lock.release()
        return transmission

    def send_process(self, frame: LoRaFrame):
        """Spawn :meth:`send` as a process; returns the process event."""
        return self.sim.process(self.send(frame))
