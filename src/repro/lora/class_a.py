"""LoRaWAN Class-A receive windows.

A Class-A device only listens during two short windows after each of its
own uplinks: RX1 opens ``RX1_DELAY`` (1 s) after the uplink ends, RX2 one
second later on the high-power downlink channel.  Outside the windows the
radio sleeps — which is where the multi-year battery life the paper's
introduction celebrates comes from.

The paper's PoC node (a bench Nucleo) listens continuously; BcWAN's
protocol is nevertheless Class-A-compatible because its only downlink —
the ``ePk`` response — directly answers an uplink.  Setting
``NetworkConfig(class_a_windows=True)`` enforces the discipline: nodes
discard downlinks outside their windows, and gateways schedule the ePk
transmission *into* RX1 (falling back to RX2 when the duty cycle blocks
RX1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["RX1_DELAY", "RX2_DELAY", "ClassAWindows"]

RX1_DELAY = 1.0
RX2_DELAY = 2.0
# How long after the window opens a downlink may still *start* and be
# demodulated (the receiver stays up once it detects a preamble).
_WINDOW_TOLERANCE = 0.30


@dataclass
class ClassAWindows:
    """Tracks one device's receive windows."""

    rx1_delay: float = RX1_DELAY
    rx2_delay: float = RX2_DELAY
    tolerance: float = _WINDOW_TOLERANCE
    _last_uplink_end: Optional[float] = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.rx1_delay <= 0 or self.rx2_delay <= self.rx1_delay:
            raise ConfigurationError(
                f"need 0 < rx1 ({self.rx1_delay}) < rx2 ({self.rx2_delay})"
            )
        if self.tolerance <= 0:
            raise ConfigurationError(
                f"window tolerance must be positive: {self.tolerance}"
            )

    def note_uplink_end(self, time: float) -> None:
        """Arm the windows: the device just finished transmitting."""
        self._last_uplink_end = time

    @property
    def armed(self) -> bool:
        return self._last_uplink_end is not None

    def window_opens(self) -> tuple[float, float]:
        """Absolute RX1/RX2 opening times for the last uplink."""
        if self._last_uplink_end is None:
            raise ConfigurationError("no uplink sent yet; windows unarmed")
        return (self._last_uplink_end + self.rx1_delay,
                self._last_uplink_end + self.rx2_delay)

    def accepts_downlink_start(self, start_time: float) -> bool:
        """Would the sleeping receiver catch a downlink starting then?"""
        if self._last_uplink_end is None:
            return False
        rx1, rx2 = self.window_opens()
        return (rx1 <= start_time <= rx1 + self.tolerance
                or rx2 <= start_time <= rx2 + self.tolerance)

    def next_window_start(self, now: float) -> Optional[float]:
        """The earliest window a gateway can still hit, or None if both
        have passed."""
        if self._last_uplink_end is None:
            return None
        rx1, rx2 = self.window_opens()
        if now <= rx1 + self.tolerance:
            return max(now, rx1)
        if now <= rx2 + self.tolerance:
            return max(now, rx2)
        return None
