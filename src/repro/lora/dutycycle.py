"""Regulatory duty-cycle enforcement.

The EU 868 MHz ISM sub-bands the paper operates in impose a 1 % duty
cycle: after a transmission of airtime ``t``, a device must stay off the
air for ``t * (1/duty - 1)`` seconds.  This caps a sensor's throughput —
the paper's "theoretical maximum of 183 messages per sensor per hour" at
SF7 falls straight out of this arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["DutyCycleLimiter", "max_messages_per_hour"]


def max_messages_per_hour(time_on_air: float, duty_cycle: float = 0.01) -> float:
    """Theoretical message-rate ceiling for a given frame airtime."""
    if time_on_air <= 0:
        raise ConfigurationError(f"time on air must be positive: {time_on_air}")
    if not 0 < duty_cycle <= 1:
        raise ConfigurationError(f"duty cycle out of range: {duty_cycle}")
    return 3600.0 * duty_cycle / time_on_air


@dataclass
class DutyCycleLimiter:
    """Tracks when a radio may next transmit.

    Usage: call :meth:`next_allowed` to learn the earliest permitted start,
    and :meth:`register` after each transmission.
    """

    duty_cycle: float = 0.01
    _not_before: float = field(default=0.0, init=False)
    total_airtime: float = field(default=0.0, init=False)
    transmissions: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0 < self.duty_cycle <= 1:
            raise ConfigurationError(
                f"duty cycle out of range: {self.duty_cycle}"
            )

    def next_allowed(self, now: float) -> float:
        """Earliest time a transmission may start."""
        return max(now, self._not_before)

    def wait_time(self, now: float) -> float:
        """Seconds until transmission is permitted (0 if allowed now)."""
        return max(0.0, self._not_before - now)

    def register(self, start: float, time_on_air: float) -> None:
        """Account a transmission beginning at ``start``.

        The off-period rule is the ETSI per-transmission form:
        ``T_off = T_air / duty - T_air``.
        """
        if time_on_air < 0:
            raise ConfigurationError(f"negative airtime: {time_on_air}")
        if start < self._not_before:
            raise ConfigurationError(
                f"transmission at {start:.3f} violates duty cycle "
                f"(allowed from {self._not_before:.3f})"
            )
        off_period = time_on_air / self.duty_cycle - time_on_air
        self._not_before = start + time_on_air + off_period
        self.total_airtime += time_on_air
        self.transmissions += 1

    def utilization(self, now: float) -> float:
        """Fraction of elapsed time spent on-air (0 when nothing sent)."""
        if now <= 0:
            return 0.0
        return self.total_airtime / now
