"""The sensor-side protocol agent (the *node* of Fig. 3).

One exchange, from the node's perspective:

1. uplink a :class:`KeyRequestFrame`;
2. wait for the gateway's :class:`KeyResponseFrame` carrying ``ePk``
   (retrying after a timeout — LoRa frames do get lost);
3. AES-encrypt the reading with ``K``, wrap with ``ePk`` → ``Em``, and
   RSA-sign ``(Em, ePk)`` with ``Ska`` — charged at the cost model's
   STM32-class timings;
4. uplink the :class:`DataFrame` with ``Em``, ``Sig`` and ``@R``.

Everything after that is between the gateway, the recipient, and the
chain; the node goes back to sleep.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.core.costmodel import CostModel
from repro.core.messages import seal_message, sign_payload
from repro.obs.exchange import ExchangeRecord, ExchangeTracker
from repro.core.provisioning import DeviceCredentials
from repro.crypto import rsa
from repro.lora.class_a import ClassAWindows
from repro.lora.device import LoRaRadio
from repro.lora.frames import DataFrame, KeyRequestFrame, KeyResponseFrame
from repro.sim.core import Simulator

__all__ = ["NodeAgent"]


class NodeAgent:
    """Protocol logic for one end device."""

    def __init__(self, sim: Simulator, credentials: DeviceCredentials,
                 radio: LoRaRadio, cost_model: CostModel,
                 tracker: ExchangeTracker, rng: random.Random,
                 key_response_timeout: float = 12.0,
                 max_attempts: int = 3,
                 class_a: bool = False) -> None:
        self.sim = sim
        self.credentials = credentials
        self.radio = radio
        self.cost_model = cost_model
        self.tracker = tracker
        self.rng = rng
        self.key_response_timeout = key_response_timeout
        self.max_attempts = max_attempts
        # Class-A discipline: the radio sleeps outside the RX1/RX2
        # windows that follow each of our own uplinks.
        self.windows = ClassAWindows() if class_a else None
        self.downlinks_missed_window = 0
        self.exchanges_started = 0
        self._pending_keys: dict[int, object] = {}  # exchange id -> Event
        radio.on_receive(self._on_frame)

    @property
    def device_id(self) -> str:
        return self.credentials.device_id

    def _on_frame(self, frame, rssi: float) -> None:
        if not isinstance(frame, KeyResponseFrame):
            return
        if frame.target != self.device_id:
            return
        if self.windows is not None:
            start = self.sim.now - self.radio.time_on_air(frame)
            if not self.windows.accepts_downlink_start(start):
                # Radio asleep: the downlink fell outside RX1/RX2.
                self.downlinks_missed_window += 1
                return
        event = self._pending_keys.pop(frame.nonce, None)
        if event is not None and not event.triggered:
            event.succeed(frame)

    def start_exchange(self, plaintext: bytes):
        """Spawn the exchange as a process; returns the process event.

        The process result is the :class:`ExchangeRecord` (whose ``status``
        tells whether the node-side protocol completed).
        """
        return self.sim.process(self.exchange(plaintext))

    def exchange(self, plaintext: bytes):
        """Generator implementing one node-side exchange."""
        record = self.tracker.new_exchange(self.device_id, plaintext)
        self.exchanges_started += 1

        response: Optional[KeyResponseFrame] = None
        for _attempt in range(self.max_attempts):
            waiter = self.sim.event()
            self._pending_keys[record.exchange_id] = waiter
            record.t_request = self.sim.now
            request_tx = yield from self.radio.send(
                KeyRequestFrame(sender=self.device_id,
                                nonce=record.exchange_id)
            )
            if self.windows is not None:
                self.windows.note_uplink_end(request_tx.end)
            outcome = yield self.sim.any_of(
                [waiter, self.sim.timeout(self.key_response_timeout)]
            )
            if isinstance(outcome, KeyResponseFrame):
                response = outcome
                break
            self._pending_keys.pop(record.exchange_id, None)
        if response is None:
            self.tracker.fail(record, "no ePk response from gateway")
            return record
        record.t_epk_received = self.sim.now

        try:
            ephemeral_pubkey = rsa.RSAPublicKey.from_bytes(
                response.ephemeral_pubkey
            )
        except rsa.RSAError as exc:
            self.tracker.fail(record, f"malformed ePk: {exc}")
            return record

        # Step 3: K-encrypt then ePk-wrap (STM32-class cost).
        yield self.sim.timeout(self.cost_model.sample(
            self.cost_model.node_aes_encrypt
            + self.cost_model.node_rsa_encrypt, self.rng,
        ))
        encrypted_message = seal_message(
            plaintext, self.credentials.symmetric_key, ephemeral_pubkey,
            rng=self.rng,
        )
        # Step 4: sign (Em, ePk) with the provisioned secret key.
        yield self.sim.timeout(self.cost_model.sample(
            self.cost_model.node_rsa_sign, self.rng,
        ))
        signature = sign_payload(
            encrypted_message, response.ephemeral_pubkey,
            self.credentials.signing_key,
        )

        # Step 5: uplink (Em, Sig, @R).
        transmission = yield from self.radio.send(DataFrame(
            sender=self.device_id,
            encrypted_message=encrypted_message,
            signature=signature,
            recipient_address=self.credentials.recipient_address,
            nonce=record.exchange_id,
        ))
        record.t_data_sent = transmission.end
        if self.windows is not None:
            self.windows.note_uplink_end(transmission.end)
        return record
