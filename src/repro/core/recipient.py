"""The recipient-side protocol agent (home actor / application server).

On a delivery push from a foreign gateway (Fig. 3 step 7) the recipient:

1. authenticates ``(Em, ePk)`` against the node's provisioned RSA public
   key (step 8);
2. creates and broadcasts the key-release *offer* — payment locked to the
   revelation of ``eSk`` (step 9, Listing 1);
3. watches the mempool for the gateway's *claim*; the claim's unlocking
   script contains ``eSk`` in the clear, with which the recipient unwraps
   ``Em`` and finally AES-decrypts the reading.

If the gateway never claims, :meth:`reclaim_expired` recovers the locked
funds through the script's timelocked refund branch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.transaction import OutPoint, Transaction
from repro.blockchain.wallet import KeyReleaseOffer, Wallet
from repro.core.costmodel import CostModel
from repro.core.daemon import BlockchainDaemon
from repro.core.messages import open_message, verify_payload
from repro.obs.exchange import ExchangeTracker
from repro.core.provisioning import RecipientRegistry
from repro.core.rewards import RecipientBudget
from repro.core import directory as directory_mod
from repro.crypto import rsa
from repro.errors import ProtocolError, ValidationError
from repro.p2p.message import (ClaimMessage, DeliveryAck, DeliveryMessage,
                               Envelope)
from repro.p2p.network import WANetwork
from repro.sim.core import Simulator

__all__ = ["RecipientAgent"]


@dataclass
class _PendingSettlement:
    """Recipient-side state awaiting the gateway's claim."""

    message: DeliveryMessage
    offer: KeyReleaseOffer
    source: str


class RecipientAgent:
    """One actor's application-server agent."""

    def __init__(self, sim: Simulator, name: str,
                 daemon: BlockchainDaemon, wallet: Wallet,
                 registry: RecipientRegistry, wan: WANetwork,
                 cost_model: CostModel, tracker: ExchangeTracker,
                 rng: random.Random, offer_fee: int = 0,
                 budget: Optional[RecipientBudget] = None,
                 chain_id: str = "") -> None:
        self.sim = sim
        self.name = name
        self.daemon = daemon
        self.wallet = wallet
        self.registry = registry
        self.wan = wan
        self.cost_model = cost_model
        self.tracker = tracker
        self.rng = rng
        self.offer_fee = offer_fee
        # Negotiation guard: quotes above the budget are refused before
        # any money is locked (the gateway keeps an undecryptable blob).
        self.budget = budget or RecipientBudget(max_price=10**9)
        # Which sub-chain this recipient's daemon follows (empty = flat).
        self.chain_id = chain_id

        self.messages_received = 0
        self.quotes_refused = 0
        self.messages_decrypted = 0
        self.payments_made = 0
        self.refunds_taken = 0
        self.claims_relayed = 0

        self._pending: dict[OutPoint, _PendingSettlement] = {}
        daemon.register_protocol(DeliveryMessage, self._on_delivery)
        daemon.register_protocol(ClaimMessage, self._on_claim)
        daemon.gossip.on_transaction.append(self._on_transaction)

    @property
    def address(self) -> str:
        """The blockchain address (``@R``) nodes are provisioned with."""
        return self.wallet.address

    # -- directory ---------------------------------------------------------------

    def announce(self, endpoint: str, port: int = 7264):
        """Publish this recipient's IP endpoint on-chain (section 4.3)."""
        payload = directory_mod.build_announcement_payload(
            self.wallet.keypair, endpoint, port,
        )

        def build_and_broadcast():
            tx = self.wallet.create_announcement(payload)
            self.daemon.gossip.broadcast_transaction(tx)
            return tx

        return self.daemon.rpc(build_and_broadcast)

    # -- the fair exchange ---------------------------------------------------------

    def _on_delivery(self, envelope: Envelope) -> None:
        self.sim.process(self._settle(envelope))

    def _settle(self, envelope: Envelope):
        message = envelope.payload
        assert isinstance(message, DeliveryMessage)
        self.messages_received += 1
        record = self.tracker.get(message.delivery_id)
        if record is not None:
            record.t_delivered = self.sim.now
            record.recipient = self.name
            record.price = message.price
            self.tracker.end_leg(record, "publication")
            self.tracker.begin_leg(record, "payment")

        # Step 8: authenticate the payload.
        yield self.sim.timeout(self.cost_model.sample(
            self.cost_model.recipient_rsa_verify, self.rng,
        ))
        if not self.registry.knows(message.node_id):
            self._refuse(envelope, record, "unknown device")
            return
        node_pubkey = self.registry.pubkey_for(message.node_id)
        if not verify_payload(message.encrypted_message,
                              message.ephemeral_pubkey,
                              message.signature, node_pubkey):
            self._refuse(envelope, record, "bad signature")
            return
        if not self.budget.accepts(message.price):
            self.quotes_refused += 1
            self._refuse(
                envelope, record,
                f"quote {message.price} above budget {self.budget.max_price}",
            )
            return

        # Step 9: lock payment to the key revelation.
        try:
            offer = yield self.daemon.rpc(
                lambda: self.wallet.create_key_release_offer(
                    rsa_pubkey=message.ephemeral_pubkey,
                    gateway_pubkey_hash=message.gateway_pubkey_hash,
                    amount=message.price,
                    fee=self.offer_fee,
                )
            )
        except ValidationError as exc:
            self._refuse(envelope, record, f"cannot fund offer: {exc}")
            return
        accepted = yield self.daemon.call(
            self.cost_model.daemon_tx_process,
            lambda: self.daemon.gossip.broadcast_transaction(offer.transaction),
        )
        if not accepted:
            self.wallet.release_pending(offer.transaction)
            self._refuse(envelope, record, "offer rejected by mempool")
            return
        self.payments_made += 1
        if record is not None:
            record.t_offer_sent = self.sim.now
        self._pending[offer.outpoint] = _PendingSettlement(
            message=message, offer=offer, source=envelope.source,
        )
        parent = (self.tracker.leg(record, "payment")
                  if record is not None else None)
        # Cross-region: the gateway's daemon follows a different
        # sub-chain, so the offer rides along serialized — it is the only
        # way the gateway will ever see it.
        cross_region = message.chain_id != self.chain_id
        self.wan.send(self.name, envelope.source, DeliveryAck(
            delivery_id=message.delivery_id,
            accepted=True,
            offer_txid=offer.transaction.txid,
            chain_id=self.chain_id,
            offer_tx_bytes=(offer.transaction.serialize()
                            if cross_region else b""),
        ), parent=parent)

    def _refuse(self, envelope: Envelope, record, reason: str) -> None:
        if record is not None:
            self.tracker.fail(record, reason)
        self.wan.send(self.name, envelope.source, DeliveryAck(
            delivery_id=envelope.payload.delivery_id,
            accepted=False,
            reason=reason,
            chain_id=self.chain_id,
        ))

    # -- cross-region claims ---------------------------------------------------

    def _on_claim(self, envelope: Envelope) -> None:
        message = envelope.payload
        if isinstance(message, ClaimMessage):
            self.sim.process(self._broadcast_claim(message))

    def _broadcast_claim(self, message: ClaimMessage):
        """Broadcast a foreign gateway's claim on *our* sub-chain.

        The escrow output lives here, so the reveal must happen here; the
        gateway only signed the claim, it cannot reach this mempool.  The
        broadcast fires the usual spend watch (:meth:`_on_transaction`),
        which decrypts exactly as in the intra-region flow.
        """
        record = self.tracker.get(message.delivery_id)
        try:
            claim_tx = Transaction.deserialize(message.claim_tx_bytes)
        except ValidationError:
            if record is not None:
                self.tracker.fail(record, "undecodable cross-region claim")
            return
        accepted = yield self.daemon.call(
            self.cost_model.daemon_tx_process,
            lambda: self.daemon.gossip.broadcast_transaction(claim_tx),
        )
        if accepted:
            self.claims_relayed += 1
        elif record is not None and record.status == "pending":
            self.tracker.fail(record, "cross-region claim rejected")

    # -- claim detection -------------------------------------------------------------

    def _on_transaction(self, tx) -> None:
        for tx_input in tx.inputs:
            settlement = self._pending.get(tx_input.outpoint)
            if settlement is not None:
                self.sim.process(self._decrypt(tx, tx_input, settlement))
                return

    def _decrypt(self, claim_tx, claim_input, settlement: _PendingSettlement):
        """The gateway's claim revealed ``eSk``: recover the plaintext."""
        record = self.tracker.get(settlement.message.delivery_id)
        elements = claim_input.script_sig.elements
        if len(elements) != 3 or not isinstance(elements[2], bytes):
            # The refund path or garbage — not a key revelation.
            return
        try:
            ephemeral_key = rsa.RSAPrivateKey.from_bytes(elements[2])
        except rsa.RSAError:
            return
        if record is not None:
            record.t_claim_seen = self.sim.now
            self.tracker.end_leg(record, "payment")
            self.tracker.begin_leg(record, "decryption")
        self._pending.pop(settlement.offer.outpoint, None)

        yield self.sim.timeout(self.cost_model.sample(
            self.cost_model.recipient_unwrap, self.rng,
        ))
        try:
            plaintext = open_message(
                settlement.message.encrypted_message,
                self.registry.key_for(settlement.message.node_id),
                ephemeral_key,
            )
        except ProtocolError as exc:
            if record is not None:
                self.tracker.fail(record, f"decryption failed: {exc}")
            return
        self.messages_decrypted += 1
        if record is not None:
            record.decrypted = plaintext
            record.t_decrypted = self.sim.now
            self.tracker.end_leg(record, "decryption")
            self.tracker.complete(record)

    # -- refunds ----------------------------------------------------------------------

    def pending_settlements(self) -> int:
        return len(self._pending)

    def reclaim_expired(self):
        """Spend the refund branch of every expired, unclaimed offer.

        Returns the process; its value is the number of refunds broadcast.
        """
        return self.sim.process(self._reclaim())

    def _reclaim(self):
        refunded = 0
        height = self.daemon.node.chain.height
        for outpoint, settlement in list(self._pending.items()):
            if settlement.offer.refund_locktime > height:
                continue
            if self.daemon.node.chain.utxos.get(outpoint) is None:
                continue  # already spent (claimed late)
            try:
                refund_tx = yield self.daemon.rpc(
                    lambda s=settlement: self.wallet.refund_key_release(s.offer)
                )
            except ValidationError:
                continue
            accepted = yield self.daemon.call(
                self.cost_model.daemon_tx_process,
                lambda tx=refund_tx: self.daemon.gossip.broadcast_transaction(tx),
            )
            if accepted:
                refunded += 1
                self.refunds_taken += 1
                self._pending.pop(outpoint, None)
                record = self.tracker.get(settlement.message.delivery_id)
                if record is not None and record.status == "pending":
                    self.tracker.fail(record,
                                      "gateway never claimed; refunded")
        return refunded
