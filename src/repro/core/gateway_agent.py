"""The gateway-side protocol agent.

A BcWAN gateway runs two modules (paper section 5): the *LoRa module*
(radio side, a Raspberry Pi in the PoC) and the *blockchain module* (the
daemon, a separate VM).  This agent glues them:

* radio: answers key requests with fresh ephemeral RSA-512 key pairs and
  receives data frames;
* chain: resolves ``@R`` via the on-chain directory, pushes the delivery
  to the recipient over TCP/IP, and — once the recipient's key-release
  offer lands in the mempool — claims it by *revealing* the ephemeral
  private key (Fig. 3 step 10).

The gateway does **not** wait for the offer to confirm before revealing
the key; the paper makes that choice deliberately (section 6) and accepts
the double-spend exposure — which :mod:`repro.attacks.double_spend`
exploits.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.blockchain.transaction import OutPoint, Transaction
from repro.blockchain.wallet import KeyReleaseOffer, Wallet
from repro.core.costmodel import CostModel
from repro.core.daemon import BlockchainDaemon
from repro.core.directory import DirectoryView
from repro.obs.exchange import ExchangeTracker
from repro.core.rewards import FixedPricing, PricingPolicy
from repro.crypto import rsa
from repro.errors import ValidationError
from repro.lora.class_a import RX1_DELAY, RX2_DELAY, ClassAWindows
from repro.lora.device import LoRaRadio
from repro.lora.frames import DataFrame, KeyRequestFrame, KeyResponseFrame
from repro.p2p.message import (ClaimMessage, DeliveryAck, DeliveryMessage,
                               Envelope)
from repro.p2p.network import WANetwork
from repro.script.builder import parse_ephemeral_key_release
from repro.sim.core import Simulator

__all__ = ["GatewayAgent"]


@dataclass
class _PendingDelivery:
    """Gateway-side state for one in-flight exchange."""

    exchange_id: int
    ephemeral_key: rsa.RSAPrivateKey
    node_id: str
    recipient_endpoint: str = ""
    offer_txid: bytes = b""
    quoted_price: int = 0


class GatewayAgent:
    """One gateway's protocol engine."""

    def __init__(self, sim: Simulator, name: str, radio: LoRaRadio,
                 daemon: BlockchainDaemon, wallet: Wallet,
                 directory: DirectoryView, wan: WANetwork,
                 cost_model: CostModel, tracker: ExchangeTracker,
                 rng: random.Random, price: int = 100,
                 pricing: Optional[PricingPolicy] = None,
                 claim_fee: int = 0,
                 wait_for_confirmation: bool = False,
                 rsa_bits: int = 512,
                 class_a: bool = False,
                 chain_id: str = "") -> None:
        self.sim = sim
        self.name = name
        self.radio = radio
        self.daemon = daemon
        self.wallet = wallet
        self.directory = directory
        self.wan = wan
        self.cost_model = cost_model
        self.tracker = tracker
        self.rng = rng
        self.price = price
        # Step 9's "fixed or negotiated" output: the policy quotes the
        # price carried in each DeliveryMessage.
        self.pricing: PricingPolicy = pricing or FixedPricing(price=price)
        self.claim_fee = claim_fee
        # Section 6: waiting for the offer to confirm closes the
        # double-spend window at the cost of block-interval latency.
        self.wait_for_confirmation = wait_for_confirmation
        self.rsa_bits = rsa_bits
        # Class-A peers only listen in RX1/RX2; the ePk downlink must be
        # scheduled into a window rather than fired immediately.
        self.class_a = class_a
        self.downlinks_unschedulable = 0
        # Which sub-chain this gateway's daemon follows.  Empty in a flat
        # federation; in a hierarchical one it is the region's chain id,
        # and an ack from a recipient on a different sub-chain switches
        # the claim to the cross-region path.
        self.chain_id = chain_id

        self.deliveries_forwarded = 0
        self.claims_made = 0
        self.cross_region_claims = 0
        self.rewards_claimed = 0

        self._ephemeral: dict[int, _PendingDelivery] = {}
        self._awaiting_offer: dict[bytes, int] = {}  # offer txid -> exchange

        radio.on_receive(self._on_frame)
        daemon.register_protocol(DeliveryAck, self._on_ack)
        daemon.gossip.on_transaction.append(self._on_transaction)

    # -- radio side -----------------------------------------------------------

    def _on_frame(self, frame, rssi: float) -> None:
        if isinstance(frame, KeyRequestFrame):
            self.sim.process(self._serve_key_request(frame))
        elif isinstance(frame, DataFrame):
            self.sim.process(self._forward(frame))

    def _serve_key_request(self, frame: KeyRequestFrame):
        """Steps 1-2: generate an ephemeral pair, downlink ``ePk``."""
        uplink_end = self.sim.now  # frames deliver at transmission end
        if frame.nonce in self._ephemeral:
            # Duplicate request (retry); resend the same key.
            pending = self._ephemeral[frame.nonce]
        else:
            yield self.sim.timeout(self.cost_model.sample(
                self.cost_model.gateway_rsa_keygen, self.rng,
            ))
            keypair = rsa.generate_keypair(self.rsa_bits, self.rng)
            pending = _PendingDelivery(
                exchange_id=frame.nonce,
                ephemeral_key=keypair,
                node_id=frame.sender,
            )
            self._ephemeral[frame.nonce] = pending
            record = self.tracker.get(frame.nonce)
            if record is not None:
                record.t_keygen_done = self.sim.now
                record.gateway = self.name
        if self.class_a:
            # Aim the downlink start at the node's RX1 (or RX2) window.
            windows = ClassAWindows()
            windows.note_uplink_end(uplink_end)
            earliest = self.sim.now + self.radio.duty_cycle_wait()
            target = windows.next_window_start(earliest)
            if target is None:
                # Both windows unreachable (duty cycle backlog); the
                # node will time out and retry.
                self.downlinks_unschedulable += 1
                return
            if target > self.sim.now:
                yield self.sim.timeout(target - self.sim.now)
        transmission = yield from self.radio.send(KeyResponseFrame(
            sender=self.name,
            target=frame.sender,
            ephemeral_pubkey=pending.ephemeral_key.public_key.to_bytes(),
            nonce=frame.nonce,
        ))
        record = self.tracker.get(frame.nonce)
        if record is not None and record.t_epk_sent is None:
            # The paper's clock starts at "the first message from the
            # gateway": the start of the ePk downlink.  The uplink leg of
            # the trace starts at the same instant.
            record.t_epk_sent = transmission.start
            self.tracker.begin_leg(record, "uplink", start=transmission.start)

    def _forward(self, frame: DataFrame):
        """Steps 6-7: resolve ``@R`` on-chain, push the data over TCP/IP."""
        record = self.tracker.get(frame.nonce)
        if record is not None:
            record.t_data_received = self.sim.now
            self.tracker.end_leg(record, "uplink")
            self.tracker.begin_leg(record, "publication")
        pending = self._ephemeral.get(frame.nonce)
        if pending is None:
            if record is not None:
                self.tracker.fail(record, "gateway lost ephemeral key state")
            return
        yield self.sim.timeout(self.cost_model.sample(
            self.cost_model.gateway_frame_handling, self.rng,
        ))
        announcement = yield self.daemon.lookup(
            lambda: self.directory.lookup(frame.recipient_address)
        )
        if announcement is None:
            if record is not None:
                self.tracker.fail(
                    record,
                    f"no directory entry for {frame.recipient_address}",
                )
            self._ephemeral.pop(frame.nonce, None)
            return
        pending.recipient_endpoint = announcement.endpoint
        pending.quoted_price = self.pricing.quote(
            frame.recipient_address, self.daemon.queue_length,
        )
        self.deliveries_forwarded += 1
        parent = (self.tracker.leg(record, "publication")
                  if record is not None else None)
        self.wan.send(self.name, announcement.endpoint, DeliveryMessage(
            delivery_id=frame.nonce,
            encrypted_message=frame.encrypted_message,
            ephemeral_pubkey=pending.ephemeral_key.public_key.to_bytes(),
            signature=frame.signature,
            node_id=frame.sender,
            gateway_pubkey_hash=self.wallet.pubkey_hash,
            price=pending.quoted_price,
            chain_id=self.chain_id,
        ), parent=parent)

    # -- blockchain side ----------------------------------------------------------

    def _on_ack(self, envelope: Envelope) -> None:
        ack = envelope.payload
        if not isinstance(ack, DeliveryAck):
            return
        record = self.tracker.get(ack.delivery_id)
        if not ack.accepted:
            self._ephemeral.pop(ack.delivery_id, None)
            if record is not None:
                self.tracker.fail(record, f"recipient refused: {ack.reason}")
            return
        pending = self._ephemeral.get(ack.delivery_id)
        if pending is None:
            return
        if ack.chain_id != self.chain_id and ack.offer_tx_bytes:
            # The recipient settles on a different sub-chain: the offer
            # will never reach this daemon's mempool, so it travelled
            # serialized inside the ack instead.
            self.sim.process(self._claim_remote(ack, envelope.source))
            return
        pending.offer_txid = ack.offer_txid
        self._awaiting_offer[ack.offer_txid] = ack.delivery_id
        # The offer may have reached our mempool before the ack did.
        if (ack.offer_txid in self.daemon.node.mempool
                or self.daemon.node.chain.confirmations(ack.offer_txid)):
            self._begin_claim(ack.offer_txid)

    def _on_transaction(self, tx) -> None:
        if tx.txid in self._awaiting_offer:
            self._begin_claim(tx.txid)

    def _begin_claim(self, offer_txid: bytes) -> None:
        exchange_id = self._awaiting_offer.pop(offer_txid, None)
        if exchange_id is None:
            return
        self.sim.process(self._claim(offer_txid, exchange_id))

    def _claim(self, offer_txid: bytes, exchange_id: int):
        """Step 10: audit the offer, then spend it, revealing ``eSk``."""
        pending = self._ephemeral.pop(exchange_id, None)
        record = self.tracker.get(exchange_id)
        if pending is None:
            return
        offer_tx = self.daemon.node.mempool.get(offer_txid)
        if offer_tx is None:
            found = self.daemon.node.chain.find_transaction(offer_txid)
            if found is None:
                if record is not None:
                    self.tracker.fail(record, "offer transaction vanished")
                return
            offer_tx = found[0]

        if self.wait_for_confirmation:
            # Section 6's safe variant: poll until the offer is buried.
            while not self.daemon.node.chain.confirmations(offer_txid):
                yield self.sim.timeout(1.0)

        # Audit the offer before revealing anything.
        offer = self._audit_offer(offer_tx, pending)
        if offer is None:
            if record is not None:
                self.tracker.fail(record, "offer failed gateway audit")
            return

        claim_tx = yield self.daemon.rpc(
            lambda: self.wallet.claim_key_release(
                offer, pending.ephemeral_key.to_bytes(), fee=self.claim_fee,
            )
        )
        accepted = yield self.daemon.call(
            self.cost_model.daemon_tx_process,
            lambda: self.daemon.gossip.broadcast_transaction(claim_tx),
        )
        if accepted:
            self.claims_made += 1
            self.rewards_claimed += offer.amount - self.claim_fee

    def _claim_remote(self, ack: DeliveryAck, source: str):
        """Cross-region step 10: audit the serialized offer, relay the claim.

        The escrow lives on the recipient's sub-chain, which this daemon
        does not follow, so the usual mempool watch cannot work.  Both
        the audit and the claim construction are chain-state-free; the
        signed claim goes back over the WAN and the *recipient* broadcasts
        it where the coin lives.  ``wait_for_confirmation`` is necessarily
        skipped — this gateway has no view of the foreign chain to poll.
        """
        pending = self._ephemeral.pop(ack.delivery_id, None)
        record = self.tracker.get(ack.delivery_id)
        if pending is None:
            return
        try:
            offer_tx = Transaction.deserialize(ack.offer_tx_bytes)
        except (ValidationError, ValueError, IndexError):
            if record is not None:
                self.tracker.fail(record, "undecodable cross-region offer")
            return
        if offer_tx.txid != ack.offer_txid:
            if record is not None:
                self.tracker.fail(record, "cross-region offer txid mismatch")
            return
        offer = self._audit_offer(offer_tx, pending)
        if offer is None:
            if record is not None:
                self.tracker.fail(record, "offer failed gateway audit")
            return
        claim_tx = yield self.daemon.rpc(
            lambda: self.wallet.claim_key_release(
                offer, pending.ephemeral_key.to_bytes(), fee=self.claim_fee,
            )
        )
        self.wan.send(self.name, source, ClaimMessage(
            delivery_id=ack.delivery_id,
            claim_tx_bytes=claim_tx.serialize(),
        ))
        self.claims_made += 1
        self.cross_region_claims += 1
        self.rewards_claimed += offer.amount - self.claim_fee

    def _audit_offer(self, offer_tx, pending: _PendingDelivery
                     ) -> Optional[KeyReleaseOffer]:
        """Check the recipient's transaction actually pays us as agreed."""
        expected_rsa = pending.ephemeral_key.public_key.to_bytes()
        for index, output in enumerate(offer_tx.outputs):
            parsed = parse_ephemeral_key_release(output.script_pubkey)
            if parsed is None:
                continue
            rsa_pubkey, gateway_hash, buyer_hash, locktime = parsed
            if rsa_pubkey != expected_rsa:
                continue
            if gateway_hash != self.wallet.pubkey_hash:
                continue
            if output.value < pending.quoted_price:
                continue
            return KeyReleaseOffer(
                transaction=offer_tx,
                output_index=index,
                rsa_pubkey=rsa_pubkey,
                gateway_pubkey_hash=gateway_hash,
                buyer_pubkey_hash=buyer_hash,
                refund_locktime=locktime,
            )
        return None
