"""Master-gateway election for multi-gateway actors (§4.2, footnote 3).

"For the sake of simplicity, we assume that each actor of the network
possesses only one gateway.  With several gateways per actor, each actor
will have to elect one of his gateways as the master gateway" — the
gateway all the actor's devices address their data to, and the endpoint
the actor announces in the on-chain directory.

The election here is deterministic and coordination-free: every gateway
of the actor ranks the *healthy* members by ``H(actor_id ‖ epoch ‖ name)``
and the lowest digest wins.  Determinism means all of the actor's
gateways agree without messages; the ``epoch`` counter rotates leadership
when the actor forces a re-election (e.g. for maintenance).

On failure detection the caller marks the master down and the next
healthy gateway takes over; the actor must then re-announce its endpoint
(the directory's latest-wins rule, see
:class:`repro.core.directory.DirectoryView`, makes the switch atomic for
foreign gateways).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.crypto.hashing import sha256
from repro.errors import ConfigurationError

__all__ = ["MasterElection"]


@dataclass
class MasterElection:
    """Deterministic leader choice among one actor's gateways."""

    actor_id: str
    gateways: list[str] = field(default_factory=list)
    epoch: int = 0
    # Invoked with the new master's name whenever leadership changes.
    on_master_change: Optional[Callable[[str], None]] = None
    _down: set[str] = field(default_factory=set)
    _last_master: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.gateways:
            raise ConfigurationError(
                f"actor {self.actor_id} has no gateways to elect from"
            )
        if len(set(self.gateways)) != len(self.gateways):
            raise ConfigurationError(
                f"duplicate gateway names for actor {self.actor_id}"
            )
        self._last_master = self.current_master()

    # -- membership & health --------------------------------------------------

    def add_gateway(self, name: str) -> None:
        if name in self.gateways:
            raise ConfigurationError(f"gateway already registered: {name}")
        self.gateways.append(name)
        self._maybe_notify()

    def healthy_gateways(self) -> list[str]:
        return [name for name in self.gateways if name not in self._down]

    def mark_down(self, name: str) -> None:
        """Record a failure; leadership moves if the master died."""
        if name not in self.gateways:
            raise ConfigurationError(f"unknown gateway: {name}")
        self._down.add(name)
        self._maybe_notify()

    def mark_up(self, name: str) -> None:
        """A recovered gateway rejoins the candidate set (and may win)."""
        self._down.discard(name)
        self._maybe_notify()

    def rotate(self) -> str:
        """Force a new epoch (deterministically reshuffles the ranking)."""
        self.epoch += 1
        self._maybe_notify()
        return self.current_master()

    # -- the election ------------------------------------------------------------

    def _rank(self, name: str) -> bytes:
        return sha256(
            f"{self.actor_id}|{self.epoch}|{name}".encode("utf-8")
        )

    def current_master(self) -> str:
        """The elected master among currently-healthy gateways."""
        candidates = self.healthy_gateways()
        if not candidates:
            raise ConfigurationError(
                f"actor {self.actor_id} has no healthy gateway"
            )
        return min(candidates, key=self._rank)

    def is_master(self, name: str) -> bool:
        return self.current_master() == name

    def _maybe_notify(self) -> None:
        try:
            master = self.current_master()
        except ConfigurationError:
            self._last_master = None
            return
        if master != self._last_master:
            self._last_master = master
            if self.on_master_change is not None:
                self.on_master_change(master)
