"""The recipient agent for the light tier.

A :class:`LightRecipientAgent` runs the same fair exchange as
:class:`~repro.core.recipient.RecipientAgent` — authenticate the
delivery, lock payment to the key revelation, decrypt on the claim's
``eSk`` reveal — but against an :class:`~repro.light.spv.SpvClient`
instead of a co-located full node:

* its wallet balance is built from SPV-proven transactions only;
* offers and refunds are broadcast by handing the raw transaction to the
  serving full node (with a rebroadcast watchdog in place of a local
  mempool verdict);
* the claim is spotted through the watched offer outpoint (filter push),
  and payment is counted *confirmed* only once a Merkle proof of the
  claim verifies against the header chain.

The device-class asymmetry is the point: everything consensus-critical
(block bodies, UTXO bookkeeping, script validation) stays on the full
nodes; the light host handles only its own transactions, each at most a
few hundred bytes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.blockchain.transaction import OutPoint, Transaction
from repro.blockchain.wallet import KeyReleaseOffer
from repro.core import directory as directory_mod
from repro.core.costmodel import CostModel
from repro.core.messages import open_message, verify_payload
from repro.core.provisioning import RecipientRegistry
from repro.core.rewards import RecipientBudget
from repro.crypto import rsa
from repro.errors import ProtocolError, ValidationError
from repro.light.messages import MEMPOOL_HEIGHT, TxProofMessage
from repro.light.spv import SpvClient
from repro.light.wallet import LightWallet
from repro.obs.exchange import ExchangeTracker
from repro.p2p.message import (DeliveryAck, DeliveryMessage, Envelope,
                               TxMessage)
from repro.sim.core import Simulator

__all__ = ["LightRecipientAgent"]


@dataclass
class _PendingSettlement:
    """Light-side state awaiting the gateway's claim."""

    message: DeliveryMessage
    offer: KeyReleaseOffer
    source: str


class LightRecipientAgent:
    """One duty-cycled actor's application agent, SPV-backed."""

    def __init__(self, sim: Simulator, name: str, spv: SpvClient,
                 wallet: LightWallet, registry: RecipientRegistry,
                 cost_model: CostModel, tracker: ExchangeTracker,
                 rng: random.Random, offer_fee: int = 0,
                 budget: Optional[RecipientBudget] = None,
                 refund_delta: int = 100,
                 funding_retries: int = 8,
                 funding_wait: float = 2.0,
                 rebroadcast_timeout: float = 15.0,
                 rebroadcast_limit: int = 3) -> None:
        self.sim = sim
        self.name = name
        self.spv = spv
        self.wan = spv.network
        self.wallet = wallet
        self.registry = registry
        self.cost_model = cost_model
        self.tracker = tracker
        self.rng = rng
        self.offer_fee = offer_fee
        self.budget = budget or RecipientBudget(max_price=10**9)
        # The refund branch's locktime rides the *header* tip — the only
        # chain clock a light client has.
        self.refund_delta = refund_delta
        self.funding_retries = funding_retries
        self.funding_wait = funding_wait
        self.rebroadcast_timeout = rebroadcast_timeout
        self.rebroadcast_limit = rebroadcast_limit

        self.messages_received = 0
        self.quotes_refused = 0
        self.messages_decrypted = 0
        self.payments_made = 0
        self.payments_confirmed = 0
        self.refunds_taken = 0
        self.rebroadcasts = 0
        self.funding_stalls = 0

        self._pending: dict[OutPoint, _PendingSettlement] = {}
        self._offer_txids: set[bytes] = set()
        self._echoed: set[bytes] = set()
        self._confirmed: set[bytes] = set()
        spv.register_handler(DeliveryMessage, self._on_delivery)
        spv.on_match.append(self._on_match)
        spv.on_proof.append(self._on_proof)
        # Watch own address from genesis: funding coins, change, and
        # refunds all land back here as proven credits.
        spv.watch(pubkey_hashes=(wallet.pubkey_hash,), from_height=0)

    @property
    def address(self) -> str:
        """The blockchain address (``@R``) nodes are provisioned with."""
        return self.wallet.address

    # -- directory ---------------------------------------------------------------

    def announce(self, endpoint: str, port: int = 7264) -> Transaction:
        """Publish this recipient's IP endpoint on-chain (section 4.3)."""
        payload = directory_mod.build_announcement_payload(
            self.wallet.keypair, endpoint, port,
        )
        tx = self.wallet.create_announcement(payload)
        self._broadcast(tx)
        return tx

    # -- broadcast through the serving peer --------------------------------------

    def _broadcast(self, tx: Transaction, parent=None) -> None:
        txid = tx.txid
        self.spv.watch(txids=(txid,))
        self.wan.send(self.name, self.spv.serving_peer,
                      TxMessage(transaction=tx), parent=parent)
        self.sim.call_in(self.rebroadcast_timeout,
                         lambda: self._check_echo(tx, attempts=1))

    def _check_echo(self, tx: Transaction, attempts: int) -> None:
        """No filter push echoed our broadcast: the peer lost or never
        accepted it.  Resend — possibly to a new peer after failover."""
        txid = tx.txid
        if txid in self._echoed or txid in self._confirmed:
            return
        if attempts > self.rebroadcast_limit:
            return  # give up; reclaim_expired / tracker timeouts handle it
        self.rebroadcasts += 1
        self.wan.send(self.name, self.spv.serving_peer,
                      TxMessage(transaction=tx))
        self.sim.call_in(self.rebroadcast_timeout,
                         lambda: self._check_echo(tx, attempts + 1))

    # -- the fair exchange --------------------------------------------------------

    def _on_delivery(self, envelope: Envelope) -> None:
        self.sim.process(self._settle(envelope))

    def _settle(self, envelope: Envelope):
        message = envelope.payload
        assert isinstance(message, DeliveryMessage)
        self.messages_received += 1
        record = self.tracker.get(message.delivery_id)
        if record is not None:
            record.t_delivered = self.sim.now
            record.recipient = self.name
            record.price = message.price
            self.tracker.end_leg(record, "publication")
            self.tracker.begin_leg(record, "payment")

        # Step 8: authenticate the payload.
        yield self.sim.timeout(self.cost_model.sample(
            self.cost_model.recipient_rsa_verify, self.rng,
        ))
        if not self.registry.knows(message.node_id):
            self._refuse(envelope, record, "unknown device")
            return
        node_pubkey = self.registry.pubkey_for(message.node_id)
        if not verify_payload(message.encrypted_message,
                              message.ephemeral_pubkey,
                              message.signature, node_pubkey):
            self._refuse(envelope, record, "bad signature")
            return
        if not self.budget.accepts(message.price):
            self.quotes_refused += 1
            self._refuse(
                envelope, record,
                f"quote {message.price} above budget {self.budget.max_price}",
            )
            return

        # Step 9: lock payment to the key revelation.  Funding proofs may
        # still be in flight to a just-woken device, so stall briefly
        # (nudging catch-up) before declaring poverty.
        offer = None
        for attempt in range(self.funding_retries):
            try:
                offer = self.wallet.create_key_release_offer(
                    rsa_pubkey=message.ephemeral_pubkey,
                    gateway_pubkey_hash=message.gateway_pubkey_hash,
                    amount=message.price,
                    refund_locktime=(self.spv.chain.tip_height
                                     + self.refund_delta),
                    fee=self.offer_fee,
                )
                break
            except ValidationError:
                self.funding_stalls += 1
                self.spv.catch_up()
                yield self.sim.timeout(self.funding_wait)
        if offer is None:
            self._refuse(envelope, record, "cannot fund offer")
            return
        self.payments_made += 1
        if record is not None:
            record.t_offer_sent = self.sim.now
        self._pending[offer.outpoint] = _PendingSettlement(
            message=message, offer=offer, source=envelope.source,
        )
        self._offer_txids.add(offer.transaction.txid)
        parent = (self.tracker.leg(record, "payment")
                  if record is not None else None)
        # Watch the escrow before it exists on the wire: the claim spends
        # this outpoint, and the filter must already cover it when the
        # gateway's claim hits the serving node's mempool.
        self.spv.watch(outpoints=(offer.outpoint,))
        self._broadcast(offer.transaction, parent=parent)
        self.wan.send(self.name, envelope.source, DeliveryAck(
            delivery_id=message.delivery_id,
            accepted=True,
            offer_txid=offer.transaction.txid,
        ), parent=parent)

    def _refuse(self, envelope: Envelope, record, reason: str) -> None:
        if record is not None:
            self.tracker.fail(record, reason)
        self.wan.send(self.name, envelope.source, DeliveryAck(
            delivery_id=envelope.payload.delivery_id,
            accepted=False,
            reason=reason,
        ))

    # -- filter pushes ------------------------------------------------------------

    def _on_match(self, tx: Transaction, height: int) -> None:
        self._echoed.add(tx.txid)
        for tx_input in tx.inputs:
            settlement = self._pending.get(tx_input.outpoint)
            if settlement is not None:
                self.sim.process(self._decrypt(tx, tx_input, settlement))
                return

    def _on_proof(self, proof: TxProofMessage) -> None:
        tx = self.spv.matched_txs.get(proof.txid)
        if tx is None:
            return  # proof outran its filter push; replayed on the match
        self._confirmed.add(tx.txid)
        self.wallet.apply_confirmed_tx(tx)
        if proof.txid in self._offer_txids:
            self._offer_txids.discard(proof.txid)
            self.payments_confirmed += 1

    # -- claim decryption ---------------------------------------------------------

    def _decrypt(self, claim_tx, claim_input, settlement: _PendingSettlement):
        """The gateway's claim revealed ``eSk``: recover the plaintext."""
        record = self.tracker.get(settlement.message.delivery_id)
        elements = claim_input.script_sig.elements
        if len(elements) != 3 or not isinstance(elements[2], bytes):
            # The refund path or garbage — not a key revelation.
            return
        try:
            ephemeral_key = rsa.RSAPrivateKey.from_bytes(elements[2])
        except rsa.RSAError:
            return
        if record is not None:
            record.t_claim_seen = self.sim.now
            self.tracker.end_leg(record, "payment")
            self.tracker.begin_leg(record, "decryption")
        self._pending.pop(settlement.offer.outpoint, None)

        yield self.sim.timeout(self.cost_model.sample(
            self.cost_model.recipient_unwrap, self.rng,
        ))
        try:
            plaintext = open_message(
                settlement.message.encrypted_message,
                self.registry.key_for(settlement.message.node_id),
                ephemeral_key,
            )
        except ProtocolError as exc:
            if record is not None:
                self.tracker.fail(record, f"decryption failed: {exc}")
            return
        self.messages_decrypted += 1
        if record is not None:
            record.decrypted = plaintext
            record.t_decrypted = self.sim.now
            self.tracker.end_leg(record, "decryption")
            self.tracker.complete(record)

    # -- refunds ------------------------------------------------------------------

    def pending_settlements(self) -> int:
        return len(self._pending)

    def reclaim_expired(self) -> int:
        """Broadcast the refund branch of every header-expired offer.

        A light client cannot consult the UTXO set, so a raced claim is
        resolved by the full nodes: the refund simply loses the conflict
        and the claim decrypts as usual.  Returns refunds broadcast.
        """
        refunded = 0
        tip = self.spv.chain.tip_height
        for outpoint, settlement in list(self._pending.items()):
            if settlement.offer.refund_locktime > tip:
                continue
            try:
                refund_tx = self.wallet.refund_key_release(settlement.offer)
            except ValidationError:
                continue
            self._broadcast(refund_tx)
            refunded += 1
            self.refunds_taken += 1
            self._pending.pop(outpoint, None)
            record = self.tracker.get(settlement.message.delivery_id)
            if record is not None and record.status == "pending":
                self.tracker.fail(record, "gateway never claimed; refunded")
        return refunded

    def stats(self) -> dict[str, int]:
        return {
            "messages_received": self.messages_received,
            "quotes_refused": self.quotes_refused,
            "messages_decrypted": self.messages_decrypted,
            "payments_made": self.payments_made,
            "payments_confirmed": self.payments_confirmed,
            "refunds_taken": self.refunds_taken,
            "rebroadcasts": self.rebroadcasts,
            "funding_stalls": self.funding_stalls,
            "balance": self.wallet.balance,
        }
