"""Full BcWAN deployment assembly — the paper's testbed in one object.

:class:`BcWANNetwork` builds the complete system from a
:class:`~repro.core.config.NetworkConfig`:

* a master node (the paper's AWS EC2 instance) that bootstraps the chain,
  funds every actor, and mines on the configured interval — mining is
  disabled everywhere else, exactly like the PoC;
* one *site* per gateway (the PlanetLab nodes), each running a full node,
  a BcWAN daemon, a wallet, a directory view, a LoRa gateway radio, a
  :class:`GatewayAgent` and a :class:`RecipientAgent`;
* sensors provisioned to their home actor but deployed in a *foreign*
  gateway's radio cell (the roaming scenario BcWAN exists for);
* a PlanetLab-like WAN between all sites.

``run(num_exchanges=2000)`` drives the workload of section 5.2 and
returns a :class:`RunReport` with the latency distribution of Fig. 5/6.

**Hierarchical mode** (``config.topology.regions > 1``): the federation
is carved into regions, each running its *own* gateway sub-chain — own
master (or PoS schedule), own mempool, region-scoped gossip mesh — so
intra-region fair exchanges never leave the region.  A global
*settlement chain* ("anchor"), mined by a dedicated anchor master,
receives periodic checkpoint transactions from each region's
:class:`~repro.core.settlement.CheckpointAgent`; cross-region deliveries
escrow on the recipient's sub-chain and the claim travels back over the
WAN (see :mod:`repro.core.recipient`).  ``topology.regions == 1`` (the
default) takes the exact flat assembly path above and reproduces the
paper's results bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.checkpoint import CheckpointRules
from repro.blockchain.miner import Miner
from repro.blockchain.node import FullNode
from repro.blockchain.wallet import Wallet
from repro.core.config import NetworkConfig
from repro.core.settlement import CheckpointAgent
from repro.core.daemon import BlockchainDaemon, DaemonStats
from repro.core.directory import DirectoryView, build_announcement_payload
from repro.core.gateway_agent import GatewayAgent
from repro.obs.exchange import ExchangeTracker
from repro.core.node_agent import NodeAgent
from repro.core.provisioning import RecipientRegistry, provision_device
from repro.core.recipient import RecipientAgent
from repro.core.light_recipient import LightRecipientAgent
from repro.crypto.keys import KeyPair
from repro.errors import ConfigurationError
from repro.light.compact import CompactBlockRelay
from repro.light.multicast import ChainMulticaster
from repro.light.server import LightServer
from repro.light.spv import SpvClient
from repro.light.wallet import LightWallet
from repro.lora.channel import Position, RadioChannel
from repro.obs.export import (export_trace_jsonl, format_breakdown,
                              leg_breakdown)
from repro.obs.profile import HotPathProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.lora.device import EU868_DOWNLINK_CHANNEL, LoRaRadio
from repro.lora.phy import LoRaModulation
from repro.p2p.network import WANetwork
from repro.sim.core import Simulator
from repro.sim.latency import PlanetLabLatencyMatrix
from repro.sim.rng import RngRegistry
from repro.obs.stats import Summary, histogram

__all__ = ["BcWANNetwork", "Region", "Site", "RunReport"]


@dataclass
class Site:
    """Everything running at one gateway site (one actor)."""

    index: int
    name: str
    node: FullNode
    daemon: BlockchainDaemon
    wallet: Wallet
    directory: DirectoryView
    channel: RadioChannel
    gateway: GatewayAgent
    recipient: RecipientAgent
    registry: RecipientRegistry
    # Hierarchical mode: which region (and sub-chain) this site belongs
    # to.  Flat deployments leave the defaults.
    region: int = 0
    chain_id: str = ""


@dataclass
class Region:
    """One regional sub-chain of a hierarchical federation."""

    index: int
    chain_id: str
    master_node: FullNode
    master_daemon: BlockchainDaemon
    master_wallet: Wallet
    miner: Miner
    sites: list[Site]
    # This region's presence on the global settlement chain.
    anchor_daemon: BlockchainDaemon
    anchor_wallet: Wallet
    checkpoint_agent: CheckpointAgent


@dataclass
class RunReport:
    """Results of one workload run."""

    exchanges_launched: int
    completed: int
    failed: int
    pending: int
    duration: float
    chain_height: int
    latencies: list[float]
    gateway_rewards: dict[str, int]
    recipient_spend: dict[str, int]
    daemon_stats: dict[str, DaemonStats]
    frames_lost_collision: int
    frames_lost_sensitivity: int
    # Per-leg latency summaries derived from spans (uplink / publication
    # / payment / decryption / total); empty when tracing was off.
    legs: dict[str, Summary] = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        # NaN-free on empty, matching the Summary.of([]) convention.
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def summary(self) -> Summary:
        return Summary.of(self.latencies)

    def latency_histogram(self, bins: int = 20):
        return histogram(self.latencies, bins=bins)

    def format(self) -> str:
        lines = [
            f"exchanges: {self.exchanges_launched} launched, "
            f"{self.completed} completed, {self.failed} failed, "
            f"{self.pending} pending",
            f"simulated duration: {self.duration:.1f} s, "
            f"chain height: {self.chain_height}",
        ]
        if self.latencies:
            lines.append(f"latency: {self.summary.format()}")
        if self.legs and self.legs.get("total") and self.legs["total"].count:
            lines.append("per-leg breakdown (from spans):")
            for leg in ("uplink", "publication", "payment", "decryption",
                        "total"):
                summary = self.legs[leg]
                lines.append(f"  {leg:<12} {summary.format()}")
        return "\n".join(lines)


class BcWANNetwork:
    """A fully-assembled BcWAN federation."""

    def __init__(self, config: Optional[NetworkConfig] = None) -> None:
        self.config = config or NetworkConfig()
        self.rngs = RngRegistry(self.config.seed)
        self.sim = Simulator()
        # The observability spine: one registry and one tracer for the
        # whole deployment.  Trace/span ids are minted in span-creation
        # order, so same-seed runs export byte-identical JSONL.
        self.registry = MetricsRegistry()
        self.tracer = Tracer(self.sim, enabled=self.config.tracing)
        self.profiler = (HotPathProfiler()
                         if self.config.profile_hot_paths else None)
        self.sim.obs = self.profiler
        self.tracker = ExchangeTracker(self.tracer)
        self.sites: list[Site] = []
        self.regions: list[Region] = []
        self.sensors: list[NodeAgent] = []
        # The light tier (empty in the default full-node deployment).
        self.light_servers: list[LightServer] = []
        self.light_clients: list[SpvClient] = []
        self.light_agents: list[LightRecipientAgent] = []
        self.multicasters: list[ChainMulticaster] = []
        self.compact_relays: list[CompactBlockRelay] = []
        self._exchanges_launched = 0
        self._build()

    # -- construction -----------------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        params = cfg.chain_params()

        # One shared script-verification pool for the whole federation —
        # the daemons all run on one host here, so one set of worker
        # processes serves every engine.  None keeps everything serial.
        self.verify_pool = None
        if cfg.parallel_workers > 0:
            from repro.parallel.pool import VerifyPool
            self.verify_pool = VerifyPool(cfg.parallel_workers,
                                          registry=self.registry)

        if cfg.topology.regions == 1:
            self._build_flat(params)
        else:
            self._build_hierarchical(params)

    def _build_flat(self, params) -> None:
        cfg = self.config

        # Master (the AWS EC2 instance): bootstraps and mines.
        # Script re-verification on block connect is disabled on every
        # node for CPU economy — scripts are fully verified at mempool
        # admission on all six nodes; the *timing* of Fig. 6's block
        # verification is modeled by the daemon stall.
        master_node = FullNode(params, "master", verify_scripts=False,
                               mempool_policy=self.config.mempool)
        master_key = KeyPair.generate(self.rngs.stream("master-key"))
        self.master_wallet = Wallet(master_node.chain, master_key)
        self.master_wallet.watch_chain()
        self.miner = Miner(chain=master_node.chain, mempool=master_node.mempool,
                           reward_pubkey_hash=self.master_wallet.pubkey_hash)

        actor_keys = [
            KeyPair.generate(self.rngs.stream(f"actor-key-{i}"))
            for i in range(cfg.num_gateways)
        ]
        # Light tier: the duty-cycled application hosts hold their own
        # keys, funded and announced (endpoint = the light host) during
        # bootstrap, so gateways resolve @R straight to the light host.
        light_keys = []
        if cfg.device_class == "light":
            light_keys = [
                KeyPair.generate(self.rngs.stream(f"light-key-{i}"))
                for i in range(cfg.num_gateways)
            ]
        self._bootstrap_chain(master_node, actor_keys,
                              extra_keys=light_keys,
                              extra_endpoints=cfg.light_names)

        # WAN: sites + master on a PlanetLab-like latency matrix.
        hosts = cfg.site_names + ["master"]
        if cfg.device_class == "light":
            hosts = hosts + cfg.light_names
        latency = PlanetLabLatencyMatrix(
            hosts, seed=cfg.seed ^ 0x5EED,
            median_range=cfg.wan_median_range, sigma=cfg.wan_sigma,
        )
        self.wan = WANetwork(self.sim, self.rngs.stream("wan"), latency,
                             loss_rate=cfg.wan_loss_rate)
        self.wan.tracer = self.tracer

        self.master_daemon = BlockchainDaemon(
            self.sim, "master", self.wan, master_node, cfg.cost_model,
            self.rngs.stream("daemon-master"), verify_blocks=False,
            registry=self.registry, verify_pool=self.verify_pool,
        )
        if self.profiler is not None:
            self._attach_profiler(master_node)
            self.miner.obs = self.profiler

        modulation = LoRaModulation(spreading_factor=cfg.spreading_factor)
        registries = [RecipientRegistry() for _ in range(cfg.num_gateways)]

        for i, name in enumerate(cfg.site_names):
            self.sites.append(self._build_site(
                i, name, params, master_node, actor_keys[i], registries[i],
                modulation,
            ))

        # Full-mesh gossip.
        daemons = [self.master_daemon] + [site.daemon for site in self.sites]
        self._connect_full_mesh(daemons)

        if cfg.compact_blocks:
            self.compact_relays = [CompactBlockRelay(daemon)
                                   for daemon in daemons]
        if cfg.device_class == "light":
            self._build_light_tier(daemons, light_keys, registries,
                                   modulation)

        self._deploy_sensors(modulation)
        self._funding_baseline = {
            site.name: site.wallet.balance for site in self.sites
        }
        if cfg.consensus == "pos":
            self._setup_pos()
        else:
            self.sim.process(self._mining_loop())
        self._start_common_loops()

    def _build_site(self, i: int, name: str, params, source_node: FullNode,
                    actor_key: KeyPair, registry: RecipientRegistry,
                    modulation: LoRaModulation, chain_id: str = "",
                    region: int = 0) -> Site:
        """One gateway site: node, daemon, wallet, radio, both agents.

        ``source_node`` holds the bootstrap chain the site's node replays
        (the flat master's, or the site's region master's); ``chain_id``
        tags the agents with the sub-chain they settle on.
        """
        cfg = self.config
        node = FullNode(params, name, verify_scripts=False,
                        mempool_policy=cfg.mempool)
        self._replay_chain(source_node, node)
        daemon = BlockchainDaemon(
            self.sim, name, self.wan, node, cfg.cost_model,
            self.rngs.stream(f"daemon-{name}"),
            verify_blocks=cfg.verify_blocks,
            registry=self.registry, verify_pool=self.verify_pool,
        )
        if self.profiler is not None:
            self._attach_profiler(node)
        wallet = Wallet(node.chain, actor_key)
        wallet.watch_chain()
        directory = DirectoryView(node.chain)
        directory.follow()
        channel = RadioChannel(self.sim, self.rngs.stream(f"radio-{name}"),
                               kernel=cfg.sim_kernel)
        channel.obs = self.profiler
        gateway_radio = LoRaRadio(
            f"gw-{i}", channel, position=Position(0.0, 0.0),
            modulation=modulation, duty_cycle=cfg.gateway_duty_cycle,
            frequencies=(EU868_DOWNLINK_CHANNEL,), power_dbm=27.0,
        )
        gateway = GatewayAgent(
            self.sim, name, gateway_radio, daemon, wallet, directory,
            self.wan, cfg.cost_model, self.tracker,
            self.rngs.stream(f"gateway-{name}"), price=cfg.price,
            wait_for_confirmation=cfg.wait_for_confirmation,
            rsa_bits=cfg.rsa_bits,
            class_a=cfg.class_a_windows,
            chain_id=chain_id,
        )
        recipient = RecipientAgent(
            self.sim, name, daemon, wallet, registry, self.wan,
            cfg.cost_model, self.tracker,
            self.rngs.stream(f"recipient-{name}"),
            offer_fee=cfg.offer_fee,
            chain_id=chain_id,
        )
        return Site(
            index=i, name=name, node=node, daemon=daemon, wallet=wallet,
            directory=directory, channel=channel, gateway=gateway,
            recipient=recipient, registry=registry,
            region=region, chain_id=chain_id,
        )

    def _build_light_tier(self, daemons: list[BlockchainDaemon],
                          light_keys: list[KeyPair],
                          registries: list[RecipientRegistry],
                          modulation: LoRaModulation) -> None:
        """SPV clients, their serving full nodes, and the multicast legs.

        Every full daemon serves headers/filters/proofs; each actor's
        application server becomes a ``light-i`` WAN host whose serving
        peers are its home gateway, the next site over (failover), and
        the master.  With ``multicast_interval > 0`` the home gateway
        additionally multicasts signed header bundles to its light host.
        """
        cfg = self.config
        self.light_servers = [LightServer(daemon) for daemon in daemons]
        n = cfg.num_gateways
        for i in range(n):
            name = cfg.light_names[i]
            peers = [cfg.site_names[i]]
            backup = cfg.site_names[(i + 1) % n]
            if backup not in peers:
                peers.append(backup)
            peers.append("master")
            spv = SpvClient(
                self.sim, self.wan, name, tuple(peers),
                pow_bits=cfg.pow_bits,
                sync_interval=cfg.light_sync_interval,
                request_timeout=cfg.light_request_timeout,
                tracer=self.tracer,
            )
            wallet = LightWallet(light_keys[i])
            agent = LightRecipientAgent(
                self.sim, name, spv, wallet, registries[i],
                cfg.cost_model, self.tracker,
                self.rngs.stream(f"light-recipient-{i}"),
                offer_fee=cfg.offer_fee,
                refund_delta=cfg.locktime_grace,
            )
            self.light_clients.append(spv)
            self.light_agents.append(agent)
            if cfg.multicast_interval > 0:
                site = self.sites[i]
                self.multicasters.append(ChainMulticaster(
                    self.sim, self.wan, site.name, site.wallet.keypair,
                    site.node.chain, (name,), cfg.multicast_interval,
                    modulation=modulation,
                    duty_cycle=cfg.gateway_duty_cycle,
                    tracer=self.tracer,
                ))
                spv.attach_multicast(
                    site.wallet.keypair.public_key.to_bytes(),
                    cfg.multicast_interval,
                    verify_every=cfg.multicast_verify_every,
                    listen_window=cfg.multicast_listen_window,
                )

    @staticmethod
    def _connect_full_mesh(daemons: list[BlockchainDaemon]) -> None:
        for daemon in daemons:
            for other in daemons:
                if other is not daemon:
                    daemon.gossip.connect(other.name)

    def _start_common_loops(self) -> None:
        """Reclaim sweeps and anti-entropy sync, over every daemon."""
        cfg = self.config
        if cfg.reclaim_interval > 0:
            if self.light_agents:
                for agent in self.light_agents:
                    self.sim.process(self._light_reclaim_loop(agent))
            else:
                for site in self.sites:
                    self.sim.process(self._reclaim_loop(site))
        if cfg.sync_interval > 0:
            from repro.p2p.sync import SyncAgent
            self.sync_agents = [
                SyncAgent(self.sim, daemon, interval=cfg.sync_interval)
                for daemon in self.all_daemons().values()
            ]
            if self.profiler is not None:
                for agent in self.sync_agents:
                    agent.obs = self.profiler

    def _attach_profiler(self, node: FullNode) -> None:
        node.engine.obs = self.profiler
        node.mempool.obs = self.profiler

    def _bootstrap_chain(self, master_node: FullNode,
                         actor_keys: list[KeyPair],
                         extra_keys: tuple[KeyPair, ...] = (),
                         extra_endpoints: tuple[str, ...] = ()) -> None:
        """Mine the genesis era: maturity, funding, IP announcements.

        ``extra_keys``/``extra_endpoints`` fund and announce additional
        recipients (the light tier's hosts); empty in the default
        deployment, which keeps this path byte-identical to before.
        """
        cfg = self.config
        # One mature coinbase per funding transaction, plus headroom.
        for _ in range(cfg.num_gateways + len(extra_keys)
                       + cfg.coinbase_maturity + 1):
            self.miner.mine_and_connect(0.0)
        for key in [*actor_keys, *extra_keys]:
            funding = self.master_wallet.create_fanout(
                key.pubkey_hash, cfg.funding_coin_value, cfg.funding_coins,
            )
            decision = master_node.submit_transaction(funding)
            if not decision.accepted:
                raise ConfigurationError(
                    f"bootstrap funding rejected: {decision.reason}"
                )
        self._mine_until_mempool_empty(master_node)
        # Every recipient announces its endpoint on-chain before t=0, the
        # "each recipient ... must create a blockchain transaction
        # containing the information relative to its IP address" step.
        endpoints = cfg.site_names + list(extra_endpoints[:len(extra_keys)])
        for (key, endpoint) in zip([*actor_keys, *extra_keys], endpoints):
            scratch = Wallet(master_node.chain, key)
            scratch.refresh_from_utxo_set()
            payload = build_announcement_payload(key, endpoint)
            announcement = scratch.create_announcement(payload)
            decision = master_node.submit_transaction(announcement)
            if not decision.accepted:
                raise ConfigurationError(
                    f"bootstrap announcement rejected: {decision.reason}"
                )
        self._mine_until_mempool_empty(master_node)

    def _mine_until_mempool_empty(self, master_node: FullNode,
                                  miner: Optional[Miner] = None) -> None:
        """Mine bootstrap blocks until every pending tx confirms.

        With small ``max_block_size`` values a single block cannot carry
        all the funding fan-outs, so the bootstrap keeps mining.
        """
        if miner is None:
            miner = self.miner
        miner.mine_and_connect(0.0)
        guard = 0
        while len(master_node.mempool):
            miner.mine_and_connect(0.0)
            guard += 1
            if guard > 10_000:
                raise ConfigurationError(
                    "bootstrap transactions never fit a block; "
                    "max_block_size is too small"
                )

    @staticmethod
    def _replay_chain(source: FullNode, target: FullNode) -> None:
        """Initial block download: copy the bootstrap chain to a new node."""
        for _height, block in source.chain.iter_active_blocks(start_height=1):
            target.chain.add_block(block)

    # -- hierarchical assembly ---------------------------------------------------

    def _build_hierarchical(self, params) -> None:
        """Regional sub-chains anchored to a global settlement chain."""
        cfg = self.config
        topo = cfg.topology

        actor_keys = [
            KeyPair.generate(self.rngs.stream(f"actor-key-{i}"))
            for i in range(cfg.num_gateways)
        ]

        # WAN: every host — gateway sites, region masters, the anchor
        # master and each region's settlement node — on one latency
        # matrix; partitions can therefore cut region or anchor links
        # independently.
        master_names = [f"master-r{r}" for r in range(topo.regions)]
        anchor_names = [f"anchor-r{r}" for r in range(topo.regions)]
        hosts = cfg.site_names + master_names + ["anchor"] + anchor_names
        latency = PlanetLabLatencyMatrix(
            hosts, seed=cfg.seed ^ 0x5EED,
            median_range=cfg.wan_median_range, sigma=cfg.wan_sigma,
        )
        self.wan = WANetwork(self.sim, self.rngs.stream("wan"), latency,
                             loss_rate=cfg.wan_loss_rate)
        self.wan.tracer = self.tracer

        # Global settlement chain.  Every settlement engine carries its
        # own CheckpointRules, so each anchor node independently rejects
        # stale or regressing region digests.
        anchor_node = FullNode(params, "anchor", verify_scripts=False,
                               mempool_policy=self.config.mempool)
        anchor_node.engine.checkpoint_rules = CheckpointRules()
        anchor_key = KeyPair.generate(self.rngs.stream("anchor-master-key"))
        self.anchor_wallet = Wallet(anchor_node.chain, anchor_key)
        self.anchor_wallet.watch_chain()
        self.anchor_miner = Miner(
            chain=anchor_node.chain, mempool=anchor_node.mempool,
            reward_pubkey_hash=self.anchor_wallet.pubkey_hash,
        )
        settlement_keys = [
            KeyPair.generate(self.rngs.stream(f"anchor-key-{r}"))
            for r in range(topo.regions)
        ]
        self._bootstrap_settlement(anchor_node, settlement_keys)
        self.anchor_daemon = BlockchainDaemon(
            self.sim, "anchor", self.wan, anchor_node, cfg.cost_model,
            self.rngs.stream("daemon-anchor"), verify_blocks=False,
            registry=self.registry, verify_pool=self.verify_pool,
        )
        if self.profiler is not None:
            self._attach_profiler(anchor_node)
            self.anchor_miner.obs = self.profiler
        self.master_daemon = None  # hierarchical: no single flat master

        modulation = LoRaModulation(spreading_factor=cfg.spreading_factor)
        registries = [RecipientRegistry() for _ in range(cfg.num_gateways)]
        height_gauge = self.registry.gauge("federation.subchain_height",
                                           "region")

        for r in range(topo.regions):
            chain_id = f"region-{r}"
            region_indices = list(cfg.region_site_indices(r))

            # The region's own master: bootstraps and mines the sub-chain.
            master_name = master_names[r]
            master_node = FullNode(params, master_name, verify_scripts=False,
                                   mempool_policy=cfg.mempool)
            master_key = KeyPair.generate(
                self.rngs.stream(f"master-key-r{r}"))
            master_wallet = Wallet(master_node.chain, master_key)
            master_wallet.watch_chain()
            miner = Miner(chain=master_node.chain,
                          mempool=master_node.mempool,
                          reward_pubkey_hash=master_wallet.pubkey_hash)
            self._bootstrap_region_chain(master_node, miner, master_wallet,
                                         actor_keys, region_indices)
            master_daemon = BlockchainDaemon(
                self.sim, master_name, self.wan, master_node, cfg.cost_model,
                self.rngs.stream(f"daemon-{master_name}"),
                verify_blocks=False,
                registry=self.registry, verify_pool=self.verify_pool,
            )
            if self.profiler is not None:
                self._attach_profiler(master_node)
                miner.obs = self.profiler

            region_sites = [
                self._build_site(i, cfg.site_names[i], params, master_node,
                                 actor_keys[i], registries[i], modulation,
                                 chain_id=chain_id, region=r)
                for i in region_indices
            ]
            self.sites.extend(region_sites)

            # Region-scoped gossip: full mesh inside the region only.
            self._connect_full_mesh(
                [master_daemon] + [site.daemon for site in region_sites])

            # The region's settlement node + checkpoint agent.
            anchor_r_node = FullNode(params, anchor_names[r],
                                     verify_scripts=False,
                                     mempool_policy=cfg.mempool)
            anchor_r_node.engine.checkpoint_rules = CheckpointRules()
            self._replay_chain(anchor_node, anchor_r_node)
            anchor_r_daemon = BlockchainDaemon(
                self.sim, anchor_names[r], self.wan, anchor_r_node,
                cfg.cost_model, self.rngs.stream(f"daemon-{anchor_names[r]}"),
                verify_blocks=cfg.verify_blocks,
                registry=self.registry, verify_pool=self.verify_pool,
            )
            if self.profiler is not None:
                self._attach_profiler(anchor_r_node)
            anchor_r_wallet = Wallet(anchor_r_node.chain, settlement_keys[r])
            anchor_r_wallet.watch_chain()
            checkpoint_agent = CheckpointAgent(
                self.sim, r, master_daemon, anchor_r_daemon, anchor_r_wallet,
                cfg.cost_model, self.rngs.stream(f"checkpoint-r{r}"),
                interval=topo.checkpoint_interval, registry=self.registry,
            )
            checkpoint_agent.start()
            height_gauge.labels(region=str(r)).set(master_node.height)

            self.regions.append(Region(
                index=r, chain_id=chain_id, master_node=master_node,
                master_daemon=master_daemon, master_wallet=master_wallet,
                miner=miner, sites=region_sites,
                anchor_daemon=anchor_r_daemon, anchor_wallet=anchor_r_wallet,
                checkpoint_agent=checkpoint_agent,
            ))

        # Settlement mesh: the anchor master and every region's
        # settlement node, fully meshed (small by construction — one node
        # per region).
        self._connect_full_mesh(
            [self.anchor_daemon]
            + [region.anchor_daemon for region in self.regions])

        self._deploy_sensors(modulation)
        self._funding_baseline = {
            site.name: site.wallet.balance for site in self.sites
        }
        for region in self.regions:
            if cfg.consensus == "pos":
                self._setup_pos_region(region)
            else:
                self.sim.process(self._master_mining_loop(
                    region.master_daemon, region.miner, region.chain_id))
        self.sim.process(self._master_mining_loop(
            self.anchor_daemon, self.anchor_miner, "anchor"))
        self._start_common_loops()

    def _bootstrap_settlement(self, anchor_node: FullNode,
                              settlement_keys: list[KeyPair]) -> None:
        """Mine the settlement chain's genesis era; fund region wallets."""
        cfg = self.config
        for _ in range(len(settlement_keys) + cfg.coinbase_maturity + 1):
            self.anchor_miner.mine_and_connect(0.0)
        for key in settlement_keys:
            funding = self.anchor_wallet.create_fanout(
                key.pubkey_hash, cfg.funding_coin_value, cfg.funding_coins,
            )
            decision = anchor_node.submit_transaction(funding)
            if not decision.accepted:
                raise ConfigurationError(
                    f"settlement funding rejected: {decision.reason}"
                )
        self._mine_until_mempool_empty(anchor_node, self.anchor_miner)

    def _bootstrap_region_chain(self, master_node: FullNode, miner: Miner,
                                master_wallet: Wallet,
                                actor_keys: list[KeyPair],
                                region_indices: list[int]) -> None:
        """Mine a region sub-chain's genesis era.

        Funds the region's *own* actors, then publishes the IP
        announcements of **every** actor in the federation: a gateway
        resolving ``@R`` for a globally-roaming sensor looks the foreign
        recipient up on its *own* sub-chain.  Announcement payloads are
        actor-signed, so the region master's wallet can carry foreign
        actors' announcements — those actors hold no coins here.
        """
        cfg = self.config
        foreign = len(actor_keys) - len(region_indices)
        # Mature coins: one per funding fan-out + one per foreign
        # announcement the master carries, plus headroom.
        for _ in range(len(region_indices) + foreign
                       + cfg.coinbase_maturity + 1):
            miner.mine_and_connect(0.0)
        own = set(region_indices)
        for i in region_indices:
            funding = master_wallet.create_fanout(
                actor_keys[i].pubkey_hash, cfg.funding_coin_value,
                cfg.funding_coins,
            )
            decision = master_node.submit_transaction(funding)
            if not decision.accepted:
                raise ConfigurationError(
                    f"region funding rejected: {decision.reason}"
                )
        self._mine_until_mempool_empty(master_node, miner)
        for i, key in enumerate(actor_keys):
            payload = build_announcement_payload(key, cfg.site_names[i])
            if i in own:
                carrier = Wallet(master_node.chain, key)
                carrier.refresh_from_utxo_set()
            else:
                carrier = master_wallet
            announcement = carrier.create_announcement(payload)
            decision = master_node.submit_transaction(announcement)
            if not decision.accepted:
                raise ConfigurationError(
                    f"region announcement rejected: {decision.reason}"
                )
        self._mine_until_mempool_empty(master_node, miner)

    def _master_mining_loop(self, daemon: BlockchainDaemon, miner: Miner,
                            chain_id: str):
        """A dedicated master mines one chain every ``block_interval``."""
        while True:
            yield self.sim.timeout(self.config.block_interval)
            span = self.tracer.span("block.mine", host=daemon.name,
                                    region=chain_id)
            block = yield daemon.rpc(
                lambda: miner.mine_and_connect(self.sim.now)
            )
            span.end("ok", height=daemon.node.height,
                     txs=len(block.transactions))
            daemon.gossip.broadcast_block(block, parent=span)

    def _recipient_address(self, actor_index: int) -> str:
        """The @R sensors of actor ``i`` are provisioned with."""
        if self.light_agents:
            return self.light_agents[actor_index].address
        return self.sites[actor_index].recipient.address

    def _deploy_sensors(self, modulation: LoRaModulation) -> None:
        """Provision and place every end device in a foreign cell."""
        cfg = self.config
        placement_rng = self.rngs.stream("placement")
        for i in range(cfg.num_gateways):
            home = self.sites[i]
            # Flat: the classic (i + offset) % n rotation.  Hierarchical:
            # the topology's roaming policy decides whether the rotation
            # wraps inside the home region or across the federation.
            host_site = self.sites[cfg.recipient_site(i)]
            for j in range(cfg.sensors_per_gateway):
                device_id = f"dev-{i}-{j}"
                credentials = provision_device(
                    device_id, self._recipient_address(i), home.registry,
                    rng=self.rngs.stream(f"provision-{device_id}"),
                    rsa_bits=cfg.rsa_bits,
                )
                angle = placement_rng.uniform(0, 2 * math.pi)
                radius = cfg.cell_radius * math.sqrt(placement_rng.random())
                position = Position(radius * math.cos(angle),
                                    radius * math.sin(angle))
                if cfg.adaptive_data_rate:
                    from repro.lora.adr import select_spreading_factor
                    device_modulation = LoRaModulation(
                        spreading_factor=select_spreading_factor(
                            position.distance_to(Position(0.0, 0.0)),
                            host_site.channel.path_loss,
                        )
                    )
                else:
                    device_modulation = modulation
                radio = LoRaRadio(
                    device_id, host_site.channel, position=position,
                    modulation=device_modulation, duty_cycle=cfg.duty_cycle,
                )
                self.sensors.append(NodeAgent(
                    self.sim, credentials, radio, cfg.cost_model,
                    self.tracker, self.rngs.stream(f"node-{device_id}"),
                    key_response_timeout=cfg.key_response_timeout,
                    class_a=cfg.class_a_windows,
                ))

    def _mining_loop(self):
        """The master mines every ``block_interval`` seconds, forever."""
        while True:
            yield self.sim.timeout(self.config.block_interval)
            # One block = one trace: mining roots it, each gossip hop and
            # per-peer validation nests beneath.
            span = self.tracer.span("block.mine", host="master")
            block = yield self.master_daemon.rpc(
                lambda: self.miner.mine_and_connect(self.sim.now)
            )
            span.end("ok", height=self.master_daemon.node.height,
                     txs=len(block.transactions))
            self.master_daemon.gossip.broadcast_block(block, parent=span)

    # -- proof-of-stake mode (§6 future work) -----------------------------------

    def _setup_pos(self) -> None:
        """Gateway sites produce blocks via a stake-weighted slot lottery.

        Consensus rule enforced by every daemon: a block's coinbase must
        pay its slot's elected leader.  Bootstrap-era blocks (timestamp 0,
        mined by the master before the network went live) are exempt.
        """
        from repro.blockchain.pos import PoSProducer, StakeRegistry, slot_of

        registry = StakeRegistry(
            epoch_seed=f"bcwan-pos-{self.config.seed}".encode("utf-8"),
            slot_duration=self.config.block_interval,
        )
        leader_reward_hash: dict[str, bytes] = {}
        for site in self.sites:
            registry.register(site.name, site.wallet.keypair.public_key,
                              stake=100)
            leader_reward_hash[site.name] = site.wallet.pubkey_hash
        self.stake_registry = registry

        def pos_block_valid(block) -> bool:
            if block.header.timestamp <= 0.0:
                return True  # bootstrap era
            leader = registry.leader_for_slot(
                slot_of(block.header.timestamp, registry.slot_duration)
            )
            expected = leader_reward_hash[leader]
            coinbase_script = block.coinbase.outputs[0].script_pubkey
            elements = coinbase_script.elements
            return (len(elements) == 5 and isinstance(elements[2], bytes)
                    and elements[2] == expected)

        daemons = [self.master_daemon] + [site.daemon for site in self.sites]
        for daemon in daemons:
            daemon.block_validator = pos_block_valid

        self.pos_producers = []
        for site in self.sites:
            producer = PoSProducer(
                name=site.name,
                registry=registry,
                chain=site.node.chain,
                mempool=site.node.mempool,
                private_key=site.wallet.keypair.private_key,
                reward_pubkey_hash=site.wallet.pubkey_hash,
            )
            self.pos_producers.append(producer)
            self.sim.process(self._pos_production_loop(site, producer))

    def _pos_production_loop(self, site: Site, producer):
        """Wake at each slot boundary; produce when this site leads.

        Production goes through the site's own daemon, so a stalled
        gateway daemon delays its own blocks — the edge-node cost §6
        wants PoS to reduce, observable in the consensus ablation.
        """
        duration = self.config.block_interval
        while True:
            slot_index = int(self.sim.now // duration) + 1
            yield self.sim.timeout(slot_index * duration - self.sim.now + 0.05)
            if not producer.is_leader(self.sim.now):
                continue
            span = self.tracer.span("block.mine", host=site.name)
            produced = yield site.daemon.rpc(
                lambda: producer.try_produce(self.sim.now)
            )
            if produced is None:
                span.end("skipped", reason="not produced")
                continue
            block, _signature = produced
            span.end("ok", height=site.node.height,
                     txs=len(block.transactions))
            site.daemon.gossip.broadcast_block(block, parent=span)

    def _setup_pos_region(self, region: Region) -> None:
        """Per-region stake lottery: the region's sites take turns.

        Each region runs its *own* election (own epoch seed, own slot
        schedule) over its own sub-chain; the settlement chain stays
        master-mined by the anchor regardless.
        """
        from repro.blockchain.pos import PoSProducer, StakeRegistry, slot_of

        registry = StakeRegistry(
            epoch_seed=(f"bcwan-pos-{self.config.seed}-r{region.index}"
                        .encode("utf-8")),
            slot_duration=self.config.block_interval,
        )
        leader_reward_hash: dict[str, bytes] = {}
        for site in region.sites:
            registry.register(site.name, site.wallet.keypair.public_key,
                              stake=100)
            leader_reward_hash[site.name] = site.wallet.pubkey_hash

        def pos_block_valid(block) -> bool:
            if block.header.timestamp <= 0.0:
                return True  # bootstrap era
            leader = registry.leader_for_slot(
                slot_of(block.header.timestamp, registry.slot_duration)
            )
            expected = leader_reward_hash[leader]
            coinbase_script = block.coinbase.outputs[0].script_pubkey
            elements = coinbase_script.elements
            return (len(elements) == 5 and isinstance(elements[2], bytes)
                    and elements[2] == expected)

        daemons = [region.master_daemon] + [s.daemon for s in region.sites]
        for daemon in daemons:
            daemon.block_validator = pos_block_valid

        if not hasattr(self, "pos_producers"):
            self.pos_producers = []
        for site in region.sites:
            producer = PoSProducer(
                name=site.name,
                registry=registry,
                chain=site.node.chain,
                mempool=site.node.mempool,
                private_key=site.wallet.keypair.private_key,
                reward_pubkey_hash=site.wallet.pubkey_hash,
            )
            self.pos_producers.append(producer)
            self.sim.process(self._pos_production_loop(site, producer))

    def _reclaim_loop(self, site: Site):
        """Periodic sweep of expired, unclaimed key-release offers."""
        while True:
            yield self.sim.timeout(self.config.reclaim_interval)
            yield site.recipient.reclaim_expired()

    def _light_reclaim_loop(self, agent: LightRecipientAgent):
        """The light tier's refund sweep (synchronous — no daemon)."""
        while True:
            yield self.sim.timeout(self.config.reclaim_interval)
            agent.reclaim_expired()

    # -- failure injection --------------------------------------------------------

    def fail_gateway_radio(self, site_index: int) -> None:
        """The gateway's LoRa module dies: no more key responses.

        Sensors in its cell retry and give up; their exchanges fail
        without any money moving.
        """
        site = self.sites[site_index]
        site.channel.remove_listener(site.gateway.radio.name)

    def fail_gateway_claims(self, site_index: int) -> None:
        """The gateway's blockchain module dies after delivery.

        Deliveries keep flowing, recipients keep locking offers, but no
        claim ever appears — the scenario the Listing-1 refund branch
        (and ``reclaim_interval``) exists for.
        """
        site = self.sites[site_index]
        site.gateway._begin_claim = lambda offer_txid: None

    # -- workload ------------------------------------------------------------------

    def _sensor_loop(self, agent: NodeAgent, budget_check):
        cfg = self.config
        rng = self.rngs.stream(f"workload-{agent.device_id}")
        yield self.sim.timeout(rng.uniform(0, cfg.exchange_interval))
        while budget_check():
            self._exchanges_launched += 1
            sequence = self._exchanges_launched
            reading = f"{sequence:08d}{agent.device_id[-4:]}".encode()[:cfg.payload_bytes]
            agent.start_exchange(reading)
            yield self.sim.timeout(rng.expovariate(1.0 / cfg.exchange_interval))

    def run(self, num_exchanges: int = 100,
            max_duration: Optional[float] = None) -> RunReport:
        """Drive the workload until ``num_exchanges`` exchanges settle.

        ``max_duration`` (simulated seconds) caps runaway runs; it defaults
        to a generous multiple of the expected workload duration.
        """
        cfg = self.config
        if max_duration is None:
            expected = (num_exchanges / max(cfg.total_sensors, 1)
                        * cfg.exchange_interval)
            max_duration = max(600.0, expected * 6 + 300.0)

        def budget_check() -> bool:
            return self._exchanges_launched < num_exchanges

        for agent in self.sensors:
            self.sim.process(self._sensor_loop(agent, budget_check))

        check_interval = max(cfg.block_interval, 5.0)
        settle_grace = max(120.0, 4 * cfg.block_interval)
        last_progress_time = 0.0
        last_terminal = -1
        while self.sim.now < max_duration:
            self.sim.run(until=self.sim.now + check_interval)
            records = self.tracker.records()
            terminal = sum(1 for r in records if r.status != "pending")
            if terminal != last_terminal:
                last_terminal = terminal
                last_progress_time = self.sim.now
            if self._exchanges_launched >= num_exchanges:
                # Covers num_exchanges=0 (a sweep's empty cell): no records
                # means nothing to settle, terminate on the first check.
                if terminal >= len(records):
                    break
                # Lost radio frames leave exchanges dangling (BcWAN has no
                # link-layer ack for the data uplink); give up on them
                # once nothing has settled for a grace period.
                if self.sim.now - last_progress_time > settle_grace:
                    for record in records:
                        if record.status == "pending":
                            self.tracker.fail(
                                record, "unresolved at run end (frame lost?)"
                            )
                    break
        return self.report()

    def close(self) -> None:
        """Release host resources (the verification worker processes).

        Safe to call repeatedly; a closed network keeps simulating with
        serial verification.  Simulation state is untouched.
        """
        if self.verify_pool is not None:
            self.verify_pool.shutdown()

    def __enter__(self) -> "BcWANNetwork":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def all_daemons(self) -> dict[str, BlockchainDaemon]:
        """Every daemon in the deployment, by host name."""
        if not self.regions:
            mapping = {"master": self.master_daemon}
            mapping.update((site.name, site.daemon) for site in self.sites)
            return mapping
        mapping = {}
        for region in self.regions:
            mapping[region.master_daemon.name] = region.master_daemon
            mapping.update(
                (site.name, site.daemon) for site in region.sites)
        mapping["anchor"] = self.anchor_daemon
        for region in self.regions:
            mapping[region.anchor_daemon.name] = region.anchor_daemon
        return mapping

    def convergence_groups(self) -> dict[str, dict[str, BlockchainDaemon]]:
        """Daemons grouped by the chain they follow.

        Flat: one ``"chain"`` group.  Hierarchical: one group per region
        sub-chain plus the ``"anchor"`` settlement group — the shape
        :func:`repro.chaos.assert_hierarchy_converged` consumes.
        """
        if not self.regions:
            return {"chain": self.all_daemons()}
        groups: dict[str, dict[str, BlockchainDaemon]] = {}
        for region in self.regions:
            group = {region.master_daemon.name: region.master_daemon}
            group.update((site.name, site.daemon) for site in region.sites)
            groups[region.chain_id] = group
        anchor_group = {"anchor": self.anchor_daemon}
        anchor_group.update(
            (region.anchor_daemon.name, region.anchor_daemon)
            for region in self.regions)
        groups["anchor"] = anchor_group
        return groups

    def report(self) -> RunReport:
        records = self.tracker.records()
        completed = [r for r in records if r.completed]
        failed = [r for r in records if r.status == "failed"]
        rewards = {
            site.name: site.gateway.rewards_claimed for site in self.sites
        }
        if self.light_agents:
            spend = {
                agent.name: agent.payments_made * self.config.price
                for agent in self.light_agents
            }
        else:
            spend = {
                site.name: site.recipient.payments_made * self.config.price
                for site in self.sites
            }
        # Flat: the single chain's height.  Hierarchical: the settlement
        # chain's height — per-region heights live on region.master_node.
        if not self.regions:
            chain_height = self.master_daemon.node.height
        else:
            chain_height = self.anchor_daemon.node.height
        self._sync_wan_gauges(len(completed), chain_height)
        return RunReport(
            exchanges_launched=self._exchanges_launched,
            completed=len(completed),
            failed=len(failed),
            pending=len(records) - len(completed) - len(failed),
            duration=self.sim.now,
            chain_height=chain_height,
            latencies=self.tracker.latencies(),
            gateway_rewards=rewards,
            recipient_spend=spend,
            daemon_stats={
                name: daemon.stats
                for name, daemon in self.all_daemons().items()
            },
            frames_lost_collision=sum(
                site.channel.frames_lost_collision for site in self.sites
            ),
            frames_lost_sensitivity=sum(
                site.channel.frames_lost_sensitivity for site in self.sites
            ),
            legs=leg_breakdown(self.tracer) if self.tracer.enabled else {},
        )

    def _sync_wan_gauges(self, completed: int, chain_height: int) -> None:
        """Publish the WAN-economy headline metrics to the registry."""
        if completed > 0:
            self.registry.gauge("wan.bytes_per_exchange").set(
                self.wan.bytes_modeled / completed)
        if chain_height > 0:
            block_types = ("BlockMessage", "BlocksMessage",
                           "CompactBlockMessage", "GetBlockTxnMessage",
                           "BlockTxnMessage")
            block_bytes = sum(self.wan.bytes_by_type.get(name, 0)
                              for name in block_types)
            self.registry.gauge("wan.bytes_per_block").set(
                block_bytes / chain_height)

    # -- observability exports ----------------------------------------------------

    def export_trace(self, include_metrics: bool = True) -> str:
        """The run's deterministic JSONL trace (and metrics) export."""
        return export_trace_jsonl(
            self.tracer, self.registry if include_metrics else None)

    def format_breakdown(self) -> str:
        """Human-readable Fig. 5/6-style per-leg latency table."""
        return format_breakdown(self.tracer)
