"""Full BcWAN deployment assembly — the paper's testbed in one object.

:class:`BcWANNetwork` builds the complete system from a
:class:`~repro.core.config.NetworkConfig`:

* a master node (the paper's AWS EC2 instance) that bootstraps the chain,
  funds every actor, and mines on the configured interval — mining is
  disabled everywhere else, exactly like the PoC;
* one *site* per gateway (the PlanetLab nodes), each running a full node,
  a BcWAN daemon, a wallet, a directory view, a LoRa gateway radio, a
  :class:`GatewayAgent` and a :class:`RecipientAgent`;
* sensors provisioned to their home actor but deployed in a *foreign*
  gateway's radio cell (the roaming scenario BcWAN exists for);
* a PlanetLab-like WAN between all sites.

``run(num_exchanges=2000)`` drives the workload of section 5.2 and
returns a :class:`RunReport` with the latency distribution of Fig. 5/6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.miner import Miner
from repro.blockchain.node import FullNode
from repro.blockchain.wallet import Wallet
from repro.core.config import NetworkConfig
from repro.core.daemon import BlockchainDaemon, DaemonStats
from repro.core.directory import DirectoryView, build_announcement_payload
from repro.core.gateway_agent import GatewayAgent
from repro.core.metrics import ExchangeTracker
from repro.core.node_agent import NodeAgent
from repro.core.provisioning import RecipientRegistry, provision_device
from repro.core.recipient import RecipientAgent
from repro.crypto.keys import KeyPair
from repro.errors import ConfigurationError
from repro.lora.channel import Position, RadioChannel
from repro.obs.export import (export_trace_jsonl, format_breakdown,
                              leg_breakdown)
from repro.obs.profile import HotPathProfiler
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.lora.device import EU868_DOWNLINK_CHANNEL, LoRaRadio
from repro.lora.phy import LoRaModulation
from repro.p2p.network import WANetwork
from repro.sim.core import Simulator
from repro.sim.latency import PlanetLabLatencyMatrix
from repro.sim.rng import RngRegistry
from repro.sim.trace import Summary, histogram

__all__ = ["BcWANNetwork", "Site", "RunReport"]


@dataclass
class Site:
    """Everything running at one gateway site (one actor)."""

    index: int
    name: str
    node: FullNode
    daemon: BlockchainDaemon
    wallet: Wallet
    directory: DirectoryView
    channel: RadioChannel
    gateway: GatewayAgent
    recipient: RecipientAgent
    registry: RecipientRegistry


@dataclass
class RunReport:
    """Results of one workload run."""

    exchanges_launched: int
    completed: int
    failed: int
    pending: int
    duration: float
    chain_height: int
    latencies: list[float]
    gateway_rewards: dict[str, int]
    recipient_spend: dict[str, int]
    daemon_stats: dict[str, DaemonStats]
    frames_lost_collision: int
    frames_lost_sensitivity: int
    # Per-leg latency summaries derived from spans (uplink / publication
    # / payment / decryption / total); empty when tracing was off.
    legs: dict[str, Summary] = field(default_factory=dict)

    @property
    def mean_latency(self) -> float:
        # NaN-free on empty, matching the Summary.of([]) convention.
        if not self.latencies:
            return 0.0
        return sum(self.latencies) / len(self.latencies)

    @property
    def summary(self) -> Summary:
        return Summary.of(self.latencies)

    def latency_histogram(self, bins: int = 20):
        return histogram(self.latencies, bins=bins)

    def format(self) -> str:
        lines = [
            f"exchanges: {self.exchanges_launched} launched, "
            f"{self.completed} completed, {self.failed} failed, "
            f"{self.pending} pending",
            f"simulated duration: {self.duration:.1f} s, "
            f"chain height: {self.chain_height}",
        ]
        if self.latencies:
            lines.append(f"latency: {self.summary.format()}")
        if self.legs and self.legs.get("total") and self.legs["total"].count:
            lines.append("per-leg breakdown (from spans):")
            for leg in ("uplink", "publication", "payment", "decryption",
                        "total"):
                summary = self.legs[leg]
                lines.append(f"  {leg:<12} {summary.format()}")
        return "\n".join(lines)


class BcWANNetwork:
    """A fully-assembled BcWAN federation."""

    def __init__(self, config: Optional[NetworkConfig] = None) -> None:
        self.config = config or NetworkConfig()
        self.rngs = RngRegistry(self.config.seed)
        self.sim = Simulator()
        # The observability spine: one registry and one tracer for the
        # whole deployment.  Trace/span ids are minted in span-creation
        # order, so same-seed runs export byte-identical JSONL.
        self.registry = MetricsRegistry()
        self.tracer = Tracer(self.sim, enabled=self.config.tracing)
        self.profiler = (HotPathProfiler()
                         if self.config.profile_hot_paths else None)
        self.tracker = ExchangeTracker(self.tracer)
        self.sites: list[Site] = []
        self.sensors: list[NodeAgent] = []
        self._exchanges_launched = 0
        self._build()

    # -- construction -----------------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        params = cfg.chain_params()

        # One shared script-verification pool for the whole federation —
        # the daemons all run on one host here, so one set of worker
        # processes serves every engine.  None keeps everything serial.
        self.verify_pool = None
        if cfg.parallel_workers > 0:
            from repro.parallel.pool import VerifyPool
            self.verify_pool = VerifyPool(cfg.parallel_workers,
                                          registry=self.registry)

        # Master (the AWS EC2 instance): bootstraps and mines.
        # Script re-verification on block connect is disabled on every
        # node for CPU economy — scripts are fully verified at mempool
        # admission on all six nodes; the *timing* of Fig. 6's block
        # verification is modeled by the daemon stall.
        master_node = FullNode(params, "master", verify_scripts=False)
        master_key = KeyPair.generate(self.rngs.stream("master-key"))
        self.master_wallet = Wallet(master_node.chain, master_key)
        self.master_wallet.watch_chain()
        self.miner = Miner(chain=master_node.chain, mempool=master_node.mempool,
                           reward_pubkey_hash=self.master_wallet.pubkey_hash)

        actor_keys = [
            KeyPair.generate(self.rngs.stream(f"actor-key-{i}"))
            for i in range(cfg.num_gateways)
        ]
        self._bootstrap_chain(master_node, actor_keys)

        # WAN: sites + master on a PlanetLab-like latency matrix.
        hosts = cfg.site_names + ["master"]
        latency = PlanetLabLatencyMatrix(
            hosts, seed=cfg.seed ^ 0x5EED,
            median_range=cfg.wan_median_range, sigma=cfg.wan_sigma,
        )
        self.wan = WANetwork(self.sim, self.rngs.stream("wan"), latency,
                             loss_rate=cfg.wan_loss_rate)
        self.wan.tracer = self.tracer

        self.master_daemon = BlockchainDaemon(
            self.sim, "master", self.wan, master_node, cfg.cost_model,
            self.rngs.stream("daemon-master"), verify_blocks=False,
            registry=self.registry, verify_pool=self.verify_pool,
        )
        if self.profiler is not None:
            self._attach_profiler(master_node)
            self.miner.obs = self.profiler

        modulation = LoRaModulation(spreading_factor=cfg.spreading_factor)
        registries = [RecipientRegistry() for _ in range(cfg.num_gateways)]

        for i, name in enumerate(cfg.site_names):
            node = FullNode(params, name, verify_scripts=False)
            self._replay_chain(master_node, node)
            daemon = BlockchainDaemon(
                self.sim, name, self.wan, node, cfg.cost_model,
                self.rngs.stream(f"daemon-{name}"),
                verify_blocks=cfg.verify_blocks,
                registry=self.registry, verify_pool=self.verify_pool,
            )
            if self.profiler is not None:
                self._attach_profiler(node)
            wallet = Wallet(node.chain, actor_keys[i])
            wallet.watch_chain()
            directory = DirectoryView(node.chain)
            directory.follow()
            channel = RadioChannel(self.sim, self.rngs.stream(f"radio-{name}"))
            gateway_radio = LoRaRadio(
                f"gw-{i}", channel, position=Position(0.0, 0.0),
                modulation=modulation, duty_cycle=cfg.gateway_duty_cycle,
                frequencies=(EU868_DOWNLINK_CHANNEL,), power_dbm=27.0,
            )
            gateway = GatewayAgent(
                self.sim, name, gateway_radio, daemon, wallet, directory,
                self.wan, cfg.cost_model, self.tracker,
                self.rngs.stream(f"gateway-{name}"), price=cfg.price,
                wait_for_confirmation=cfg.wait_for_confirmation,
                rsa_bits=cfg.rsa_bits,
                class_a=cfg.class_a_windows,
            )
            recipient = RecipientAgent(
                self.sim, name, daemon, wallet, registries[i], self.wan,
                cfg.cost_model, self.tracker,
                self.rngs.stream(f"recipient-{name}"),
                offer_fee=cfg.offer_fee,
            )
            self.sites.append(Site(
                index=i, name=name, node=node, daemon=daemon, wallet=wallet,
                directory=directory, channel=channel, gateway=gateway,
                recipient=recipient, registry=registries[i],
            ))

        # Full-mesh gossip.
        daemons = [self.master_daemon] + [site.daemon for site in self.sites]
        for daemon in daemons:
            for other in daemons:
                if other is not daemon:
                    daemon.gossip.connect(other.name)

        self._deploy_sensors(modulation)
        self._funding_baseline = {
            site.name: site.wallet.balance for site in self.sites
        }
        if cfg.consensus == "pos":
            self._setup_pos()
        else:
            self.sim.process(self._mining_loop())
        if cfg.reclaim_interval > 0:
            for site in self.sites:
                self.sim.process(self._reclaim_loop(site))
        if cfg.sync_interval > 0:
            from repro.p2p.sync import SyncAgent
            self.sync_agents = [
                SyncAgent(self.sim, daemon, interval=cfg.sync_interval)
                for daemon in [self.master_daemon]
                + [site.daemon for site in self.sites]
            ]
            if self.profiler is not None:
                for agent in self.sync_agents:
                    agent.obs = self.profiler

    def _attach_profiler(self, node: FullNode) -> None:
        node.engine.obs = self.profiler
        node.mempool.obs = self.profiler

    def _bootstrap_chain(self, master_node: FullNode,
                         actor_keys: list[KeyPair]) -> None:
        """Mine the genesis era: maturity, funding, IP announcements."""
        cfg = self.config
        # One mature coinbase per funding transaction, plus headroom.
        for _ in range(cfg.num_gateways + cfg.coinbase_maturity + 1):
            self.miner.mine_and_connect(0.0)
        for key in actor_keys:
            funding = self.master_wallet.create_fanout(
                key.pubkey_hash, cfg.funding_coin_value, cfg.funding_coins,
            )
            decision = master_node.submit_transaction(funding)
            if not decision.accepted:
                raise ConfigurationError(
                    f"bootstrap funding rejected: {decision.reason}"
                )
        self._mine_until_mempool_empty(master_node)
        # Every recipient announces its endpoint on-chain before t=0, the
        # "each recipient ... must create a blockchain transaction
        # containing the information relative to its IP address" step.
        for i, key in enumerate(actor_keys):
            scratch = Wallet(master_node.chain, key)
            scratch.refresh_from_utxo_set()
            payload = build_announcement_payload(key, cfg.site_names[i])
            announcement = scratch.create_announcement(payload)
            decision = master_node.submit_transaction(announcement)
            if not decision.accepted:
                raise ConfigurationError(
                    f"bootstrap announcement rejected: {decision.reason}"
                )
        self._mine_until_mempool_empty(master_node)

    def _mine_until_mempool_empty(self, master_node: FullNode) -> None:
        """Mine bootstrap blocks until every pending tx confirms.

        With small ``max_block_size`` values a single block cannot carry
        all the funding fan-outs, so the bootstrap keeps mining.
        """
        self.miner.mine_and_connect(0.0)
        guard = 0
        while len(master_node.mempool):
            self.miner.mine_and_connect(0.0)
            guard += 1
            if guard > 10_000:
                raise ConfigurationError(
                    "bootstrap transactions never fit a block; "
                    "max_block_size is too small"
                )

    @staticmethod
    def _replay_chain(source: FullNode, target: FullNode) -> None:
        """Initial block download: copy the bootstrap chain to a new node."""
        for _height, block in source.chain.iter_active_blocks(start_height=1):
            target.chain.add_block(block)

    def _deploy_sensors(self, modulation: LoRaModulation) -> None:
        """Provision and place every end device in a foreign cell."""
        cfg = self.config
        placement_rng = self.rngs.stream("placement")
        for i in range(cfg.num_gateways):
            home = self.sites[i]
            host_site = self.sites[(i + cfg.roaming_offset) % cfg.num_gateways]
            for j in range(cfg.sensors_per_gateway):
                device_id = f"dev-{i}-{j}"
                credentials = provision_device(
                    device_id, home.recipient.address, home.registry,
                    rng=self.rngs.stream(f"provision-{device_id}"),
                    rsa_bits=cfg.rsa_bits,
                )
                angle = placement_rng.uniform(0, 2 * math.pi)
                radius = cfg.cell_radius * math.sqrt(placement_rng.random())
                position = Position(radius * math.cos(angle),
                                    radius * math.sin(angle))
                if cfg.adaptive_data_rate:
                    from repro.lora.adr import select_spreading_factor
                    device_modulation = LoRaModulation(
                        spreading_factor=select_spreading_factor(
                            position.distance_to(Position(0.0, 0.0)),
                            host_site.channel.path_loss,
                        )
                    )
                else:
                    device_modulation = modulation
                radio = LoRaRadio(
                    device_id, host_site.channel, position=position,
                    modulation=device_modulation, duty_cycle=cfg.duty_cycle,
                )
                self.sensors.append(NodeAgent(
                    self.sim, credentials, radio, cfg.cost_model,
                    self.tracker, self.rngs.stream(f"node-{device_id}"),
                    key_response_timeout=cfg.key_response_timeout,
                    class_a=cfg.class_a_windows,
                ))

    def _mining_loop(self):
        """The master mines every ``block_interval`` seconds, forever."""
        while True:
            yield self.sim.timeout(self.config.block_interval)
            # One block = one trace: mining roots it, each gossip hop and
            # per-peer validation nests beneath.
            span = self.tracer.span("block.mine", host="master")
            block = yield self.master_daemon.rpc(
                lambda: self.miner.mine_and_connect(self.sim.now)
            )
            span.end("ok", height=self.master_daemon.node.height,
                     txs=len(block.transactions))
            self.master_daemon.gossip.broadcast_block(block, parent=span)

    # -- proof-of-stake mode (§6 future work) -----------------------------------

    def _setup_pos(self) -> None:
        """Gateway sites produce blocks via a stake-weighted slot lottery.

        Consensus rule enforced by every daemon: a block's coinbase must
        pay its slot's elected leader.  Bootstrap-era blocks (timestamp 0,
        mined by the master before the network went live) are exempt.
        """
        from repro.blockchain.pos import PoSProducer, StakeRegistry, slot_of

        registry = StakeRegistry(
            epoch_seed=f"bcwan-pos-{self.config.seed}".encode("utf-8"),
            slot_duration=self.config.block_interval,
        )
        leader_reward_hash: dict[str, bytes] = {}
        for site in self.sites:
            registry.register(site.name, site.wallet.keypair.public_key,
                              stake=100)
            leader_reward_hash[site.name] = site.wallet.pubkey_hash
        self.stake_registry = registry

        def pos_block_valid(block) -> bool:
            if block.header.timestamp <= 0.0:
                return True  # bootstrap era
            leader = registry.leader_for_slot(
                slot_of(block.header.timestamp, registry.slot_duration)
            )
            expected = leader_reward_hash[leader]
            coinbase_script = block.coinbase.outputs[0].script_pubkey
            elements = coinbase_script.elements
            return (len(elements) == 5 and isinstance(elements[2], bytes)
                    and elements[2] == expected)

        daemons = [self.master_daemon] + [site.daemon for site in self.sites]
        for daemon in daemons:
            daemon.block_validator = pos_block_valid

        self.pos_producers = []
        for site in self.sites:
            producer = PoSProducer(
                name=site.name,
                registry=registry,
                chain=site.node.chain,
                mempool=site.node.mempool,
                private_key=site.wallet.keypair.private_key,
                reward_pubkey_hash=site.wallet.pubkey_hash,
            )
            self.pos_producers.append(producer)
            self.sim.process(self._pos_production_loop(site, producer))

    def _pos_production_loop(self, site: Site, producer):
        """Wake at each slot boundary; produce when this site leads.

        Production goes through the site's own daemon, so a stalled
        gateway daemon delays its own blocks — the edge-node cost §6
        wants PoS to reduce, observable in the consensus ablation.
        """
        duration = self.config.block_interval
        while True:
            slot_index = int(self.sim.now // duration) + 1
            yield self.sim.timeout(slot_index * duration - self.sim.now + 0.05)
            if not producer.is_leader(self.sim.now):
                continue
            span = self.tracer.span("block.mine", host=site.name)
            produced = yield site.daemon.rpc(
                lambda: producer.try_produce(self.sim.now)
            )
            if produced is None:
                span.end("skipped", reason="not produced")
                continue
            block, _signature = produced
            span.end("ok", height=site.node.height,
                     txs=len(block.transactions))
            site.daemon.gossip.broadcast_block(block, parent=span)

    def _reclaim_loop(self, site: Site):
        """Periodic sweep of expired, unclaimed key-release offers."""
        while True:
            yield self.sim.timeout(self.config.reclaim_interval)
            yield site.recipient.reclaim_expired()

    # -- failure injection --------------------------------------------------------

    def fail_gateway_radio(self, site_index: int) -> None:
        """The gateway's LoRa module dies: no more key responses.

        Sensors in its cell retry and give up; their exchanges fail
        without any money moving.
        """
        site = self.sites[site_index]
        site.channel.remove_listener(site.gateway.radio.name)

    def fail_gateway_claims(self, site_index: int) -> None:
        """The gateway's blockchain module dies after delivery.

        Deliveries keep flowing, recipients keep locking offers, but no
        claim ever appears — the scenario the Listing-1 refund branch
        (and ``reclaim_interval``) exists for.
        """
        site = self.sites[site_index]
        site.gateway._begin_claim = lambda offer_txid: None

    # -- workload ------------------------------------------------------------------

    def _sensor_loop(self, agent: NodeAgent, budget_check):
        cfg = self.config
        rng = self.rngs.stream(f"workload-{agent.device_id}")
        yield self.sim.timeout(rng.uniform(0, cfg.exchange_interval))
        while budget_check():
            self._exchanges_launched += 1
            sequence = self._exchanges_launched
            reading = f"{sequence:08d}{agent.device_id[-4:]}".encode()[:cfg.payload_bytes]
            agent.start_exchange(reading)
            yield self.sim.timeout(rng.expovariate(1.0 / cfg.exchange_interval))

    def run(self, num_exchanges: int = 100,
            max_duration: Optional[float] = None) -> RunReport:
        """Drive the workload until ``num_exchanges`` exchanges settle.

        ``max_duration`` (simulated seconds) caps runaway runs; it defaults
        to a generous multiple of the expected workload duration.
        """
        cfg = self.config
        if max_duration is None:
            expected = (num_exchanges / max(cfg.total_sensors, 1)
                        * cfg.exchange_interval)
            max_duration = max(600.0, expected * 6 + 300.0)

        def budget_check() -> bool:
            return self._exchanges_launched < num_exchanges

        for agent in self.sensors:
            self.sim.process(self._sensor_loop(agent, budget_check))

        check_interval = max(cfg.block_interval, 5.0)
        settle_grace = max(120.0, 4 * cfg.block_interval)
        last_progress_time = 0.0
        last_terminal = -1
        while self.sim.now < max_duration:
            self.sim.run(until=self.sim.now + check_interval)
            records = self.tracker.records()
            terminal = sum(1 for r in records if r.status != "pending")
            if terminal != last_terminal:
                last_terminal = terminal
                last_progress_time = self.sim.now
            if self._exchanges_launched >= num_exchanges:
                if records and terminal >= len(records):
                    break
                # Lost radio frames leave exchanges dangling (BcWAN has no
                # link-layer ack for the data uplink); give up on them
                # once nothing has settled for a grace period.
                if self.sim.now - last_progress_time > settle_grace:
                    for record in records:
                        if record.status == "pending":
                            self.tracker.fail(
                                record, "unresolved at run end (frame lost?)"
                            )
                    break
        return self.report()

    def close(self) -> None:
        """Release host resources (the verification worker processes).

        Safe to call repeatedly; a closed network keeps simulating with
        serial verification.  Simulation state is untouched.
        """
        if self.verify_pool is not None:
            self.verify_pool.shutdown()

    def __enter__(self) -> "BcWANNetwork":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def report(self) -> RunReport:
        records = self.tracker.records()
        completed = [r for r in records if r.completed]
        failed = [r for r in records if r.status == "failed"]
        rewards = {
            site.name: site.gateway.rewards_claimed for site in self.sites
        }
        spend = {
            site.name: site.recipient.payments_made * self.config.price
            for site in self.sites
        }
        return RunReport(
            exchanges_launched=self._exchanges_launched,
            completed=len(completed),
            failed=len(failed),
            pending=len(records) - len(completed) - len(failed),
            duration=self.sim.now,
            chain_height=self.master_daemon.node.height,
            latencies=self.tracker.latencies(),
            gateway_rewards=rewards,
            recipient_spend=spend,
            daemon_stats={
                name: daemon.stats for name, daemon in
                [("master", self.master_daemon)]
                + [(site.name, site.daemon) for site in self.sites]
            },
            frames_lost_collision=sum(
                site.channel.frames_lost_collision for site in self.sites
            ),
            frames_lost_sensitivity=sum(
                site.channel.frames_lost_sensitivity for site in self.sites
            ),
            legs=leg_breakdown(self.tracer) if self.tracer.enabled else {},
        )

    # -- observability exports ----------------------------------------------------

    def export_trace(self, include_metrics: bool = True) -> str:
        """The run's deterministic JSONL trace (and metrics) export."""
        return export_trace_jsonl(
            self.tracer, self.registry if include_metrics else None)

    def format_breakdown(self) -> str:
        """Human-readable Fig. 5/6-style per-leg latency table."""
        return format_breakdown(self.tracer)
