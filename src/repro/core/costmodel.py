"""Processing-time model for the simulated testbed.

Crypto and daemon operations execute *for real* in this reproduction
(correctness), but their wall-clock cost on our machine says nothing about
the paper's hardware (a Nucleo-144 node, Raspberry Pi gateways, 4-core
512 MB PlanetLab VMs, a Multichain daemon answering JSON-RPC).  The
simulator therefore charges each operation a modeled duration from this
cost model.

The defaults are calibrated so that the end-to-end no-verification
exchange reproduces the paper's Fig. 5 mean of ~1.6 s with the paper's
workload; they decompose into per-leg costs justified in DESIGN.md.
Every field can be overridden for ablations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Mean processing times in seconds for each modeled operation.

    Sampled durations are lognormal around the mean with shape
    ``jitter_sigma`` (heavy-ish tail, like real daemon service times); set
    ``jitter_sigma=0`` for deterministic costs.

    Node (Nucleo-144, STM32F746 @216 MHz, software crypto):

    :param node_aes_encrypt: AES-256-CBC over one or two blocks.
    :param node_rsa_encrypt: RSA-512 public-key wrap of the 34-byte bundle.
    :param node_rsa_sign: RSA-512 private-key signature over (Em, ePk).

    Gateway (Raspberry Pi + separate Multichain VM):

    :param gateway_rsa_keygen: ephemeral RSA-512 key-pair generation.
    :param gateway_frame_handling: radio-frame parse/dispatch.
    :param daemon_rpc: one BcWAN-daemon → Multichain JSON-RPC round
        (create/sign/send a transaction, scan for one).
    :param daemon_lookup: blockchain directory scan for a recipient IP.
    :param daemon_tx_process: admitting a gossiped transaction.
    :param daemon_block_process: block connect without script verification.

    Recipient (application server):

    :param recipient_rsa_verify: RSA-512 signature check.
    :param recipient_unwrap: RSA-512 private decryption plus AES decrypt.
    """

    node_aes_encrypt: float = 0.004
    node_rsa_encrypt: float = 0.012
    node_rsa_sign: float = 0.160
    gateway_rsa_keygen: float = 0.100
    gateway_frame_handling: float = 0.003
    daemon_rpc: float = 0.120
    daemon_lookup: float = 0.040
    daemon_tx_process: float = 0.006
    daemon_block_process: float = 0.035
    recipient_rsa_verify: float = 0.009
    recipient_unwrap: float = 0.025
    jitter_sigma: float = 0.18

    def __post_init__(self) -> None:
        for name in (
            "node_aes_encrypt", "node_rsa_encrypt", "node_rsa_sign",
            "gateway_rsa_keygen", "gateway_frame_handling", "daemon_rpc",
            "daemon_lookup", "daemon_tx_process", "daemon_block_process",
            "recipient_rsa_verify", "recipient_unwrap",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"negative cost: {name}")
        if self.jitter_sigma < 0:
            raise ConfigurationError(
                f"jitter sigma must be non-negative: {self.jitter_sigma}"
            )

    def sample(self, mean: float, rng: Optional[random.Random] = None) -> float:
        """One sampled duration around ``mean``."""
        if mean <= 0:
            return 0.0
        if self.jitter_sigma == 0 or rng is None:
            return mean
        import math
        # Lognormal with the requested mean: mu = ln(mean) - sigma^2/2.
        mu = math.log(mean) - self.jitter_sigma ** 2 / 2
        return rng.lognormvariate(mu, self.jitter_sigma)

    def scaled(self, factor: float) -> "CostModel":
        """A copy with every mean multiplied by ``factor`` (calibration)."""
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive: {factor}")
        fields = {
            name: getattr(self, name) * factor
            for name in (
                "node_aes_encrypt", "node_rsa_encrypt", "node_rsa_sign",
                "gateway_rsa_keygen", "gateway_frame_handling", "daemon_rpc",
                "daemon_lookup", "daemon_tx_process", "daemon_block_process",
                "recipient_rsa_verify", "recipient_unwrap",
            )
        }
        return replace(self, **fields)
