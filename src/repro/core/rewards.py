"""Delivery pricing — the "fixed or negotiated" output of Fig. 3 step 9.

The paper leaves the payment amount open: "The recipient creates a
transaction in the Blockchain with a given output (**fixed or negotiated
with the gateway**)".  This module supplies both:

* :class:`FixedPricing` — the PoC behaviour, one constant price;
* :class:`CongestionPricing` — a gateway quotes more when its daemon
  queue is long (surge pricing for busy cells);
* :class:`VolumeDiscountPricing` — repeat customers pay less per message.

The negotiation itself is a single round: the gateway quotes a price in
its :class:`~repro.p2p.message.DeliveryMessage`; the recipient accepts if
the quote is within its :class:`RecipientBudget`, otherwise it refuses
the delivery (the gateway keeps the ciphertext, which is worthless to
it, and the recipient keeps its money — fairness is preserved either
way).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import ConfigurationError

__all__ = [
    "PricingPolicy",
    "FixedPricing",
    "CongestionPricing",
    "VolumeDiscountPricing",
    "RecipientBudget",
    "RewardLedger",
]


class PricingPolicy(Protocol):
    """Quotes the price of delivering one message for a recipient."""

    def quote(self, recipient_address: str, queue_length: int) -> int:
        ...


@dataclass(frozen=True)
class FixedPricing:
    """One constant price per delivery (the paper's PoC)."""

    price: int = 100

    def __post_init__(self) -> None:
        if self.price <= 0:
            raise ConfigurationError(f"price must be positive: {self.price}")

    def quote(self, recipient_address: str, queue_length: int) -> int:
        return self.price


@dataclass(frozen=True)
class CongestionPricing:
    """Base price plus a surcharge per queued daemon job.

    A gateway whose blockchain daemon is drowning (e.g. mid block
    verification storm) quotes more; recipients with tight budgets then
    naturally back off to quieter gateways.
    """

    base_price: int = 100
    surcharge_per_job: int = 10
    max_multiplier: float = 4.0

    def __post_init__(self) -> None:
        if self.base_price <= 0:
            raise ConfigurationError(
                f"base price must be positive: {self.base_price}"
            )
        if self.surcharge_per_job < 0:
            raise ConfigurationError(
                f"surcharge cannot be negative: {self.surcharge_per_job}"
            )
        if self.max_multiplier < 1.0:
            raise ConfigurationError(
                f"max multiplier must be >= 1: {self.max_multiplier}"
            )

    def quote(self, recipient_address: str, queue_length: int) -> int:
        quoted = self.base_price + self.surcharge_per_job * queue_length
        ceiling = int(self.base_price * self.max_multiplier)
        return min(quoted, ceiling)


@dataclass
class VolumeDiscountPricing:
    """Per-recipient discount that deepens with delivered volume."""

    base_price: int = 100
    discount_per_delivery: float = 0.01
    floor_fraction: float = 0.5
    _delivered: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.base_price <= 0:
            raise ConfigurationError(
                f"base price must be positive: {self.base_price}"
            )
        if not 0 <= self.discount_per_delivery < 1:
            raise ConfigurationError(
                f"discount rate out of range: {self.discount_per_delivery}"
            )
        if not 0 < self.floor_fraction <= 1:
            raise ConfigurationError(
                f"floor fraction out of range: {self.floor_fraction}"
            )

    def quote(self, recipient_address: str, queue_length: int) -> int:
        count = self._delivered.get(recipient_address, 0)
        fraction = max(self.floor_fraction,
                       1.0 - self.discount_per_delivery * count)
        return max(1, int(self.base_price * fraction))

    def record_delivery(self, recipient_address: str) -> None:
        self._delivered[recipient_address] = (
            self._delivered.get(recipient_address, 0) + 1
        )


@dataclass(frozen=True)
class RecipientBudget:
    """The recipient side of the negotiation: accept quotes up to a cap."""

    max_price: int = 150

    def __post_init__(self) -> None:
        if self.max_price <= 0:
            raise ConfigurationError(
                f"max price must be positive: {self.max_price}"
            )

    def accepts(self, quoted_price: int) -> bool:
        return 0 < quoted_price <= self.max_price


@dataclass
class RewardLedger:
    """Federation-wide settlement accounting (for reports and audits)."""

    quotes: list[tuple[str, str, int]] = field(default_factory=list)
    refusals: list[tuple[str, str, int]] = field(default_factory=list)
    settlements: list[tuple[str, str, int]] = field(default_factory=list)

    def record_quote(self, gateway: str, recipient: str, price: int) -> None:
        self.quotes.append((gateway, recipient, price))

    def record_refusal(self, gateway: str, recipient: str, price: int) -> None:
        self.refusals.append((gateway, recipient, price))

    def record_settlement(self, gateway: str, recipient: str,
                          price: int) -> None:
        self.settlements.append((gateway, recipient, price))

    def earned_by(self, gateway: str) -> int:
        return sum(price for gw, _r, price in self.settlements
                   if gw == gateway)

    def paid_by(self, recipient: str) -> int:
        return sum(price for _gw, r, price in self.settlements
                   if r == recipient)

    def refusal_rate(self) -> float:
        total = len(self.quotes)
        return len(self.refusals) / total if total else 0.0

    def mean_settled_price(self) -> float:
        if not self.settlements:
            return 0.0
        return sum(p for _g, _r, p in self.settlements) / len(self.settlements)
