"""Post-run analysis: where did the milliseconds go?

The paper reports only end-to-end means; this module decomposes a run's
completed exchanges into the protocol legs of Fig. 3 so the latency
budget is inspectable:

* ``epk_downlink`` — ePk over LoRa (step 2);
* ``node_processing`` — AES + RSA wrap + RSA sign + data uplink (3-5);
* ``gateway_forward`` — directory lookup + TCP push (6-7);
* ``settlement`` — verify, offer, claim, detection (8-10);
* ``decrypt`` — final unwrap at the recipient.

Used by the benchmark harness's narrative output and handy for ablation
debugging ("which leg did my change actually move?").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.exchange import ExchangeRecord, ExchangeTracker
from repro.obs.stats import Summary

__all__ = ["LegBreakdown", "decompose", "format_breakdown"]

_LEGS = (
    ("epk_downlink", "t_epk_sent", "t_epk_received"),
    ("node_processing", "t_epk_received", "t_data_sent"),
    ("gateway_forward", "t_data_received", "t_delivered"),
    ("settlement", "t_delivered", "t_claim_seen"),
    ("decrypt", "t_claim_seen", "t_decrypted"),
)


@dataclass(frozen=True)
class LegBreakdown:
    """Per-leg latency statistics over a set of completed exchanges."""

    legs: dict[str, Summary]
    total: Summary
    exchanges: int

    def dominant_leg(self) -> str:
        """The leg with the largest mean contribution."""
        return max(self.legs, key=lambda name: self.legs[name].mean)

    def mean_fraction(self, leg: str) -> float:
        """A leg's share of the mean end-to-end latency."""
        return self.legs[leg].mean / self.total.mean


def _leg_samples(records: list[ExchangeRecord],
                 start_attr: str, end_attr: str) -> list[float]:
    samples = []
    for record in records:
        start = getattr(record, start_attr)
        end = getattr(record, end_attr)
        if start is not None and end is not None:
            samples.append(end - start)
    return samples


def decompose(tracker: ExchangeTracker) -> LegBreakdown:
    """Break a run's completed exchanges into Fig. 3 legs.

    Raises ``ValueError`` when no exchange completed.
    """
    records = [r for r in tracker.completed() if r.latency is not None]
    if not records:
        raise ValueError("no completed exchanges to decompose")
    legs = {}
    for name, start_attr, end_attr in _LEGS:
        samples = _leg_samples(records, start_attr, end_attr)
        if samples:
            legs[name] = Summary.of(samples)
    return LegBreakdown(
        legs=legs,
        total=Summary.of([r.latency for r in records]),
        exchanges=len(records),
    )


def format_breakdown(breakdown: LegBreakdown) -> str:
    """A text table of the latency budget."""
    lines = [
        f"latency budget over {breakdown.exchanges} exchanges "
        f"(mean total {breakdown.total.mean:.3f} s):",
        f"{'leg':<18}{'mean (s)':>10}{'p95 (s)':>10}{'share':>8}",
    ]
    for name, summary in breakdown.legs.items():
        share = breakdown.mean_fraction(name)
        lines.append(
            f"{name:<18}{summary.mean:>10.3f}{summary.p95:>10.3f}"
            f"{share:>7.0%}"
        )
    lines.append(f"dominant leg: {breakdown.dominant_leg()}")
    return "\n".join(lines)
