"""The on-chain IP directory (paper section 4.3).

A recipient ready to receive messages publishes an OP_RETURN transaction
binding its blockchain address (``@R``, the identifier nodes are
provisioned with) to its current IP endpoint.  Gateways resolve ``@R`` by
scanning recent blocks — "On start-up, each node retrieves the recent
blocks from other nodes and scans their content for foreign gateways IPs"
(section 5.1) — and keep the view current by watching new blocks.

Announcements are authenticated: the payload embeds the announcer's
public key and an ECDSA signature over (address, endpoint), so a foreign
actor cannot hijack someone else's ``@R``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.blockchain.chain import Chain
from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.crypto.keys import KeyPair, address_from_pubkey
from repro.errors import ProtocolError
from repro.script.opcodes import OP

__all__ = ["Announcement", "DirectoryView", "build_announcement_payload",
           "parse_announcement_payload", "ANNOUNCEMENT_MAGIC"]

ANNOUNCEMENT_MAGIC = b"BCWIP1"


@dataclass(frozen=True)
class Announcement:
    """A resolved directory entry."""

    address: str          # blockchain address @R
    endpoint: str         # network host name ("IP address")
    port: int
    height: int           # block height of the announcement
    txid: bytes


def build_announcement_payload(keypair: KeyPair, endpoint: str,
                               port: int = 7264) -> bytes:
    """Serialize and sign an IP announcement for ``keypair``'s address."""
    endpoint_bytes = endpoint.encode("utf-8")
    if len(endpoint_bytes) > 64:
        raise ProtocolError(f"endpoint too long: {len(endpoint_bytes)} bytes")
    if not 0 < port <= 0xFFFF:
        raise ProtocolError(f"port out of range: {port}")
    pubkey = keypair.public_key.to_bytes()
    body = (
        pubkey
        + struct.pack("<H", port)
        + bytes([len(endpoint_bytes)])
        + endpoint_bytes
    )
    signature = keypair.sign(sha256(ANNOUNCEMENT_MAGIC + body)).to_bytes()
    return ANNOUNCEMENT_MAGIC + body + signature


def parse_announcement_payload(payload: bytes) -> Optional[tuple[str, str, int]]:
    """Parse and authenticate a payload; returns (address, endpoint, port).

    Returns None for foreign/invalid OP_RETURN data — the chain carries
    arbitrary application payloads, so parsing is defensive, not raising.
    """
    if not payload.startswith(ANNOUNCEMENT_MAGIC):
        return None
    body_start = len(ANNOUNCEMENT_MAGIC)
    try:
        pubkey_bytes = payload[body_start:body_start + 33]
        if len(pubkey_bytes) != 33:
            return None
        offset = body_start + 33
        port = struct.unpack_from("<H", payload, offset)[0]
        offset += 2
        endpoint_len = payload[offset]
        offset += 1
        endpoint_bytes = payload[offset:offset + endpoint_len]
        if len(endpoint_bytes) != endpoint_len:
            return None
        offset += endpoint_len
        signature = payload[offset:offset + 64]
        if len(signature) != 64 or len(payload) != offset + 64:
            return None
        public_key = ecdsa.PublicKey.from_bytes(pubkey_bytes)
        body = payload[body_start:offset]
        digest = sha256(ANNOUNCEMENT_MAGIC + body)
        if not public_key.verify(digest, ecdsa.Signature.from_bytes(signature)):
            return None
        address = address_from_pubkey(public_key)
        return address, endpoint_bytes.decode("utf-8"), port
    except (ecdsa.ECDSAError, struct.error, UnicodeDecodeError):
        return None


class DirectoryView:
    """A gateway's materialized view of the on-chain directory."""

    def __init__(self, chain: Chain) -> None:
        self._chain = chain
        self._entries: dict[str, Announcement] = {}
        self._scanned_height = -1

    def follow(self) -> None:
        """Scan history and subscribe to newly connected blocks."""
        self.rescan()
        self._chain.add_connect_listener(
            lambda block, height: self._scan_block(block, height)
        )

    def rescan(self) -> None:
        """Full rescan of the active chain (start-up behaviour)."""
        self._entries.clear()
        for height, block in self._chain.iter_active_blocks():
            self._scan_block(block, height)

    def _scan_block(self, block, height: int) -> None:
        for tx in block.transactions:
            for output in tx.outputs:
                elements = output.script_pubkey.elements
                if (len(elements) == 2 and elements[0] == OP.OP_RETURN
                        and isinstance(elements[1], bytes)):
                    parsed = parse_announcement_payload(elements[1])
                    if parsed is None:
                        continue
                    address, endpoint, port = parsed
                    current = self._entries.get(address)
                    # Later announcements supersede earlier ones.
                    if current is None or height >= current.height:
                        self._entries[address] = Announcement(
                            address=address, endpoint=endpoint, port=port,
                            height=height, txid=tx.txid,
                        )
        self._scanned_height = max(self._scanned_height, height)

    def lookup(self, address: str) -> Optional[Announcement]:
        """Resolve a blockchain address to its announced endpoint."""
        return self._entries.get(address)

    def entries(self) -> list[Announcement]:
        return sorted(self._entries.values(), key=lambda a: a.address)

    def __len__(self) -> int:
        return len(self._entries)
