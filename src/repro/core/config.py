"""Configuration for a full BcWAN deployment simulation.

The defaults reproduce the paper's testbed (section 5.2): 5 gateway sites
(PlanetLab nodes), 30 sensors per site at SF7 and 1 % duty cycle, a master
node that mines and does not serve exchanges, 128-byte payloads + 4-byte
header, and block verification *disabled* (the Fig. 5 configuration —
flip ``verify_blocks`` for Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional

from repro.blockchain.mempool import MempoolPolicy
from repro.blockchain.params import COIN, ChainParams
from repro.core.costmodel import CostModel
from repro.errors import ConfigurationError

__all__ = ["LightConfig", "MempoolPolicy", "NetworkConfig", "RegionTopology"]


@dataclass(frozen=True)
class RegionTopology:
    """How a federation is carved into regions.

    The default — one region — is the paper's flat deployment: a single
    gateway chain mined by one master, a global gossip mesh.  With
    ``regions > 1`` the network becomes hierarchical: each region runs
    its own gateway sub-chain (own master or PoS schedule, own mempool,
    region-scoped gossip mesh) and a global *settlement chain* anchors
    every sub-chain through periodic checkpoint transactions.

    :param regions: how many regional sub-chains the federation runs.
    :param roaming: where a roaming sensor's recipient gateway lives —
        ``"region"`` keeps ``roaming_offset`` rotations inside the home
        region (every delivery stays intra-region), ``"global"`` rotates
        across the whole federation (deliveries whose home and recipient
        gateways land in different regions settle cross-region through
        the anchor).
    :param checkpoint_interval: sim-seconds between a region's checkpoint
        commits onto the settlement chain.
    :param border_peers: cross-region gossip links per region pair on the
        settlement mesh (and in :func:`repro.chaos.scenario.\
build_federation`'s topology-aware mesh).
    """

    regions: int = 1
    roaming: str = "region"
    checkpoint_interval: float = 60.0
    border_peers: int = 1

    def __post_init__(self) -> None:
        if self.regions < 1:
            raise ConfigurationError(
                f"need at least one region, got {self.regions}"
            )
        if self.roaming not in ("region", "global"):
            raise ConfigurationError(
                f"unknown roaming policy: {self.roaming!r} "
                f"(expected 'region' or 'global')"
            )
        if self.checkpoint_interval <= 0:
            raise ConfigurationError(
                f"checkpoint interval must be positive: "
                f"{self.checkpoint_interval}"
            )
        if self.border_peers < 1:
            raise ConfigurationError(
                f"need at least one border peer per region pair, got "
                f"{self.border_peers}"
            )


@dataclass(frozen=True)
class LightConfig:
    """The light-client tier knobs, grouped.

    ``device_class == "full"`` (the default) is the paper's deployment —
    every actor's recipient runs a co-located full node, and nothing in
    :mod:`repro.light` is imported.  ``"light"`` swaps each recipient for
    a duty-cycled SPV host (headers, filters, Merkle proofs) served by
    the gateway full nodes.

    :param device_class: ``"full"`` or ``"light"``.
    :param compact_blocks: relay blocks between full nodes as BIP
        152-style short-txid sketches with mempool reconstruction.
    :param multicast_interval: seconds between a gateway's signed
        header-bundle multicasts to its light recipients (0 disables the
        stream; light clients then rely solely on unicast polling).
    :param multicast_verify_every: aggregate-verify every R-th bundle
        (Danzi et al. repeat-authenticate).
    :param multicast_listen_window: Class-A listen window after each
        multicast round fires.
    :param light_sync_interval: light-client unicast header poll period.
    :param light_request_timeout: per-request deadline for light queries.
    """

    device_class: str = "full"
    compact_blocks: bool = False
    multicast_interval: float = 0.0
    multicast_verify_every: int = 4
    multicast_listen_window: float = 2.0
    light_sync_interval: float = 10.0
    light_request_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.device_class not in ("full", "light"):
            raise ConfigurationError(
                f"unknown device class: {self.device_class!r} "
                f"(expected 'full' or 'light')"
            )
        if self.multicast_interval < 0:
            raise ConfigurationError(
                f"multicast interval cannot be negative: "
                f"{self.multicast_interval}"
            )
        if self.multicast_verify_every < 1:
            raise ConfigurationError(
                f"multicast verify-every must be at least 1, got "
                f"{self.multicast_verify_every}"
            )
        if self.multicast_listen_window <= 0:
            raise ConfigurationError(
                f"multicast listen window must be positive: "
                f"{self.multicast_listen_window}"
            )
        if self.light_sync_interval <= 0:
            raise ConfigurationError(
                f"light sync interval must be positive: "
                f"{self.light_sync_interval}"
            )
        if self.light_request_timeout <= 0:
            raise ConfigurationError(
                f"light request timeout must be positive: "
                f"{self.light_request_timeout}"
            )


@dataclass(frozen=True)
class NetworkConfig:
    """Everything a :class:`repro.core.network.BcWANNetwork` needs.

    Topology:

    :param num_gateways: gateway sites (the paper uses 5 PlanetLab nodes).
    :param sensors_per_gateway: end devices deployed per site (paper: 30).
    :param roaming_offset: sensors of actor ``i`` are deployed in the cell
        of gateway ``(i + roaming_offset) % num_gateways`` — every
        delivery crosses a *foreign* gateway, the scenario BcWAN exists
        for.  Set 0 to study home-gateway delivery.
    :param seed: master seed; every run is deterministic in it.

    Blockchain:

    :param block_interval: master mining period (Multichain default 15 s).
    :param verify_blocks: the Fig. 5 (False) / Fig. 6 (True) toggle.
    :param verification_stall_base / verification_stall_per_tx: the
        modeled Multichain daemon stall per verified block.
    :param parallel_workers: script-verification worker processes shared
        by all daemons (0 = serial; verdicts identical either way).
    :param price: satoshi-like units a gateway earns per delivery.
    :param funding_coins / funding_coin_value: how many spendable coins
        each actor is bootstrapped with, and their denomination.

    Radio:

    :param spreading_factor / duty_cycle: paper: SF7, 1 %.
    :param gateway_duty_cycle: downlink budget (EU868 10 % sub-band).
    :param cell_radius: sensors are placed uniformly within this radius.

    WAN:

    :param wan_median_range: per-site-pair median one-way delay range.
    :param wan_sigma: lognormal jitter shape.

    Workload:

    :param exchange_interval: mean seconds between exchanges per sensor.
    :param payload_bytes: plaintext reading size (≤ 15: one AES block).

    Grouped sub-configs:

    :param light: the light-client tier (:class:`LightConfig`).  The old
        flat kwargs (``device_class`` … ``light_request_timeout``) are
        deprecated but still accepted and still construct a
        byte-identical config; they are folded into ``light`` and kept
        mirrored for legacy readers.
    :param mempool: admission policy (:class:`MempoolPolicy`) applied to
        every full node; None keeps the historical unbounded pool.
    """

    num_gateways: int = 5
    sensors_per_gateway: int = 30
    roaming_offset: int = 1
    seed: int = 0
    # Hierarchical federation: regions=1 (the default) is the paper's
    # flat deployment and is guaranteed to reproduce it exactly; see
    # RegionTopology for the sharded mode.
    topology: RegionTopology = field(default_factory=RegionTopology)

    block_interval: float = 15.0
    # "master": the paper's PoC — a dedicated master node mines on a
    # schedule, mining disabled on gateways.  "pos": the §6 future-work
    # variant — gateway sites take turns producing blocks through a
    # deterministic stake-weighted slot lottery (no master mining, no
    # proof-of-work anywhere).
    consensus: str = "master"
    verify_blocks: bool = False
    # Worker processes for script verification (0 = strictly serial, the
    # default).  When positive, one shared repro.parallel.VerifyPool fans
    # block-connect and mempool-admission script checks across processes
    # on every daemon; verdicts are bit-identical to the serial path.
    parallel_workers: int = 0
    verification_stall_base: float = 8.0
    verification_stall_per_tx: float = 0.055
    coinbase_maturity: int = 1
    pow_bits: int = 0
    locktime_grace: int = 100
    max_block_size: int = 1_000_000

    price: int = 100
    offer_fee: int = 0
    funding_coins: int = 500
    funding_coin_value: int = 250

    spreading_factor: int = 7
    # ADR: assign each sensor the fastest SF its link budget supports
    # instead of the fixed `spreading_factor` (the paper fixes SF7).
    adaptive_data_rate: bool = False
    # Radio delivery kernel: "scalar" is the seed per-listener loop (the
    # differential oracle); "vector" batch-evaluates collision/SINR across
    # all listeners with numpy, bit-identical verdicts and RSSIs (see
    # repro.lora.channel).  Fleet-scale runs want "vector".
    sim_kernel: str = "scalar"
    duty_cycle: float = 0.01
    gateway_duty_cycle: float = 0.10
    cell_radius: float = 1500.0

    wan_median_range: tuple[float, float] = (0.040, 0.180)
    wan_sigma: float = 0.35
    # Fraction of WAN messages silently dropped (0 models the TCP flows
    # of the paper's testbed).  With loss, enable `sync_interval` so the
    # anti-entropy agents repair gossip gaps.
    wan_loss_rate: float = 0.0
    # Seconds between anti-entropy sync rounds per daemon; 0 disables.
    sync_interval: float = 0.0

    exchange_interval: float = 60.0
    # Seconds between recipient sweeps of expired key-release offers
    # (the Listing-1 refund branch).  0 disables the sweep; enable it in
    # deployments where gateways may vanish mid-exchange.
    reclaim_interval: float = 0.0
    payload_bytes: int = 12
    key_response_timeout: float = 12.0
    # Enforce LoRaWAN Class-A receive windows: nodes sleep outside
    # RX1/RX2 and gateways schedule the ePk downlink into a window.
    class_a_windows: bool = False
    rsa_bits: int = 512
    wait_for_confirmation: bool = False

    # -- light-client tier -------------------------------------------------
    # Grouped in :class:`LightConfig`; the default (None) synthesizes the
    # sub-config from the flat fields below and is byte-identical to runs
    # predating the grouping.  The light tier requires the flat topology.
    light: Optional[LightConfig] = None
    # Deprecated flat aliases for the LightConfig fields.  Passing them
    # still works — ``__post_init__`` folds them into ``light`` — and
    # after construction they mirror ``light.*`` exactly; new code should
    # read/construct ``light`` directly.  Passing both a ``light``
    # sub-config and a non-default flat kwarg is a configuration error.
    device_class: str = "full"
    compact_blocks: bool = False
    multicast_interval: float = 0.0
    multicast_verify_every: int = 4
    multicast_listen_window: float = 2.0
    light_sync_interval: float = 10.0
    light_request_timeout: float = 5.0

    # Mempool admission policy shared by every full node the network
    # assembles (None = the unbounded, no-fee-floor default that matches
    # the paper's Multichain deployment).
    mempool: Optional[MempoolPolicy] = None

    # Observability: ``tracing`` turns on sim-time span collection (one
    # trace per exchange, one per block) and makes the run's JSONL trace
    # export meaningful; ``profile_hot_paths`` attaches the wall-clock
    # HotPathProfiler to the engine/mempool/miner/sync hot paths.  Both
    # default off so headline runs pay only no-op guards.
    tracing: bool = False
    profile_hot_paths: bool = False

    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if self.num_gateways < 1:
            raise ConfigurationError(
                f"need at least one gateway, got {self.num_gateways}"
            )
        if self.sensors_per_gateway < 0:
            raise ConfigurationError(
                f"negative sensor count: {self.sensors_per_gateway}"
            )
        if not 0 <= self.roaming_offset < max(self.num_gateways, 1):
            raise ConfigurationError(
                f"roaming offset {self.roaming_offset} out of range for "
                f"{self.num_gateways} gateways"
            )
        if self.price <= 0:
            raise ConfigurationError(f"price must be positive: {self.price}")
        if self.funding_coin_value < self.price + self.offer_fee:
            raise ConfigurationError(
                "funding coin value must cover at least one offer "
                f"({self.funding_coin_value} < {self.price + self.offer_fee})"
            )
        if not 0 < self.payload_bytes <= 15:
            raise ConfigurationError(
                f"payload must be 1-15 bytes (one AES block), "
                f"got {self.payload_bytes}"
            )
        if self.exchange_interval <= 0:
            raise ConfigurationError(
                f"exchange interval must be positive: {self.exchange_interval}"
            )
        if self.consensus not in ("master", "pos"):
            raise ConfigurationError(
                f"unknown consensus mode: {self.consensus!r} "
                f"(expected 'master' or 'pos')"
            )
        if self.sim_kernel not in ("scalar", "vector"):
            raise ConfigurationError(
                f"unknown sim kernel: {self.sim_kernel!r} "
                f"(expected 'scalar' or 'vector')"
            )
        if not 0 <= self.wan_loss_rate < 1:
            raise ConfigurationError(
                f"WAN loss rate out of range: {self.wan_loss_rate}"
            )
        if self.sync_interval < 0:
            raise ConfigurationError(
                f"sync interval cannot be negative: {self.sync_interval}"
            )
        if self.parallel_workers < 0:
            raise ConfigurationError(
                f"parallel worker count cannot be negative: "
                f"{self.parallel_workers}"
            )
        if self.num_gateways % self.topology.regions != 0:
            raise ConfigurationError(
                f"{self.num_gateways} gateways do not divide evenly into "
                f"{self.topology.regions} regions"
            )
        if (self.topology.regions > 1
                and self.topology.roaming == "region"
                and self.roaming_offset >= self.gateways_per_region):
            raise ConfigurationError(
                f"roaming offset {self.roaming_offset} out of range for "
                f"{self.gateways_per_region} gateways per region"
            )
        self._fold_light_config()
        if self.light.device_class == "light" and self.topology.regions > 1:
            raise ConfigurationError(
                "the light tier requires the flat topology "
                f"(regions={self.topology.regions})"
            )
        # Surface chain-parameter violations (block size floor, etc.) at
        # configuration time rather than at network assembly.
        self.chain_params()

    def _fold_light_config(self) -> None:
        """Reconcile the ``light`` sub-config with its flat aliases.

        No sub-config given: synthesize one from the flat kwargs (so the
        deprecated flat spelling keeps constructing the same object).
        Sub-config given: reject conflicting non-default flat kwargs,
        then backfill the flat mirrors so legacy readers stay correct.
        Validation of the grouped fields lives in ``LightConfig``.
        """
        light_fields = [f.name for f in fields(LightConfig)]
        if self.light is None:
            object.__setattr__(self, "light", LightConfig(
                **{name: getattr(self, name) for name in light_fields}
            ))
            return
        for spec in fields(LightConfig):
            flat = getattr(self, spec.name)
            if flat != spec.default and flat != getattr(self.light, spec.name):
                raise ConfigurationError(
                    f"flat kwarg {spec.name}={flat!r} conflicts with the "
                    f"light sub-config (deprecated flat spelling and "
                    f"LightConfig are mutually exclusive)"
                )
        for name in light_fields:
            object.__setattr__(self, name, getattr(self.light, name))

    def chain_params(self) -> ChainParams:
        """The derived blockchain parameters."""
        return ChainParams(
            block_interval=self.block_interval,
            verify_blocks=self.verify_blocks,
            verification_stall_base=self.verification_stall_base,
            verification_stall_per_tx=self.verification_stall_per_tx,
            coinbase_maturity=self.coinbase_maturity,
            pow_bits=self.pow_bits,
            locktime_grace=self.locktime_grace,
            max_block_size=self.max_block_size,
        )

    @property
    def site_names(self) -> list[str]:
        return [f"site-{i}" for i in range(self.num_gateways)]

    @property
    def light_names(self) -> list[str]:
        """WAN host names of the light recipients (one per actor)."""
        return [f"light-{i}" for i in range(self.num_gateways)]

    @property
    def total_sensors(self) -> int:
        return self.num_gateways * self.sensors_per_gateway

    # -- region helpers (trivially flat when topology.regions == 1) ------------

    @property
    def gateways_per_region(self) -> int:
        return self.num_gateways // self.topology.regions

    def region_of_site(self, site_index: int) -> int:
        """Which region the ``site_index``-th gateway site belongs to."""
        return site_index // self.gateways_per_region

    def region_site_indices(self, region: int) -> range:
        """The global site indices making up ``region``."""
        start = region * self.gateways_per_region
        return range(start, start + self.gateways_per_region)

    def recipient_site(self, actor_index: int) -> int:
        """Where actor ``i``'s recipient gateway lives, after roaming.

        Flat (or ``roaming == "global"``): the classic
        ``(i + roaming_offset) % num_gateways`` rotation.  With
        ``roaming == "region"`` the rotation wraps inside the actor's
        home region, so every delivery stays intra-region.
        """
        if self.topology.regions == 1 or self.topology.roaming == "global":
            return (actor_index + self.roaming_offset) % self.num_gateways
        per = self.gateways_per_region
        region_start = (actor_index // per) * per
        return region_start + (actor_index % per + self.roaming_offset) % per
