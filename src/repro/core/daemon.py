"""The BcWAN daemon: a single-server queue in front of the blockchain.

The paper's gateway stack is a Golang daemon wrapping a Multichain node;
all blockchain interaction — creating/signing/sending transactions,
directory lookups, processing gossiped items — goes through it.  Its
defining performance behaviour (section 5.2) is that with block
verification enabled "the block verification made the Multichain daemon
stall and become unresponsive for extended periods upon each block
arrival".

:class:`BlockchainDaemon` models exactly that: every operation is a job in
a FIFO served by one server; an incoming block enqueues a verification job
whose service time is the chain params' ``verification_stall`` — so while
a block verifies, every RPC of every in-flight exchange waits.  Disabling
verification (Fig. 5) makes block jobs cheap and the queue effectively
empty.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.blockchain.node import FullNode
from repro.core.costmodel import CostModel
# DaemonStats now lives in the observability layer (registry-backed);
# re-exported here so the historical import path keeps working.
from repro.obs.registry import MetricsRegistry
from repro.obs.telemetry import DaemonStats
from repro.p2p.dedup import LRUSet
from repro.p2p.gossip import GossipNode
from repro.p2p.message import BlockMessage, Envelope, TxMessage
from repro.p2p.network import WANetwork
from repro.sim.core import Event, Simulator

__all__ = ["BlockchainDaemon", "DaemonStats"]


@dataclass
class _Job:
    service_time: float
    fn: Optional[Callable[[], Any]]
    completion: Event
    enqueued_at: float
    label: str = ""
    epoch: int = 0
    # The job's tracing span (e.g. a block's ``block.validate``).  The
    # daemon owns its lifecycle: ended ``ok`` when served, ``lost`` when
    # the queue dies with a crash or the epoch fence voids the job.
    span: Any = None


class BlockchainDaemon:
    """One host's blockchain access point, with Multichain-like stalls."""

    def __init__(self, sim: Simulator, name: str, network: WANetwork,
                 node: FullNode, cost_model: CostModel,
                 rng: random.Random,
                 verify_blocks: Optional[bool] = None,
                 registry: Optional[MetricsRegistry] = None,
                 verify_pool: Optional[Any] = None) -> None:
        self.sim = sim
        self.name = name
        self.network = network
        self.node = node
        self.cost_model = cost_model
        self.rng = rng
        # The Fig. 5 / Fig. 6 toggle; defaults to the chain params' flag.
        self.verify_blocks = (
            node.params.verify_blocks if verify_blocks is None else verify_blocks
        )
        # Shared script-verification pool (repro.parallel.VerifyPool).
        # The daemon borrows it for its engine while online; crash()
        # unhooks it (a dead daemon must not keep dispatching to shared
        # workers) and restart() re-attaches it to the restored node.
        self.verify_pool = verify_pool
        if verify_pool is not None:
            node.engine.attach_pool(verify_pool)
        self.gossip = GossipNode(node, network, name=name, auto_register=False)
        network.register(name, self.handle_envelope)
        # Registry-backed and callable: read `daemon.stats.jobs_served`
        # or take the uniform view via `daemon.stats()`.
        self.stats = DaemonStats(registry, host=name)
        # Handlers for non-gossip payloads (the BcWAN delivery protocol),
        # registered by agents: payload type -> callable(envelope).
        self.protocol_handlers: dict[type, Callable[[Envelope], None]] = {}
        # Optional consensus-level block check (e.g. PoS leader rule)
        # applied before a gossiped block enters the chain.
        self.block_validator: Optional[Callable[[Any], bool]] = None
        self.blocks_rejected_consensus = 0
        # Crash/restart lifecycle: while offline the daemon refuses all
        # traffic and RPCs; ``_epoch`` fences jobs enqueued before a crash
        # so an in-service job never runs against post-restart state.
        self.online = True
        self._epoch = 0
        # Set by a SyncAgent when one attaches; crash() resets its
        # in-flight request state alongside the daemon's own queue.
        self.sync_agent: Optional[Any] = None

        self._queue: deque[_Job] = deque()
        self._wakeup: Optional[Event] = None
        # Items already queued or processed; the inv/getdata pattern means
        # a real daemon never downloads (or verifies) the same item twice.
        # Bounded: a gateway relaying for months must not grow without
        # limit (an ancient re-download costs one redundant validation).
        self._seen_txids: LRUSet = LRUSet(8192)
        self._seen_blocks: LRUSet = LRUSet(8192)
        sim.process(self._serve())

    # -- crash/restart lifecycle -------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: drop the queue, refuse traffic, go dark on the WAN.

        Everything in RAM is lost — queued jobs, dedup memories, and (on
        restart) the mempool.  Whether *chain* state survives depends on
        what the operator restores via :meth:`restart`.
        """
        if not self.online:
            return
        self.online = False
        self._epoch += 1
        self.stats.crashes += 1
        self.stats.jobs_lost_to_crash += len(self._queue)
        # Spans riding on queued jobs die with the queue: close them as
        # lost so a crash never leaks an open span.
        for job in self._queue:
            if job.span is not None:
                job.span.end("lost", reason="daemon crash")
        self._queue.clear()
        self.network.set_host_down(self.name)
        if self.verify_pool is not None:
            # The pool itself is shared federation infrastructure — only
            # this daemon's engine lets go of it.
            self.node.engine.detach_pool()
        if self.sync_agent is not None:
            self.sync_agent.reset()

    def restart(self, node: FullNode) -> None:
        """Come back up serving ``node`` (fresh or restored from a store).

        The caller decides the recovery mode: a brand-new
        :class:`FullNode` models total state loss (re-sync from genesis),
        one rebuilt via :func:`repro.blockchain.store.load_chain` models a
        gateway whose chain store survived the crash.
        """
        if self.online:
            return
        self.node = node
        self.gossip.node = node
        self.gossip.reset_caches()
        self._seen_txids.clear()
        self._seen_blocks.clear()
        if self.verify_pool is not None:
            node.engine.attach_pool(self.verify_pool)
        self.online = True
        self.stats.restarts += 1
        self.network.set_host_up(self.name)

    # -- inbound network traffic ------------------------------------------------

    def handle_envelope(self, envelope: Envelope) -> None:
        if not self.online:
            # The WAN already drops deliveries to downed hosts; this
            # guards direct handler calls (tests, local loopback).
            self.stats.messages_refused_offline += 1
            return
        payload = envelope.payload
        if isinstance(payload, TxMessage):
            tx = payload.transaction
            if tx.txid in self._seen_txids:
                return
            self._seen_txids.add(tx.txid)
            origin = envelope.source

            def process_tx(tx=tx, origin=origin):
                self.gossip.receive_transaction(tx, origin=origin)
                self._sync_validation_telemetry()

            self._enqueue(
                self.cost_model.daemon_tx_process, process_tx, label="tx",
            )
        elif isinstance(payload, BlockMessage):
            block = payload.block
            if not self.mark_block_seen(block.hash):
                return
            self.enqueue_network_block(block, origin=envelope.source,
                                       trace=envelope.trace)
        else:
            handler = self.protocol_handlers.get(type(payload))
            if handler is not None:
                # Dispatch latency for the daemon to hand the request to
                # the protocol layer; the handler schedules its own work.
                self._enqueue(
                    self.cost_model.gateway_frame_handling,
                    lambda: handler(envelope),
                    label="protocol",
                )

    def mark_block_seen(self, block_hash: bytes) -> bool:
        """Dedup gate shared by full-block gossip and compact relay.

        Returns True when the hash was new (the caller should process it);
        False when this daemon already queued or processed the block.
        """
        if block_hash in self._seen_blocks:
            return False
        self._seen_blocks.add(block_hash)
        return True

    def enqueue_network_block(self, block: Any, origin: str = "",
                              trace: Any = None) -> Event:
        """Queue a network-received block for verification and adoption.

        The shared tail of full-block gossip and compact-sketch
        reconstruction: both pay the same verification stall (the
        section 5.2 behavior this daemon exists to model), run the same
        optional consensus validator, and adopt via gossip — which
        re-relays to peers.  Callers are expected to have passed
        :meth:`mark_block_seen` first.
        """
        if self.verify_blocks:
            service = self.node.params.verification_stall(
                len(block.transactions)
            )
            self.stats.blocks_verified += 1
            self.stats.stall_time += service
        else:
            service = self.cost_model.daemon_block_process
        # The block's validation span: child of the transit span that
        # delivered it, so one block's trace shows gossip hop →
        # per-peer queueing/verification stall → adoption.
        span = self.network.tracer.span(
            "block.validate", parent=trace,
            host=self.name, txs=len(block.transactions))

        def process_block(block=block, origin=origin, span=span):
            if (self.block_validator is not None
                    and not self.block_validator(block)):
                self.blocks_rejected_consensus += 1
                span.end("rejected", reason="consensus")
                return
            self.gossip.receive_block(block, origin=origin, parent=span)
            self._sync_validation_telemetry()
            span.end("ok")

        return self._enqueue(service, process_block, label="block", span=span)

    def _sync_validation_telemetry(self) -> None:
        """Mirror the engine's script-layer counters into the stats."""
        engine = self.node.engine
        self.stats.script_cache_hits = engine.cache_stats.hits
        self.stats.script_cache_misses = engine.cache_stats.misses
        self.stats.standardness_rejects = engine.policy.stats.tx_rejected
        self.stats.script_fast_rejects = engine.policy.stats.fast_rejects

    def register_protocol(self, payload_type: type,
                          handler: Callable[[Envelope], None]) -> None:
        """Route network payloads of ``payload_type`` to ``handler``."""
        self.protocol_handlers[payload_type] = handler

    # -- local RPC ---------------------------------------------------------------

    def call(self, service_mean: float,
             fn: Optional[Callable[[], Any]] = None,
             label: str = "rpc") -> Event:
        """Submit a local operation; the returned event fires with its result.

        Use for anything that touches the Multichain API: creating, signing
        and sending transactions, directory scans.  The event's value is
        ``fn()``'s return value.
        """
        return self._enqueue(service_mean, fn, label=label)

    def rpc(self, fn: Optional[Callable[[], Any]] = None) -> Event:
        """A standard-cost JSON-RPC round (create/sign/send)."""
        return self.call(self.cost_model.daemon_rpc, fn)

    def lookup(self, fn: Optional[Callable[[], Any]] = None) -> Event:
        """A directory lookup against the local chain view."""
        return self.call(self.cost_model.daemon_lookup, fn, label="lookup")

    # -- queueing ----------------------------------------------------------------

    def _enqueue(self, service_mean: float,
                 fn: Optional[Callable[[], Any]], label: str = "",
                 span: Any = None) -> Event:
        if not self.online:
            # A dead daemon answers nothing: the caller's event simply
            # never fires, like an RPC against a crashed process.
            self.stats.messages_refused_offline += 1
            if span is not None:
                span.end("lost", reason="daemon offline")
            return self.sim.event()
        job = _Job(
            service_time=self.cost_model.sample(service_mean, self.rng),
            fn=fn,
            completion=self.sim.event(),
            enqueued_at=self.sim.now,
            label=label,
            epoch=self._epoch,
            span=span,
        )
        self._queue.append(job)
        self.stats.max_queue_length = max(self.stats.max_queue_length,
                                          len(self._queue))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return job.completion

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def _serve(self):
        while True:
            if not self._queue:
                self._wakeup = self.sim.event()
                yield self._wakeup
                self._wakeup = None
                continue
            job = self._queue.popleft()
            self.stats.queue_wait_total += self.sim.now - job.enqueued_at
            if job.service_time > 0:
                yield self.sim.timeout(job.service_time)
            if job.epoch != self._epoch:
                # The daemon crashed while this job was in service: its
                # work (and its caller's completion) died with the
                # process.  The completion event deliberately never
                # fires — a lost RPC looks exactly like this.
                if job.span is not None:
                    job.span.end("lost", reason="daemon crash mid-service")
                continue
            self.stats.jobs_served += 1
            self.stats.busy_time += job.service_time
            result = None
            if job.fn is not None:
                result = job.fn()
            job.completion.succeed(result)
