"""Deprecated re-export shim — the real home is :mod:`repro.obs`.

:class:`ExchangeRecord` and :class:`ExchangeTracker` live in
:mod:`repro.obs.exchange`; the telemetry surfaces live in
:mod:`repro.obs.telemetry`.  This module only keeps the historical
``repro.core.metrics`` import path importable; the ``deprecated-shim``
lint rule forbids new in-repo imports of it.
"""

from __future__ import annotations

from repro.obs.exchange import ExchangeRecord, ExchangeTracker
from repro.obs.telemetry import ChaosTelemetry, ValidationTelemetry

__all__ = ["ExchangeRecord", "ExchangeTracker", "ValidationTelemetry",
           "ChaosTelemetry"]
