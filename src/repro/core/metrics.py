"""Per-exchange instrumentation.

An :class:`ExchangeRecord` tracks one Fig. 3 exchange through every leg;
the :class:`ExchangeTracker` is the shared registry agents stamp as the
protocol progresses.  The paper's headline metric is
``t_decrypted - t_epk_sent`` — "from the first message from the gateway to
the decryption of the message by the recipient" (section 5.2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.sim.trace import Summary

__all__ = ["ExchangeRecord", "ExchangeTracker", "ValidationTelemetry",
           "ChaosTelemetry"]


@dataclass
class ChaosTelemetry:
    """Shared fault-injection and recovery counters for one run.

    One instance is owned by a :class:`repro.chaos.ChaosInjector` and
    shared (by reference) with every managed daemon's ``DaemonStats`` and
    every :class:`repro.p2p.sync.SyncAgent`, so a single object tells the
    whole story: what was injected, what it broke, and how long the
    federation took to heal.

    ``fault_log`` is an append-only, deterministic record of every
    injected fault (``"t=12.500000 partition-drop gw-0->gw-3 TipMessage"``
    style lines): two runs with the same seed must produce byte-identical
    logs — that equality is the reproducibility test for a fault plan.
    """

    # Injection-side counters.
    faults_injected: dict = field(default_factory=dict)  # kind -> count
    messages_dropped: int = 0
    messages_corrupted: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    partition_drops: int = 0
    partitions_started: int = 0
    partitions_healed: int = 0
    crashes: int = 0
    restarts: int = 0
    # Recovery-side counters (fed by SyncAgents).
    sync_timeouts: int = 0
    sync_retries: int = 0
    backoff_resets: int = 0
    # Seconds from the plan's last scheduled fault until every watched
    # node reported the same tip; None until convergence is observed.
    reconvergence_time: Optional[float] = None
    fault_log: list = field(default_factory=list)

    def record_fault(self, kind: str, detail: str, now: float) -> None:
        """Count one injected fault and append its deterministic log line."""
        self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1
        self.fault_log.append(f"t={now:.6f} {kind} {detail}")

    @property
    def total_faults(self) -> int:
        return sum(self.faults_injected.values())


@dataclass(frozen=True)
class ValidationTelemetry:
    """One snapshot of a validation engine's script-layer counters.

    Bundles the script-verification cache (PR 1) with the static
    analyzer's standardness and fast-reject counters so daemons and
    experiment reports read one object instead of poking two stats
    structures on the engine.
    """

    script_cache_hits: int = 0
    script_cache_misses: int = 0
    script_cache_evictions: int = 0
    standardness_tx_checked: int = 0
    standardness_tx_rejected: int = 0
    spends_prechecked: int = 0
    script_fast_rejects: int = 0
    analyses: int = 0
    analysis_cache_hits: int = 0
    output_classes: dict = field(default_factory=dict)

    @classmethod
    def from_engine(cls, engine) -> "ValidationTelemetry":
        """Snapshot any object with ``cache_stats`` + ``policy.stats``."""
        cache = engine.cache_stats
        policy = engine.policy.stats
        return cls(
            script_cache_hits=cache.hits,
            script_cache_misses=cache.misses,
            script_cache_evictions=cache.evictions,
            standardness_tx_checked=policy.tx_checked,
            standardness_tx_rejected=policy.tx_rejected,
            spends_prechecked=policy.spends_prechecked,
            script_fast_rejects=policy.fast_rejects,
            analyses=policy.analyses,
            analysis_cache_hits=policy.analysis_cache_hits,
            output_classes=dict(policy.output_classes),
        )

    @property
    def executions_avoided(self) -> int:
        """Interpreter runs saved by the cache plus the fast-reject pass."""
        return self.script_cache_hits + self.script_fast_rejects


@dataclass
class ExchangeRecord:
    """Timestamps (simulation seconds) for one exchange; None = not reached."""

    exchange_id: int
    node_id: str
    gateway: str = ""
    recipient: str = ""
    plaintext: bytes = b""

    t_request: Optional[float] = None        # node uplinks the key request
    t_keygen_done: Optional[float] = None    # gateway has the ephemeral pair
    t_epk_sent: Optional[float] = None       # gateway starts the ePk downlink
    t_epk_received: Optional[float] = None   # node has ePk
    t_data_sent: Optional[float] = None      # node finishes the data uplink
    t_data_received: Optional[float] = None  # gateway has (Em, Sig, @R)
    t_delivered: Optional[float] = None      # recipient got the TCP delivery
    t_offer_sent: Optional[float] = None     # offer tx broadcast (step 9)
    t_claim_seen: Optional[float] = None     # recipient saw the claim tx
    t_decrypted: Optional[float] = None      # plaintext recovered (end)

    status: str = "pending"                  # pending/completed/failed
    failure_reason: str = ""
    price: int = 0
    decrypted: bytes = b""

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def latency(self) -> Optional[float]:
        """The paper's metric: first gateway message → recipient decryption."""
        if self.t_epk_sent is None or self.t_decrypted is None:
            return None
        return self.t_decrypted - self.t_epk_sent

    @property
    def radio_time(self) -> Optional[float]:
        if self.t_epk_sent is None or self.t_data_received is None:
            return None
        return self.t_data_received - self.t_epk_sent

    @property
    def settlement_time(self) -> Optional[float]:
        """Delivery → decryption: the blockchain fair-exchange leg."""
        if self.t_delivered is None or self.t_decrypted is None:
            return None
        return self.t_decrypted - self.t_delivered


class ExchangeTracker:
    """Registry of all exchanges in a run."""

    def __init__(self) -> None:
        self._records: dict[int, ExchangeRecord] = {}
        self._ids = itertools.count(1)

    def new_exchange(self, node_id: str, plaintext: bytes) -> ExchangeRecord:
        record = ExchangeRecord(
            exchange_id=next(self._ids), node_id=node_id, plaintext=plaintext,
        )
        self._records[record.exchange_id] = record
        return record

    def get(self, exchange_id: int) -> Optional[ExchangeRecord]:
        return self._records.get(exchange_id)

    def records(self) -> list[ExchangeRecord]:
        return list(self._records.values())

    def completed(self) -> list[ExchangeRecord]:
        return [r for r in self._records.values() if r.completed]

    def failed(self) -> list[ExchangeRecord]:
        return [r for r in self._records.values() if r.status == "failed"]

    def latencies(self) -> list[float]:
        return [r.latency for r in self.completed() if r.latency is not None]

    def latency_summary(self) -> Summary:
        """Latency statistics; the zero-exchange case yields the
        well-defined empty :class:`Summary` (count 0, NaN-free) so a run
        that completes nothing still reports instead of crashing."""
        return Summary.of(self.latencies())

    def completion_rate(self) -> float:
        total = len(self._records)
        return len(self.completed()) / total if total else 0.0
