"""Device provisioning (paper section 4.4).

Before deployment, a node and its recipient must share:

* a 32-byte AES-256 symmetric key ``K`` (confidentiality);
* an RSA key pair: the node holds the secret key ``Ska``, the recipient
  holds the public key ``Pk`` (integrity/authenticity);
* the recipient's blockchain address ``@R`` (routing identifier).

"A provisioning phase is therefore needed in order to load the necessary
keys on the node" — :func:`provision_device` is that phase.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.crypto import rsa
from repro.errors import ConfigurationError

__all__ = ["DeviceCredentials", "RecipientRegistry", "provision_device"]


@dataclass(frozen=True)
class DeviceCredentials:
    """Everything loaded onto one node at provisioning time."""

    device_id: str
    symmetric_key: bytes          # K — shared with the recipient
    signing_key: rsa.RSAPrivateKey  # Ska — node-only
    recipient_address: str        # @R

    def __post_init__(self) -> None:
        if len(self.symmetric_key) != 32:
            raise ConfigurationError(
                f"symmetric key must be 32 bytes, got {len(self.symmetric_key)}"
            )


@dataclass
class RecipientRegistry:
    """The recipient-side provisioning database.

    Maps device ids to the verification material the recipient needs:
    the shared ``K`` and the node's RSA public key.
    """

    symmetric_keys: dict[str, bytes] = field(default_factory=dict)
    public_keys: dict[str, rsa.RSAPublicKey] = field(default_factory=dict)

    def register(self, device_id: str, symmetric_key: bytes,
                 public_key: rsa.RSAPublicKey) -> None:
        if device_id in self.symmetric_keys:
            raise ConfigurationError(f"device already provisioned: {device_id}")
        self.symmetric_keys[device_id] = symmetric_key
        self.public_keys[device_id] = public_key

    def knows(self, device_id: str) -> bool:
        return device_id in self.symmetric_keys

    def key_for(self, device_id: str) -> bytes:
        try:
            return self.symmetric_keys[device_id]
        except KeyError:
            raise ConfigurationError(f"unknown device: {device_id}") from None

    def pubkey_for(self, device_id: str) -> rsa.RSAPublicKey:
        try:
            return self.public_keys[device_id]
        except KeyError:
            raise ConfigurationError(f"unknown device: {device_id}") from None


def provision_device(device_id: str, recipient_address: str,
                     registry: RecipientRegistry,
                     rng: Optional[random.Random] = None,
                     rsa_bits: int = 512) -> DeviceCredentials:
    """Generate and exchange a device's keys with its recipient.

    Returns the credentials to load on the node; the recipient-side
    material is entered into ``registry``.
    """
    rng = rng or random.SystemRandom()
    symmetric_key = bytes(rng.randrange(256) for _ in range(32))
    signing_key = rsa.generate_keypair(rsa_bits, rng)
    registry.register(device_id, symmetric_key, signing_key.public_key)
    return DeviceCredentials(
        device_id=device_id,
        symmetric_key=symmetric_key,
        signing_key=signing_key,
        recipient_address=recipient_address,
    )
