"""The BcWAN protocol core.

* :mod:`repro.core.messages` — the Fig. 4 payload pipeline (AES-256-CBC +
  RSA-512 wrap + RSA-512 signature);
* :mod:`repro.core.provisioning` — the node/recipient key-sharing phase;
* :mod:`repro.core.directory` — the OP_RETURN IP directory of section 4.3;
* :mod:`repro.core.daemon` — the Multichain-daemon queue with the block
  verification stall behind Figs. 5/6;
* :mod:`repro.core.node_agent`, :mod:`repro.core.gateway_agent`,
  :mod:`repro.core.recipient` — the three protocol roles of Fig. 3;
* :mod:`repro.core.network` — the full-testbed assembly;
* :mod:`repro.core.costmodel` — calibrated processing times;
* :mod:`repro.core.settlement` — regional checkpoint anchoring onto the
  global settlement chain (per-exchange instrumentation moved to
  :mod:`repro.obs.exchange`).
"""

from repro.core.analysis import LegBreakdown, decompose, format_breakdown
from repro.core.config import NetworkConfig, RegionTopology
from repro.core.costmodel import CostModel
from repro.core.election import MasterElection
from repro.core.rewards import (
    CongestionPricing,
    FixedPricing,
    PricingPolicy,
    RecipientBudget,
    RewardLedger,
    VolumeDiscountPricing,
)
from repro.core.daemon import BlockchainDaemon, DaemonStats
from repro.core.directory import (
    Announcement,
    DirectoryView,
    build_announcement_payload,
    parse_announcement_payload,
)
from repro.core.gateway_agent import GatewayAgent
from repro.core.messages import (
    BUNDLE_SIZE,
    MAX_PLAINTEXT,
    SealedBundle,
    decode_bundle,
    encode_bundle,
    open_message,
    seal_message,
    sign_payload,
    verify_payload,
)
from repro.obs.exchange import ExchangeRecord, ExchangeTracker
from repro.core.network import BcWANNetwork, Region, RunReport, Site
from repro.core.settlement import CheckpointAgent
from repro.core.node_agent import NodeAgent
from repro.core.provisioning import (
    DeviceCredentials,
    RecipientRegistry,
    provision_device,
)
from repro.core.recipient import RecipientAgent

__all__ = [
    "Announcement",
    "BUNDLE_SIZE",
    "BcWANNetwork",
    "BlockchainDaemon",
    "CheckpointAgent",
    "CongestionPricing",
    "CostModel",
    "FixedPricing",
    "LegBreakdown",
    "MasterElection",
    "PricingPolicy",
    "RecipientBudget",
    "RewardLedger",
    "VolumeDiscountPricing",
    "decompose",
    "format_breakdown",
    "DaemonStats",
    "DeviceCredentials",
    "DirectoryView",
    "ExchangeRecord",
    "ExchangeTracker",
    "GatewayAgent",
    "MAX_PLAINTEXT",
    "NetworkConfig",
    "NodeAgent",
    "RecipientAgent",
    "RecipientRegistry",
    "Region",
    "RegionTopology",
    "RunReport",
    "SealedBundle",
    "Site",
    "build_announcement_payload",
    "decode_bundle",
    "encode_bundle",
    "open_message",
    "parse_announcement_payload",
    "provision_device",
    "seal_message",
    "sign_payload",
    "verify_payload",
]
