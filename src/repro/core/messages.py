"""BcWAN payload construction — the crypto pipeline of Fig. 3 / Fig. 4.

The node-side pipeline (steps 3-4 of the paper's sequence):

1. AES-256-CBC encrypt the plaintext with the provisioned symmetric key
   ``K``; bundle as Fig. 4's 34-byte layout: ``len | IV | len | ciphertext``;
2. wrap the bundle with the gateway's *ephemeral* RSA-512 public key
   ``ePk`` → the 64-byte ``Em``;
3. RSA-512-sign ``Em || ePk`` with the node's secret key ``Ska`` → the
   64-byte ``Sig``.

The recipient runs the pipeline backwards once the gateway's claim
transaction reveals ``eSk`` on-chain.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto import modes, rsa
from repro.errors import ProtocolError

__all__ = [
    "SealedBundle",
    "encode_bundle",
    "decode_bundle",
    "seal_message",
    "open_message",
    "sign_payload",
    "verify_payload",
    "BUNDLE_SIZE",
    "MAX_PLAINTEXT",
]

# Fig. 4: 1-byte length + 16-byte IV + 1-byte length + 16-byte ciphertext.
BUNDLE_SIZE = 1 + 16 + 1 + 16
# One AES block of PKCS#7-padded plaintext (the paper assumes sensor
# readings under 16 bytes, so one ciphertext block).
MAX_PLAINTEXT = 15


@dataclass(frozen=True)
class SealedBundle:
    """The Fig. 4 AES bundle before RSA wrapping."""

    iv: bytes
    ciphertext: bytes

    def __post_init__(self) -> None:
        if len(self.iv) != 16:
            raise ProtocolError(f"IV must be 16 bytes, got {len(self.iv)}")
        if len(self.ciphertext) != 16:
            raise ProtocolError(
                f"bundle ciphertext must be one AES block, "
                f"got {len(self.ciphertext)} bytes"
            )


def encode_bundle(bundle: SealedBundle) -> bytes:
    """Serialize to the 34-byte Fig. 4 layout."""
    return (
        bytes([len(bundle.iv)]) + bundle.iv
        + bytes([len(bundle.ciphertext)]) + bundle.ciphertext
    )


def decode_bundle(data: bytes) -> SealedBundle:
    """Parse the 34-byte Fig. 4 layout."""
    if len(data) != BUNDLE_SIZE:
        raise ProtocolError(
            f"bundle must be {BUNDLE_SIZE} bytes, got {len(data)}"
        )
    iv_len = data[0]
    if iv_len != 16:
        raise ProtocolError(f"unexpected IV length: {iv_len}")
    iv = data[1:17]
    ct_len = data[17]
    if ct_len != 16:
        raise ProtocolError(f"unexpected ciphertext length: {ct_len}")
    return SealedBundle(iv=iv, ciphertext=data[18:34])


def seal_message(plaintext: bytes, symmetric_key: bytes,
                 ephemeral_pubkey: rsa.RSAPublicKey,
                 rng: Optional[random.Random] = None) -> bytes:
    """Node steps 3 of Fig. 3: double-encrypt ``plaintext`` → ``Em``.

    AES-256-CBC with ``symmetric_key`` first, then an RSA-512 wrap of the
    34-byte bundle with the gateway's ephemeral key.  Returns the 64-byte
    ``Em``.
    """
    if len(symmetric_key) != 32:
        raise ProtocolError(
            f"symmetric key must be 32 bytes (AES-256), got {len(symmetric_key)}"
        )
    if len(plaintext) > MAX_PLAINTEXT:
        raise ProtocolError(
            f"plaintext too long: {len(plaintext)} > {MAX_PLAINTEXT} bytes "
            f"(the Fig. 4 format carries one AES block)"
        )
    iv, ciphertext = modes.encrypt_cbc(symmetric_key, plaintext, rng=rng)
    bundle = SealedBundle(iv=iv, ciphertext=ciphertext)
    return ephemeral_pubkey.encrypt(encode_bundle(bundle), rng=rng)


def open_message(encrypted_message: bytes, symmetric_key: bytes,
                 ephemeral_privkey: rsa.RSAPrivateKey) -> bytes:
    """Recipient's final step: unwrap with ``eSk``, then AES-decrypt with ``K``."""
    try:
        bundle_bytes = ephemeral_privkey.decrypt(encrypted_message)
    except rsa.RSAError as exc:
        raise ProtocolError(f"RSA unwrap failed: {exc}") from exc
    bundle = decode_bundle(bundle_bytes)
    try:
        return modes.decrypt_cbc(symmetric_key, bundle.iv, bundle.ciphertext)
    except (modes.PaddingError, ValueError) as exc:
        raise ProtocolError(f"AES decryption failed: {exc}") from exc


def sign_payload(encrypted_message: bytes, ephemeral_pubkey_bytes: bytes,
                 node_secret_key: rsa.RSAPrivateKey) -> bytes:
    """Node step 4: sign ``Em || ePk`` with the provisioned secret key.

    Binding ``ePk`` into the signature proves to the recipient that the
    wrapped key is the genuine ephemeral key the gateway supplied — not
    one substituted by an attacker (paper section 5.1).
    """
    return node_secret_key.sign(encrypted_message + ephemeral_pubkey_bytes)


def verify_payload(encrypted_message: bytes, ephemeral_pubkey_bytes: bytes,
                   signature: bytes, node_public_key: rsa.RSAPublicKey) -> bool:
    """Recipient step 8: authenticate ``(Em, ePk)`` against the node's key."""
    return node_public_key.verify(
        encrypted_message + ephemeral_pubkey_bytes, signature
    )
