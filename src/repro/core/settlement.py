"""Regional checkpoint anchoring onto the global settlement chain.

One :class:`CheckpointAgent` runs per region of a hierarchical
federation.  It watches the region's gateway sub-chain, accumulates the
transactions each epoch settles, and periodically commits a checkpoint
transaction — an OP_RETURN digest built by
:mod:`repro.blockchain.checkpoint` — onto the settlement chain through
the region's anchor daemon.

Two delivery details matter on a lossy, partitionable WAN:

* **At most one outstanding checkpoint per region.**  A new epoch is only
  committed once the previous checkpoint confirmed on the anchor chain.
  This keeps the anchor's per-region monotonicity rules trivially
  satisfiable (no two same-region checkpoints can race inside one block)
  and means a partition simply pauses the epoch counter — settled
  transactions keep accumulating and are committed in one catch-up
  checkpoint after the heal.
* **Stuck checkpoints are re-sent directly.**  Gossip never re-relays a
  transaction its dedup cache already knows, and the anti-entropy sync
  agents repair *blocks* only — so a checkpoint dropped by a partition
  would otherwise never reach the anchor master.  The agent re-sends the
  raw :class:`~repro.p2p.message.TxMessage` to its anchor peers every
  interval until the checkpoint confirms.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.blockchain.checkpoint import (EMPTY_EPOCH_ROOT,
                                         build_checkpoint_payload)
from repro.blockchain.merkle import merkle_root
from repro.blockchain.transaction import Transaction
from repro.blockchain.wallet import Wallet
from repro.core.costmodel import CostModel
from repro.core.daemon import BlockchainDaemon
from repro.errors import ValidationError
from repro.p2p.message import TxMessage
from repro.sim.core import Simulator

__all__ = ["CheckpointAgent"]


class CheckpointAgent:
    """Commits one region's sub-chain digests onto the settlement chain.

    :param sub_daemon: the daemon following the region's gateway
        sub-chain (read-only: tip and connected transactions).
    :param anchor_daemon: this region's daemon on the settlement chain;
        checkpoint transactions are built and broadcast through it.
    :param anchor_wallet: a funded wallet on the settlement chain that
        carries the OP_RETURN commitments.
    """

    def __init__(self, sim: Simulator, region_id: int,
                 sub_daemon: BlockchainDaemon,
                 anchor_daemon: BlockchainDaemon,
                 anchor_wallet: Wallet,
                 cost_model: CostModel, rng: random.Random,
                 interval: float = 60.0,
                 registry=None) -> None:
        self.sim = sim
        self.region_id = region_id
        self.sub_daemon = sub_daemon
        self.anchor_daemon = anchor_daemon
        self.anchor_wallet = anchor_wallet
        self.cost_model = cost_model
        self.rng = rng
        self.interval = interval

        self.epoch = 0
        self.checkpoints_committed = 0
        self.resends = 0
        # txids settled on the sub-chain since the last committed epoch,
        # in connect order (the preimage of the next settled root).
        self._epoch_txids: list[bytes] = []
        # epoch -> the txids its settled root commits to, kept so
        # settlement proofs (Merkle branches) can be produced later.
        self.epoch_settled: dict[int, tuple[bytes, ...]] = {}
        # The one checkpoint allowed in flight, until it confirms.
        self._outstanding: Optional[Transaction] = None

        self._counter = None
        if registry is not None:
            self._counter = registry.counter(
                "federation.checkpoints_committed", "region",
            ).labels(region=str(region_id))

        sub_daemon.node.chain.add_connect_listener(self._on_block)

    # -- sub-chain watch -------------------------------------------------------

    def _on_block(self, block, height: int) -> None:
        for tx in block.transactions:
            if not tx.is_coinbase:
                self._epoch_txids.append(tx.txid)

    @property
    def pending_txids(self) -> int:
        """Settled transactions waiting for the next checkpoint."""
        return len(self._epoch_txids)

    # -- the commit loop -------------------------------------------------------

    def start(self):
        return self.sim.process(self._loop())

    def _loop(self):
        while True:
            yield self.sim.timeout(self.interval)
            if self._outstanding is not None:
                if self._confirmed(self._outstanding.txid):
                    self._outstanding = None
                else:
                    self._resend(self._outstanding)
                    continue
            yield from self._commit()

    def _confirmed(self, txid: bytes) -> bool:
        return bool(self.anchor_daemon.node.chain.confirmations(txid))

    def _commit(self):
        """Build and broadcast the next epoch's checkpoint."""
        sub_chain = self.sub_daemon.node.chain
        txids = tuple(self._epoch_txids)
        settled_root = merkle_root(list(txids)) if txids else EMPTY_EPOCH_ROOT
        payload = build_checkpoint_payload(
            region_id=self.region_id,
            epoch=self.epoch + 1,
            height=sub_chain.height,
            tip_hash=sub_chain.tip.hash,
            settled_root=settled_root,
            tx_count=len(txids),
        )
        try:
            tx = yield self.anchor_daemon.rpc(
                lambda: self.anchor_wallet.create_announcement(payload)
            )
        except ValidationError:
            # Anchor wallet momentarily out of spendable coins (e.g. the
            # previous carrier's change not yet confirmed): retry next
            # tick, the epoch has not advanced.
            return
        accepted = yield self.anchor_daemon.call(
            self.cost_model.daemon_tx_process,
            lambda: self.anchor_daemon.gossip.broadcast_transaction(tx),
        )
        if not accepted:
            self.anchor_wallet.release_pending(tx)
            return
        self.epoch += 1
        self.epoch_settled[self.epoch] = txids
        del self._epoch_txids[:len(txids)]
        self._outstanding = tx
        self.checkpoints_committed += 1
        if self._counter is not None:
            self._counter.inc()

    def _resend(self, tx: Transaction) -> None:
        """Push a stuck checkpoint directly to every anchor peer.

        The gossip dedup cache will not re-relay it and block sync will
        not carry mempool contents, so after a healed partition this
        direct push is the only road to the anchor master.
        """
        gossip = self.anchor_daemon.gossip
        for peer in gossip.peers:
            gossip.network.send(gossip.name, peer, TxMessage(transaction=tx))
        self.resends += 1
