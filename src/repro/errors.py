"""Shared exception hierarchy for the BcWAN reproduction.

Subsystem-specific errors (e.g. :class:`repro.crypto.rsa.RSAError`) derive
from built-in ``Exception``; protocol-level failures that cross module
boundaries derive from :class:`BcWANError` so applications can catch one
family.
"""

from __future__ import annotations

__all__ = [
    "BcWANError",
    "ProtocolError",
    "ValidationError",
    "ConfigurationError",
]


class BcWANError(Exception):
    """Base class for protocol-level BcWAN failures."""


class ProtocolError(BcWANError):
    """A peer violated the BcWAN exchange protocol."""


class ValidationError(BcWANError):
    """A transaction, block, or message failed validation rules."""


class ConfigurationError(BcWANError):
    """Inconsistent or out-of-range configuration."""
