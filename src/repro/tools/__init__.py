"""Operator tooling.

* :mod:`repro.tools.explorer` — render chains, blocks, and BcWAN
  transaction types as text (the missing ``multichain-cli`` equivalent);
* :mod:`repro.tools.experiment` — a command-line front end to the
  paper's experiments (``bcwan-experiment fig5 ...``).
"""

from repro.tools.explorer import (
    classify_output,
    format_block,
    format_chain_summary,
    format_transaction,
    scan_key_releases,
)

__all__ = [
    "classify_output",
    "format_block",
    "format_chain_summary",
    "format_transaction",
    "scan_key_releases",
]
