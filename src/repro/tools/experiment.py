"""Command-line front end to the paper's experiments.

::

    bcwan-experiment fig5 --exchanges 400 --seed 5
    bcwan-experiment fig6 --exchanges 400
    bcwan-experiment capacity
    bcwan-experiment doublespend
    bcwan-experiment baselines --exchanges 60

Each subcommand prints the same paper-vs-measured tables as the pytest
benchmark harness; this entry point exists for quick interactive sweeps
(different seeds, block intervals, stall parameters) without pytest.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.stats import histogram

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bcwan-experiment",
        description="Reproduce BcWAN (Middleware '18) experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("fig5", "exchange latency, block verification disabled"),
        ("fig6", "exchange latency, block verification enabled"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--exchanges", type=int, default=400)
        p.add_argument("--seed", type=int, default=5)
        p.add_argument("--gateways", type=int, default=5)
        p.add_argument("--sensors", type=int, default=30)
        p.add_argument("--block-interval", type=float, default=15.0)
        p.add_argument("--stall-base", type=float, default=8.0)
        p.add_argument("--histogram", action="store_true",
                       help="print the latency histogram")
        p.add_argument("--trace-out", metavar="PATH", default=None,
                       help="enable tracing and write the run's JSONL "
                            "trace export to PATH")
        p.add_argument("--breakdown", action="store_true",
                       help="enable tracing and print the per-leg "
                            "latency breakdown (Fig. 5/6 legs)")

    sub.add_parser("capacity", help="the 183 msgs/sensor/hour arithmetic")

    p = sub.add_parser("doublespend", help="the §6 double-spend race")
    p.add_argument("--confirmations", type=int, nargs="*",
                   default=[0, 1, 2, 6])

    p = sub.add_parser("baselines", help="BcWAN vs legacy vs altruistic")
    p.add_argument("--exchanges", type=int, default=60)
    p.add_argument("--seed", type=int, default=17)

    return parser


def _run_latency_figure(args, verify_blocks: bool) -> int:
    from repro.core import BcWANNetwork, NetworkConfig

    tracing = bool(args.trace_out) or args.breakdown
    config = NetworkConfig(
        num_gateways=args.gateways,
        sensors_per_gateway=args.sensors,
        seed=args.seed,
        verify_blocks=verify_blocks,
        block_interval=args.block_interval,
        verification_stall_base=args.stall_base,
        tracing=tracing,
    )
    print(f"running {args.exchanges} exchanges "
          f"(verify_blocks={verify_blocks}, seed={args.seed})...")
    network = BcWANNetwork(config)
    report = network.run(num_exchanges=args.exchanges)
    print(report.format())
    if args.breakdown:
        print()
        print(network.format_breakdown())
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as fh:
            fh.write(network.export_trace())
        print(f"trace written to {args.trace_out}")
    paper = 30.241 if verify_blocks else 1.604
    if report.latencies:
        print(f"paper mean: {paper} s — measured mean: "
              f"{report.mean_latency:.3f} s")
    if args.histogram and report.latencies:
        peak = 0
        rows = histogram(report.latencies, bins=16)
        peak = max(count for _lo, _hi, count in rows) or 1
        for lo, hi, count in rows:
            bar = "#" * round(count / peak * 40)
            print(f"  {lo:8.2f}-{hi:8.2f} s | {count:5d} | {bar}")
    return 0


def _run_capacity() -> int:
    from repro.lora.dutycycle import max_messages_per_hour
    from repro.lora.phy import LoRaModulation

    print(f"{'SF':>4} {'ToA(ms)':>9} {'msgs/h (exact)':>15} "
          f"{'msgs/h (nominal)':>17}")
    for sf in range(7, 13):
        modulation = LoRaModulation(spreading_factor=sf)
        exact = max_messages_per_hour(modulation.time_on_air(132), 0.01)
        nominal = max_messages_per_hour(
            modulation.nominal_time_on_air(132), 0.01)
        print(f"SF{sf:>2} {modulation.time_on_air(132) * 1000:>9.1f} "
              f"{exact:>15.1f} {nominal:>17.1f}")
    print("\npaper (SF7, nominal): 183 messages/sensor/hour")
    return 0


def _run_doublespend(confirmations: list[int]) -> int:
    from repro.attacks import run_double_spend

    print(f"{'confirmations':>14} {'key leaked':>11} {'gateway paid':>13} "
          f"{'attack wins':>12}")
    for depth in confirmations:
        result = run_double_spend(confirmations_required=depth)
        print(f"{depth:>14} {str(result.key_revealed):>11} "
              f"{str(result.gateway_paid):>13} "
              f"{str(result.attack_succeeded):>12}")
    return 0


def _run_baselines(args) -> int:
    from repro.baselines import AltruisticBaseline, LoRaWANBaseline
    from repro.core import BcWANNetwork, NetworkConfig

    scale = dict(num_gateways=3, sensors_per_gateway=5,
                 exchange_interval=40.0, seed=args.seed)
    bcwan = BcWANNetwork(NetworkConfig(**scale)).run(args.exchanges)
    legacy = LoRaWANBaseline(NetworkConfig(**scale)).run(args.exchanges)
    altruistic = AltruisticBaseline(NetworkConfig(**scale),
                                    participation=0.5).run(args.exchanges)

    def mean(report):
        return (f"{report.mean_latency:.2f}" if report.latencies else "-")

    print(f"{'system':>28} {'delivered':>10} {'mean lat(s)':>12}")
    print(f"{'legacy LoRaWAN (roaming)':>28} "
          f"{legacy.completed:>10} {mean(legacy):>12}")
    print(f"{'altruistic (50% goodwill)':>28} "
          f"{altruistic.completed:>10} {mean(altruistic):>12}")
    print(f"{'BcWAN':>28} {bcwan.completed:>10} "
          f"{bcwan.mean_latency:>12.2f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "fig5":
        return _run_latency_figure(args, verify_blocks=False)
    if args.command == "fig6":
        return _run_latency_figure(args, verify_blocks=True)
    if args.command == "capacity":
        return _run_capacity()
    if args.command == "doublespend":
        return _run_doublespend(args.confirmations)
    if args.command == "baselines":
        return _run_baselines(args)
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
