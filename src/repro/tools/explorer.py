"""A chain explorer for BcWAN networks.

Renders blocks and transactions with BcWAN-aware annotations: P2PKH
payments, OP_RETURN directory announcements (decoded), Listing-1
key-release offers (with their refund locktimes), claims (with the
revealed ephemeral key fingerprint), and refunds.

Usable as a library on any :class:`repro.blockchain.Chain`, or as a demo
CLI (``python -m repro.tools.explorer``) that runs a small federation and
walks its chain.
"""

from __future__ import annotations

from typing import Optional

from repro.blockchain.block import Block
from repro.blockchain.chain import Chain
from repro.blockchain.transaction import Transaction, TxOutput
from repro.core.directory import parse_announcement_payload
from repro.crypto import rsa
from repro.script.builder import parse_ephemeral_key_release
from repro.script.opcodes import OP
from repro.script.script import Script

__all__ = [
    "classify_output",
    "format_transaction",
    "format_block",
    "format_chain_summary",
    "scan_key_releases",
    "main",
]


def classify_output(output: TxOutput) -> str:
    """A one-line human description of an output's locking script."""
    elements = output.script_pubkey.elements
    if (len(elements) == 2 and elements[0] == OP.OP_RETURN
            and isinstance(elements[1], bytes)):
        parsed = parse_announcement_payload(elements[1])
        if parsed is not None:
            address, endpoint, port = parsed
            return (f"directory announcement: {address} -> "
                    f"{endpoint}:{port}")
        return f"OP_RETURN data ({len(elements[1])} bytes)"
    release = parse_ephemeral_key_release(output.script_pubkey)
    if release is not None:
        _rsa_pubkey, gateway_hash, _buyer_hash, locktime = release
        return (f"key-release offer: {output.value} to gateway "
                f"{gateway_hash.hex()[:12]}.., refund at height {locktime}")
    if (len(elements) == 5 and elements[0] == OP.OP_DUP
            and elements[1] == OP.OP_HASH160
            and isinstance(elements[2], bytes) and len(elements[2]) == 20):
        return f"P2PKH: {output.value} to {elements[2].hex()[:12]}.."
    return f"script: {output.script_pubkey.disassemble()[:60]}"


def _classify_input(tx: Transaction, index: int) -> str:
    tx_input = tx.inputs[index]
    if tx.is_coinbase:
        return "coinbase"
    elements = tx_input.script_sig.elements
    if len(elements) == 3 and isinstance(elements[2], bytes):
        try:
            key = rsa.RSAPrivateKey.from_bytes(elements[2])
        except rsa.RSAError:
            key = None
        if key is not None:
            fingerprint = key.public_key.fingerprint().hex()[:12]
            return (f"KEY-RELEASE CLAIM spending {tx_input.outpoint} — "
                    f"reveals eSk (ePk fingerprint {fingerprint}..)")
        if elements[2] == b"\x00":
            return f"key-release REFUND spending {tx_input.outpoint}"
    if len(elements) == 2:
        return f"P2PKH spend of {tx_input.outpoint}"
    return f"spend of {tx_input.outpoint}"


def format_transaction(tx: Transaction, indent: str = "  ") -> str:
    """Multi-line rendering of one transaction."""
    lines = [f"{indent}tx {tx.txid.hex()[:24]}.. "
             f"({'coinbase, ' if tx.is_coinbase else ''}"
             f"{len(tx.inputs)} in / {len(tx.outputs)} out, "
             f"locktime={tx.locktime})"]
    for index in range(len(tx.inputs)):
        lines.append(f"{indent}  in[{index}]: {_classify_input(tx, index)}")
    for index, output in enumerate(tx.outputs):
        lines.append(f"{indent}  out[{index}]: {classify_output(output)}")
    return "\n".join(lines)


def format_block(block: Block, height: Optional[int] = None) -> str:
    """Multi-line rendering of one block."""
    head = (f"block {'#' + str(height) + ' ' if height is not None else ''}"
            f"{block.hash.hex()[:24]}.. "
            f"t={block.header.timestamp:.3f} "
            f"({len(block.transactions)} txs, "
            f"{block.serialized_size()} bytes)")
    parts = [head]
    for tx in block.transactions:
        parts.append(format_transaction(tx))
    return "\n".join(parts)


def format_chain_summary(chain: Chain) -> str:
    """One-paragraph summary of a chain's state."""
    tx_count = sum(
        len(block.transactions)
        for _height, block in chain.iter_active_blocks()
    )
    return (f"chain height {chain.height}, tip "
            f"{chain.tip.hash.hex()[:24]}.., {tx_count} transactions, "
            f"{len(chain.utxos)} UTXOs holding "
            f"{chain.utxos.total_value()} units")


def scan_key_releases(chain: Chain) -> list[dict]:
    """Every fair-exchange settlement visible on the active chain.

    Returns one record per claim/refund: height, txid, kind, and the
    revealed key fingerprint for claims.
    """
    events = []
    for height, block in chain.iter_active_blocks(1):
        for tx in block.transactions:
            if tx.is_coinbase:
                continue
            for tx_input in tx.inputs:
                elements = tx_input.script_sig.elements
                if len(elements) != 3 or not isinstance(elements[2], bytes):
                    continue
                try:
                    key = rsa.RSAPrivateKey.from_bytes(elements[2])
                except rsa.RSAError:
                    key = None
                if key is not None:
                    events.append({
                        "height": height,
                        "txid": tx.txid.hex(),
                        "kind": "claim",
                        "epk_fingerprint":
                            key.public_key.fingerprint().hex()[:16],
                    })
                elif elements[2] == b"\x00":
                    events.append({
                        "height": height,
                        "txid": tx.txid.hex(),
                        "kind": "refund",
                        "epk_fingerprint": "",
                    })
    return events


def main() -> None:  # pragma: no cover - demo entry point
    """Run a tiny federation and walk its chain."""
    from repro.core import BcWANNetwork, NetworkConfig

    print("running a 3-actor federation (12 exchanges) to populate a chain...")
    network = BcWANNetwork(NetworkConfig(
        num_gateways=3, sensors_per_gateway=2, exchange_interval=20.0,
        seed=1,
    ))
    network.run(num_exchanges=12)
    chain = network.master_daemon.node.chain

    print()
    print(format_chain_summary(chain))
    print()
    settlements = scan_key_releases(chain)
    print(f"{len(settlements)} fair-exchange settlements on chain:")
    for event in settlements[:10]:
        print(f"  height {event['height']:>3}  {event['kind']:<7} "
              f"{event['txid'][:24]}..  {event['epk_fingerprint']}")
    print()
    print("most recent block in full:")
    print(format_block(chain.tip.block, chain.height))


if __name__ == "__main__":  # pragma: no cover
    main()
