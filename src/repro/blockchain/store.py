"""Chain persistence: export and replay.

Stores the active chain as JSON-lines of hex-encoded wire blocks — a
portable snapshot a new node can bootstrap from (the paper's "on
start-up, each node retrieves the recent blocks" without a live peer),
and the explorer can open offline.

Loading *replays* every block through full validation, so a tampered
snapshot fails exactly where a tampered peer would.
"""

from __future__ import annotations

import json
import struct
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Optional, Union

from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.chain import Chain
from repro.blockchain.params import ChainParams
from repro.blockchain.transaction import Transaction
from repro.errors import ValidationError

__all__ = ["serialize_block", "deserialize_block", "save_chain", "load_chain"]

_FORMAT_VERSION = 1


def serialize_block(block: Block) -> bytes:
    """Full wire form: header, tx count, then each transaction."""
    out = bytearray(block.header.serialize())
    out += struct.pack("<I", len(block.transactions))
    for tx in block.transactions:
        tx_bytes = tx.serialize()
        out += struct.pack("<I", len(tx_bytes))
        out += tx_bytes
    return bytes(out)


def deserialize_block(data: bytes) -> Block:
    """Parse :func:`serialize_block` output (validating structure)."""
    header_size = 4 + 32 + 32 + 8 + 8
    if len(data) < header_size + 4:
        raise ValidationError("truncated block")
    header = BlockHeader.deserialize(data[:header_size])
    offset = header_size
    (tx_count,) = struct.unpack_from("<I", data, offset)
    offset += 4
    transactions = []
    for _ in range(tx_count):
        if offset + 4 > len(data):
            raise ValidationError("truncated transaction length")
        (tx_len,) = struct.unpack_from("<I", data, offset)
        offset += 4
        if offset + tx_len > len(data):
            raise ValidationError("truncated transaction body")
        transactions.append(Transaction.deserialize(data[offset:offset + tx_len]))
        offset += tx_len
    if offset != len(data):
        raise ValidationError(f"{len(data) - offset} trailing bytes in block")
    block = Block(header=header, transactions=transactions)
    if block.compute_merkle_root() != header.merkle_root:
        raise ValidationError("snapshot block fails its own Merkle root")
    return block


Destination = Union[str, Path, IO[str]]


@contextmanager
def _opened(target: Destination, mode: str):
    """Yield a text stream for a path or pass a file-like through.

    File-like targets (``io.StringIO``, sockets, an in-memory crash
    snapshot) are yielded as-is and left open — the caller owns them.
    """
    if hasattr(target, "write") or hasattr(target, "read"):
        yield target
    else:
        with Path(target).open(mode, encoding="utf-8") as handle:
            yield handle


def save_chain(chain: Chain, path: Destination) -> int:
    """Write the active chain (excluding genesis) to ``path``.

    ``path`` may be a filesystem path or any writable text stream.
    Returns the number of blocks written.  Genesis is derived from the
    chain params, so it is never stored.
    """
    count = 0
    with _opened(path, "w") as handle:
        handle.write(json.dumps({
            "format": _FORMAT_VERSION,
            "height": chain.height,
            "tip": chain.tip.hash.hex(),
        }) + "\n")
        for height, block in chain.iter_active_blocks(start_height=1):
            handle.write(json.dumps({
                "height": height,
                "block": serialize_block(block).hex(),
            }) + "\n")
            count += 1
    return count


def load_chain(path: Destination,
               params: Optional[ChainParams] = None,
               verify_scripts: Optional[bool] = None) -> Chain:
    """Rebuild a chain from a snapshot, re-validating every block.

    ``path`` may be a filesystem path or any readable text stream.
    """
    chain = Chain(params, verify_scripts=verify_scripts)
    with _opened(path, "r") as handle:
        header_line = handle.readline()
        if not header_line:
            raise ValidationError(f"empty chain snapshot: {path}")
        meta = json.loads(header_line)
        if meta.get("format") != _FORMAT_VERSION:
            raise ValidationError(
                f"unsupported snapshot format: {meta.get('format')}"
            )
        for line in handle:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            block = deserialize_block(bytes.fromhex(entry["block"]))
            result = chain.add_block(block)
            if result.status not in ("active", "side"):
                raise ValidationError(
                    f"snapshot block at height {entry['height']} did not "
                    f"connect: {result.status}"
                )
    expected_tip = meta.get("tip")
    if expected_tip and chain.tip.hash.hex() != expected_tip:
        raise ValidationError(
            f"snapshot tip mismatch: expected {expected_tip[:16]}.., "
            f"got {chain.tip.hash.hex()[:16]}.."
        )
    return chain
