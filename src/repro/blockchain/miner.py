"""Block assembly and mining.

The paper's deployment has a single AWS master node that mines on a
schedule while the PlanetLab gateways only submit transactions — the
Multichain private-chain pattern.  :class:`Miner` assembles templates from
a mempool and (optionally trivial) proof-of-work; scheduling lives in the
simulation layer (:mod:`repro.core.network`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.blockchain.block import Block
from repro.blockchain.chain import Chain
from repro.blockchain.mempool import Mempool
from repro.blockchain.params import ChainParams
from repro.blockchain.transaction import (
    COINBASE_OUTPOINT,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.errors import ValidationError
from repro.script.builder import p2pkh_locking
from repro.script.script import Script, encode_number

__all__ = ["Miner"]

_MAX_NONCE = 1 << 62


@dataclass
class Miner:
    """Assembles and mines blocks paying ``reward_pubkey_hash``.

    ``obs`` optionally points at a wall-clock
    :class:`~repro.obs.profile.HotPathProfiler`; when None (default) the
    mining path pays one attribute test.
    """

    chain: Chain
    mempool: Mempool
    reward_pubkey_hash: bytes
    obs: Optional[object] = None
    # When True, every template is speculatively connected (scripts and
    # all, commit=False) before mining.  With a VerifyPool attached to
    # the engine the checks fan out across workers, and the verdicts they
    # warm into the script cache make the real connect cache-hit clean.
    validate_template: bool = False

    def __post_init__(self) -> None:
        if len(self.reward_pubkey_hash) != 20:
            raise ValidationError(
                f"reward pubkey hash must be 20 bytes, "
                f"got {len(self.reward_pubkey_hash)}"
            )

    @property
    def params(self) -> ChainParams:
        return self.chain.params

    def build_coinbase(self, height: int, fees: int) -> Transaction:
        """The subsidy+fees transaction for a block at ``height``.

        The height is pushed into the coinbase scriptSig (as BIP 34 does)
        so coinbases at different heights never collide on txid.
        """
        return Transaction(
            inputs=[TxInput(outpoint=COINBASE_OUTPOINT,
                            script_sig=Script([encode_number(height)]))],
            outputs=[TxOutput(
                value=self.params.coinbase_reward + fees,
                script_pubkey=p2pkh_locking(self.reward_pubkey_hash),
            )],
        )

    def build_template(self, timestamp: float) -> Block:
        """Assemble an unmined block on the current tip.

        Fee accounting is speculative validation: the selected batch is
        applied to a copy-on-write overlay of the live UTXO set, which
        both resolves in-batch dependencies and guarantees the template
        connects — without cloning or mutating chain state.
        """
        height = self.chain.height + 1
        # Reserve room for the header (84 B) and the coinbase (~90 B,
        # plus slack for a large fee value).
        budget = self.params.max_block_size - 250
        selected = self.mempool.select_for_block(budget)
        if self.validate_template:
            # Admission already recorded each member's intrinsic fee
            # (inputs minus outputs never changes after the fact), and
            # the full template connect below re-derives and enforces
            # the same sum — the speculative pre-pass would be a third
            # redundant walk.
            fees = self.mempool.package_fee(selected)
        else:
            try:
                fees = self.chain.engine.speculative_fees(
                    selected, self.chain.utxos, height,
                )
            except ValidationError as exc:
                raise ValidationError(
                    f"template assembly failed: {exc}") from exc
        coinbase = self.build_coinbase(height, fees)
        template = Block.assemble(
            prev_hash=self.chain.tip.hash,
            timestamp=timestamp,
            transactions=[coinbase, *selected],
        )
        if self.validate_template:
            try:
                self.chain.engine.connect_block(
                    template, self.chain.utxos, height,
                    verify_scripts=True, commit=False,
                )
            except ValidationError as exc:
                raise ValidationError(
                    f"template validation failed: {exc}"
                ) from exc
        return template

    def mine(self, timestamp: float) -> Block:
        """Produce a valid block at ``timestamp`` (grinding nonces if needed)."""
        if self.obs is None:
            return self._mine(timestamp)
        t0 = self.obs.clock()
        try:
            return self._mine(timestamp)
        finally:
            self.obs.observe("miner.mine", self.obs.clock() - t0)

    def _mine(self, timestamp: float) -> Block:
        template = self.build_template(timestamp)
        if template.header.meets_target(self.params.pow_bits):
            return template
        for nonce in range(1, _MAX_NONCE):
            candidate = Block.assemble(
                prev_hash=template.header.prev_hash,
                timestamp=timestamp,
                transactions=template.transactions,
                nonce=nonce,
            )
            if candidate.header.meets_target(self.params.pow_bits):
                return candidate
        raise ValidationError("nonce space exhausted")  # pragma: no cover

    def mine_and_connect(self, timestamp: float) -> Block:
        """Mine a block, connect it locally, and clear its pool entries."""
        block = self.mine(timestamp)
        self.chain.add_block(block)
        self.mempool.remove_confirmed(block.transactions)
        return block
