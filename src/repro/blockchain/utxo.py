"""The unspent-transaction-output set."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.blockchain.transaction import OutPoint, Transaction, TxOutput
from repro.errors import ValidationError

__all__ = ["UTXOEntry", "UTXOSet"]


@dataclass(frozen=True)
class UTXOEntry:
    """An unspent output plus the metadata validation needs."""

    output: TxOutput
    height: int
    is_coinbase: bool

    @property
    def value(self) -> int:
        return self.output.value


class UTXOSet:
    """Mapping of :class:`OutPoint` to :class:`UTXOEntry` with undo support.

    ``apply_transaction`` returns the spent entries so the chain layer can
    undo a block during reorgs.
    """

    def __init__(self) -> None:
        self._entries: dict[OutPoint, UTXOEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, outpoint: OutPoint) -> bool:
        return outpoint in self._entries

    def get(self, outpoint: OutPoint) -> Optional[UTXOEntry]:
        return self._entries.get(outpoint)

    def items(self) -> Iterator[tuple[OutPoint, UTXOEntry]]:
        return iter(self._entries.items())

    def total_value(self) -> int:
        return sum(entry.value for entry in self._entries.values())

    def add(self, outpoint: OutPoint, entry: UTXOEntry) -> None:
        if outpoint in self._entries:
            raise ValidationError(f"duplicate UTXO: {outpoint}")
        self._entries[outpoint] = entry

    def remove(self, outpoint: OutPoint) -> UTXOEntry:
        entry = self._entries.pop(outpoint, None)
        if entry is None:
            raise ValidationError(f"missing UTXO: {outpoint}")
        return entry

    def apply_transaction(self, tx: Transaction,
                          height: int) -> dict[OutPoint, UTXOEntry]:
        """Spend ``tx``'s inputs and create its outputs.

        Returns the spent entries keyed by outpoint (the undo record).
        Raises :class:`ValidationError` (leaving the set unchanged) if any
        input is missing.
        """
        if not tx.is_coinbase:
            missing = [
                tx_input.outpoint for tx_input in tx.inputs
                if tx_input.outpoint not in self._entries
            ]
            if missing:
                raise ValidationError(
                    f"transaction {tx.txid.hex()[:16]}.. spends missing "
                    f"outputs: {', '.join(str(o) for o in missing)}"
                )
        spent: dict[OutPoint, UTXOEntry] = {}
        if not tx.is_coinbase:
            for tx_input in tx.inputs:
                spent[tx_input.outpoint] = self.remove(tx_input.outpoint)
        for index, output in enumerate(tx.outputs):
            self.add(
                OutPoint(txid=tx.txid, index=index),
                UTXOEntry(output=output, height=height,
                          is_coinbase=tx.is_coinbase),
            )
        return spent

    def undo_transaction(self, tx: Transaction,
                         spent: dict[OutPoint, UTXOEntry]) -> None:
        """Reverse :meth:`apply_transaction` during a reorg."""
        for index in range(len(tx.outputs)):
            self.remove(OutPoint(txid=tx.txid, index=index))
        for outpoint, entry in spent.items():
            self.add(outpoint, entry)

    def snapshot(self) -> dict[OutPoint, UTXOEntry]:
        """A shallow copy of the current set (entries are immutable)."""
        return dict(self._entries)
