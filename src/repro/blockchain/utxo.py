"""The unspent-transaction-output set and copy-on-write overlay views."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Optional, Protocol, Union

from repro.blockchain.transaction import OutPoint, Transaction, TxOutput
from repro.errors import ValidationError

__all__ = ["JournaledUTXOSet", "UTXOEntry", "UTXOSet", "UTXOView"]


@dataclass(frozen=True)
class UTXOEntry:
    """An unspent output plus the metadata validation needs."""

    output: TxOutput
    height: int
    is_coinbase: bool

    @property
    def value(self) -> int:
        return self.output.value

    @property
    def entry_hash(self) -> bytes:
        """Digest of everything script verification can observe.

        Deliberately excludes ``height`` and ``is_coinbase``: those feed
        the *contextual* stage (maturity), not script execution, and the
        same logical output must hash identically whether it was resolved
        from the confirmed set or synthesized from an unconfirmed parent
        — that equality is what lets the block-connect stage reuse script
        verdicts cached at mempool admission.
        """
        return hashlib.sha256(self.output.serialize()).digest()


class UTXOLike(Protocol):
    """What validation needs from a UTXO source (set or overlay view)."""

    def get(self, outpoint: OutPoint) -> Optional[UTXOEntry]: ...

    def __contains__(self, outpoint: OutPoint) -> bool: ...


class UTXOSet:
    """Mapping of :class:`OutPoint` to :class:`UTXOEntry` with undo support.

    ``apply_transaction`` returns the spent entries so the chain layer can
    undo a block during reorgs.
    """

    def __init__(self) -> None:
        self._entries: dict[OutPoint, UTXOEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, outpoint: OutPoint) -> bool:
        return outpoint in self._entries

    def get(self, outpoint: OutPoint) -> Optional[UTXOEntry]:
        return self._entries.get(outpoint)

    def items(self) -> Iterator[tuple[OutPoint, UTXOEntry]]:
        return iter(self._entries.items())

    def total_value(self) -> int:
        return sum(entry.value for entry in self._entries.values())

    def add(self, outpoint: OutPoint, entry: UTXOEntry) -> None:
        if outpoint in self._entries:
            raise ValidationError(f"duplicate UTXO: {outpoint}")
        self._entries[outpoint] = entry

    def remove(self, outpoint: OutPoint) -> UTXOEntry:
        entry = self._entries.pop(outpoint, None)
        if entry is None:
            raise ValidationError(f"missing UTXO: {outpoint}")
        return entry

    def apply_transaction(self, tx: Transaction,
                          height: int) -> dict[OutPoint, UTXOEntry]:
        """Spend ``tx``'s inputs and create its outputs.

        Returns the spent entries keyed by outpoint (the undo record).
        Raises :class:`ValidationError` (leaving the set unchanged) if any
        input is missing.
        """
        if not tx.is_coinbase:
            missing = [
                tx_input.outpoint for tx_input in tx.inputs
                if tx_input.outpoint not in self._entries
            ]
            if missing:
                raise ValidationError(
                    f"transaction {tx.txid.hex()[:16]}.. spends missing "
                    f"outputs: {', '.join(str(o) for o in missing)}"
                )
        spent: dict[OutPoint, UTXOEntry] = {}
        if not tx.is_coinbase:
            for tx_input in tx.inputs:
                spent[tx_input.outpoint] = self.remove(tx_input.outpoint)
        for index, output in enumerate(tx.outputs):
            self.add(
                OutPoint(txid=tx.txid, index=index),
                UTXOEntry(output=output, height=height,
                          is_coinbase=tx.is_coinbase),
            )
        return spent

    def undo_transaction(self, tx: Transaction,
                         spent: dict[OutPoint, UTXOEntry]) -> None:
        """Reverse :meth:`apply_transaction` during a reorg."""
        for index in range(len(tx.outputs)):
            self.remove(OutPoint(txid=tx.txid, index=index))
        for outpoint, entry in spent.items():
            self.add(outpoint, entry)

    def snapshot(self) -> dict[OutPoint, UTXOEntry]:
        """A shallow copy of the current set (entries are immutable)."""
        return dict(self._entries)


class JournaledUTXOSet(UTXOSet):
    """A :class:`UTXOSet` with an append-only undo journal.

    Every mutation appends one ``(was_add, outpoint, entry)`` record —
    O(1) per spend no matter how large the set grows — and
    :meth:`rewind` plays records back in reverse, turning a reorg
    disconnect into a journal rewind instead of per-transaction dict
    surgery.  The mapping state after any sequence of operations is
    identical to a plain :class:`UTXOSet` (the journal is pure history),
    so digests computed over :meth:`items` agree bit-for-bit.

    ``mark()`` values are monotone positions in the journal;
    :meth:`prune` discards history older than a mark (bounding memory)
    after which rewinding past it raises.
    """

    def __init__(self) -> None:
        super().__init__()
        self._journal: list[tuple[bool, OutPoint, UTXOEntry]] = []
        self._base_mark = 0

    def mark(self) -> int:
        """The current journal position; pass to :meth:`rewind` later."""
        return self._base_mark + len(self._journal)

    @property
    def journal_entries(self) -> int:
        """Records currently held (post-prune) — telemetry, not state."""
        return len(self._journal)

    def add(self, outpoint: OutPoint, entry: UTXOEntry) -> None:
        super().add(outpoint, entry)
        self._journal.append((True, outpoint, entry))

    def remove(self, outpoint: OutPoint) -> UTXOEntry:
        entry = super().remove(outpoint)
        self._journal.append((False, outpoint, entry))
        return entry

    def rewind(self, mark: int) -> None:
        """Undo every mutation after ``mark``, newest first.

        The inverse operations edit the mapping directly — they are
        history being erased, not new history, so the journal shrinks
        back to exactly ``mark``.
        """
        if mark < self._base_mark:
            raise ValidationError(
                f"cannot rewind to mark {mark}: journal pruned to "
                f"{self._base_mark}"
            )
        if mark > self.mark():
            raise ValidationError(
                f"cannot rewind to future mark {mark} "
                f"(journal is at {self.mark()})"
            )
        while self._base_mark + len(self._journal) > mark:
            was_add, outpoint, entry = self._journal.pop()
            if was_add:
                del self._entries[outpoint]
            else:
                self._entries[outpoint] = entry

    def prune(self, mark: int) -> None:
        """Forget journal history older than ``mark``.

        Reorg depth is bounded (the chain never rewinds past the fork
        window), so history behind the deepest plausible fork point is
        dead weight.  Rewinding past a pruned mark raises.
        """
        if mark > self.mark():
            raise ValidationError(
                f"cannot prune to future mark {mark} "
                f"(journal is at {self.mark()})"
            )
        if mark <= self._base_mark:
            return
        del self._journal[:mark - self._base_mark]
        self._base_mark = mark


class UTXOView:
    """A copy-on-write overlay over a :class:`UTXOSet` (or another view).

    All mutations land in the overlay; the base is never touched until
    :meth:`commit`.  Validating a block against a view means a failure
    needs no undo path at all — the overlay is simply discarded — and a
    speculative workload (miner template assembly, double-spend probing)
    costs two small dicts instead of a full UTXO-set clone.

    Views nest: ``UTXOView(UTXOView(utxos))`` works, though only the
    innermost layer can commit to the real set.
    """

    def __init__(self, base: Union[UTXOSet, "UTXOView"]) -> None:
        self._base = base
        self._added: dict[OutPoint, UTXOEntry] = {}
        self._spent: set[OutPoint] = set()

    @property
    def base(self) -> Union[UTXOSet, "UTXOView"]:
        return self._base

    def __contains__(self, outpoint: OutPoint) -> bool:
        return self.get(outpoint) is not None

    def get(self, outpoint: OutPoint) -> Optional[UTXOEntry]:
        if outpoint in self._spent:
            return None
        entry = self._added.get(outpoint)
        if entry is not None:
            return entry
        return self._base.get(outpoint)

    def add(self, outpoint: OutPoint, entry: UTXOEntry) -> None:
        if self.get(outpoint) is not None:
            raise ValidationError(f"duplicate UTXO: {outpoint}")
        self._spent.discard(outpoint)
        self._added[outpoint] = entry

    def remove(self, outpoint: OutPoint) -> UTXOEntry:
        entry = self.get(outpoint)
        if entry is None:
            raise ValidationError(f"missing UTXO: {outpoint}")
        if outpoint in self._added:
            del self._added[outpoint]
        else:
            self._spent.add(outpoint)
        return entry

    def apply_transaction(self, tx: Transaction,
                          height: int) -> dict[OutPoint, UTXOEntry]:
        """Overlay equivalent of :meth:`UTXOSet.apply_transaction`."""
        if not tx.is_coinbase:
            missing = [
                tx_input.outpoint for tx_input in tx.inputs
                if tx_input.outpoint not in self
            ]
            if missing:
                raise ValidationError(
                    f"transaction {tx.txid.hex()[:16]}.. spends missing "
                    f"outputs: {', '.join(str(o) for o in missing)}"
                )
        spent: dict[OutPoint, UTXOEntry] = {}
        if not tx.is_coinbase:
            for tx_input in tx.inputs:
                spent[tx_input.outpoint] = self.remove(tx_input.outpoint)
        for index, output in enumerate(tx.outputs):
            self.add(
                OutPoint(txid=tx.txid, index=index),
                UTXOEntry(output=output, height=height,
                          is_coinbase=tx.is_coinbase),
            )
        return spent

    def rebase(self, new_base: Union[UTXOSet, "UTXOView"]) -> None:
        """Point this view's reads and future commit at ``new_base``.

        The pipelined connect driver stacks block N+1's view on block N's
        *uncommitted* view; once N commits (its delta now lives in the
        real set), N+1's view must read through the set directly — its
        old base has been reset and would resolve nothing.  Only the
        pending delta is kept; rebasing onto a base that does not already
        contain the old base's committed changes breaks the overlay's
        invariants, and is the caller's responsibility to avoid.
        """
        self._base = new_base

    @property
    def dirty(self) -> bool:
        return bool(self._added or self._spent)

    def changes(self) -> tuple[dict[OutPoint, UTXOEntry], set[OutPoint]]:
        """The pending delta as ``(added, spent)`` copies."""
        return dict(self._added), set(self._spent)

    def commit(self) -> None:
        """Flush the overlay's delta into the base, then reset the overlay.

        Spends apply before additions, so an output that was both created
        and consumed inside the overlay (a chained spend within one block)
        never touches the base at all.
        """
        for outpoint in self._spent:
            self._base.remove(outpoint)
        for outpoint, entry in self._added.items():
            self._base.add(outpoint, entry)
        self._added.clear()
        self._spent.clear()

    def discard(self) -> None:
        """Drop the pending delta (the failure path: no undo needed)."""
        self._added.clear()
        self._spent.clear()
