"""Chain parameters — the Multichain-style tunables.

The paper picked Multichain precisely because it exposes "the average
mining time, the size of a block or the consensus" as parameters (section
5.1), and its evaluation hinges on one more: whether block verification is
enabled (Figs. 5 vs 6).  All of those are first-class fields here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ChainParams", "COIN"]

# Smallest currency unit multiplier (like satoshi per coin).
COIN = 100_000_000


@dataclass(frozen=True)
class ChainParams:
    """Consensus and performance parameters of a BcWAN chain.

    :param block_interval: target seconds between blocks (the paper's AWS
        master mines on a schedule; Multichain default is 15 s).
    :param max_block_size: serialized block size limit in bytes.
    :param coinbase_reward: subsidy per block, in base units.
    :param coinbase_maturity: blocks before a coinbase output is spendable.
    :param pow_bits: leading zero *bits* required of a block hash.  Private
        Multichain-like chains run with trivial difficulty; 0 disables the
        check entirely (scheduled/permissioned mining).
    :param verify_blocks: whether nodes re-verify every script in incoming
        blocks.  The paper disables this to isolate BcWAN's own latency
        (Fig. 5) and enables it for Fig. 6.
    :param verification_stall_base: modeled seconds of daemon stall per
        incoming block when ``verify_blocks`` is on (the Multichain daemon
        "stall[s] and become[s] unresponsive for extended periods upon each
        block arrival", section 5.2).
    :param verification_stall_per_tx: additional stall seconds per
        transaction in the verified block.
    :param locktime_grace: default refund window in blocks for the
        ephemeral-key-release script (the paper's ``block_height + 100``).
    """

    block_interval: float = 15.0
    max_block_size: int = 1_000_000
    coinbase_reward: int = 50 * COIN
    coinbase_maturity: int = 1
    pow_bits: int = 0
    verify_blocks: bool = False
    verification_stall_base: float = 8.0
    verification_stall_per_tx: float = 0.055
    locktime_grace: int = 100
    network_magic: bytes = b"BcWN"

    def __post_init__(self) -> None:
        if self.block_interval <= 0:
            raise ConfigurationError(
                f"block interval must be positive: {self.block_interval}"
            )
        if self.max_block_size < 1_000:
            raise ConfigurationError(
                f"max block size too small: {self.max_block_size}"
            )
        if not 0 <= self.pow_bits <= 32:
            raise ConfigurationError(f"pow_bits out of range: {self.pow_bits}")
        if self.coinbase_maturity < 0:
            raise ConfigurationError(
                f"coinbase maturity must be non-negative: {self.coinbase_maturity}"
            )
        if self.verification_stall_base < 0 or self.verification_stall_per_tx < 0:
            raise ConfigurationError("verification stall times must be non-negative")
        if self.locktime_grace <= 0:
            raise ConfigurationError(
                f"locktime grace must be positive: {self.locktime_grace}"
            )

    def verification_stall(self, tx_count: int) -> float:
        """Seconds a daemon stalls verifying a block of ``tx_count`` txs.

        Pure arithmetic — whether verification runs at all is the caller's
        decision (a daemon may override the chain-wide ``verify_blocks``).
        """
        return (self.verification_stall_base
                + self.verification_stall_per_tx * tx_count)


DEFAULT_PARAMS = ChainParams()
