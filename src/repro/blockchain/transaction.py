"""Transactions: inputs, outputs, serialization, txids, and sighashes.

The model is the Bitcoin/Multichain UTXO transaction: inputs reference
previous outputs by ``(txid, index)`` and carry an unlocking script;
outputs carry a value and a locking script; an optional ``locktime``
postpones validity (used by Listing 1's refund path).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Iterable

from repro.crypto.hashing import double_sha256
from repro.errors import ValidationError
from repro.script.errors import SerializationError
from repro.script.script import Script


def _parse_script(data: bytes) -> Script:
    """Script.from_bytes with the consensus error type on failure."""
    try:
        return Script.from_bytes(data)
    except SerializationError as exc:
        raise ValidationError(f"malformed script: {exc}") from exc

__all__ = [
    "OutPoint",
    "TxInput",
    "TxOutput",
    "Transaction",
    "SEQUENCE_FINAL",
    "COINBASE_OUTPOINT",
    "SIGHASH_ALL",
]

SEQUENCE_FINAL = 0xFFFFFFFF
SIGHASH_ALL = 0x01

_NULL_TXID = b"\x00" * 32


def _write_varint(value: int) -> bytes:
    """Bitcoin CompactSize encoding."""
    if value < 0:
        raise ValidationError(f"varint cannot be negative: {value}")
    if value < 0xFD:
        return bytes([value])
    if value <= 0xFFFF:
        return b"\xfd" + struct.pack("<H", value)
    if value <= 0xFFFFFFFF:
        return b"\xfe" + struct.pack("<I", value)
    return b"\xff" + struct.pack("<Q", value)


def _read_varint(data: bytes, offset: int) -> tuple[int, int]:
    if offset >= len(data):
        raise ValidationError("truncated varint")
    first = data[offset]
    if first < 0xFD:
        return first, offset + 1
    widths = {0xFD: ("<H", 2), 0xFE: ("<I", 4), 0xFF: ("<Q", 8)}
    fmt, width = widths[first]
    if offset + 1 + width > len(data):
        raise ValidationError("truncated varint body")
    return struct.unpack_from(fmt, data, offset + 1)[0], offset + 1 + width


def _read_bytes(data: bytes, offset: int, length: int) -> tuple[bytes, int]:
    if offset + length > len(data):
        raise ValidationError(f"truncated field of {length} bytes")
    return data[offset:offset + length], offset + length


@dataclass(frozen=True, order=True)
class OutPoint:
    """Reference to a transaction output: ``(txid, index)``."""

    txid: bytes
    index: int

    def __post_init__(self) -> None:
        if len(self.txid) != 32:
            raise ValidationError(f"txid must be 32 bytes, got {len(self.txid)}")
        if not 0 <= self.index <= SEQUENCE_FINAL:
            raise ValidationError(f"output index out of range: {self.index}")

    @property
    def is_coinbase(self) -> bool:
        return self.txid == _NULL_TXID and self.index == SEQUENCE_FINAL

    def serialize(self) -> bytes:
        return self.txid + struct.pack("<I", self.index)

    def __str__(self) -> str:
        return f"{self.txid.hex()[:16]}..:{self.index}"


COINBASE_OUTPOINT = OutPoint(txid=_NULL_TXID, index=SEQUENCE_FINAL)


@dataclass(frozen=True)
class TxInput:
    """A transaction input spending ``outpoint`` with ``script_sig``."""

    outpoint: OutPoint
    script_sig: Script = field(default_factory=Script)
    sequence: int = SEQUENCE_FINAL

    def __post_init__(self) -> None:
        if not 0 <= self.sequence <= SEQUENCE_FINAL:
            raise ValidationError(f"sequence out of range: {self.sequence}")

    def serialize(self) -> bytes:
        script_bytes = self.script_sig.to_bytes()
        return (
            self.outpoint.serialize()
            + _write_varint(len(script_bytes))
            + script_bytes
            + struct.pack("<I", self.sequence)
        )

    @classmethod
    def deserialize(cls, data: bytes, offset: int) -> tuple["TxInput", int]:
        txid, offset = _read_bytes(data, offset, 32)
        if offset + 4 > len(data):
            raise ValidationError("truncated outpoint index")
        index = struct.unpack_from("<I", data, offset)[0]
        offset += 4
        script_len, offset = _read_varint(data, offset)
        script_bytes, offset = _read_bytes(data, offset, script_len)
        if offset + 4 > len(data):
            raise ValidationError("truncated sequence")
        sequence = struct.unpack_from("<I", data, offset)[0]
        offset += 4
        return cls(
            outpoint=OutPoint(txid=txid, index=index),
            script_sig=_parse_script(script_bytes),
            sequence=sequence,
        ), offset


@dataclass(frozen=True)
class TxOutput:
    """A transaction output: ``value`` locked by ``script_pubkey``."""

    value: int
    script_pubkey: Script

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValidationError(f"output value cannot be negative: {self.value}")

    def serialize(self) -> bytes:
        script_bytes = self.script_pubkey.to_bytes()
        return (
            struct.pack("<q", self.value)
            + _write_varint(len(script_bytes))
            + script_bytes
        )

    @classmethod
    def deserialize(cls, data: bytes, offset: int) -> tuple["TxOutput", int]:
        if offset + 8 > len(data):
            raise ValidationError("truncated output value")
        value = struct.unpack_from("<q", data, offset)[0]
        offset += 8
        script_len, offset = _read_varint(data, offset)
        script_bytes, offset = _read_bytes(data, offset, script_len)
        return cls(
            value=value,
            script_pubkey=_parse_script(script_bytes),
        ), offset


@dataclass(frozen=True)
class Transaction:
    """An immutable transaction; ``txid`` is the double-SHA256 of the wire form."""

    inputs: tuple[TxInput, ...]
    outputs: tuple[TxOutput, ...]
    locktime: int = 0
    version: int = 1

    def __init__(self, inputs: Iterable[TxInput], outputs: Iterable[TxOutput],
                 locktime: int = 0, version: int = 1) -> None:
        object.__setattr__(self, "inputs", tuple(inputs))
        object.__setattr__(self, "outputs", tuple(outputs))
        object.__setattr__(self, "locktime", locktime)
        object.__setattr__(self, "version", version)
        if not self.inputs:
            raise ValidationError("transaction has no inputs")
        if not self.outputs:
            raise ValidationError("transaction has no outputs")
        if not 0 <= locktime <= SEQUENCE_FINAL:
            raise ValidationError(f"locktime out of range: {locktime}")

    @cached_property
    def txid(self) -> bytes:
        return double_sha256(self.serialize())

    @property
    def is_coinbase(self) -> bool:
        return len(self.inputs) == 1 and self.inputs[0].outpoint.is_coinbase

    @property
    def total_output_value(self) -> int:
        return sum(output.value for output in self.outputs)

    def serialize(self) -> bytes:
        out = bytearray(struct.pack("<i", self.version))
        out += _write_varint(len(self.inputs))
        for tx_input in self.inputs:
            out += tx_input.serialize()
        out += _write_varint(len(self.outputs))
        for tx_output in self.outputs:
            out += tx_output.serialize()
        out += struct.pack("<I", self.locktime)
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "Transaction":
        tx, offset = cls._deserialize_from(data, 0)
        if offset != len(data):
            raise ValidationError(
                f"{len(data) - offset} trailing bytes after transaction"
            )
        return tx

    @classmethod
    def _deserialize_from(cls, data: bytes, offset: int) -> tuple["Transaction", int]:
        if offset + 4 > len(data):
            raise ValidationError("truncated version")
        version = struct.unpack_from("<i", data, offset)[0]
        offset += 4
        input_count, offset = _read_varint(data, offset)
        inputs = []
        for _ in range(input_count):
            tx_input, offset = TxInput.deserialize(data, offset)
            inputs.append(tx_input)
        output_count, offset = _read_varint(data, offset)
        outputs = []
        for _ in range(output_count):
            tx_output, offset = TxOutput.deserialize(data, offset)
            outputs.append(tx_output)
        if offset + 4 > len(data):
            raise ValidationError("truncated locktime")
        locktime = struct.unpack_from("<I", data, offset)[0]
        offset += 4
        return cls(inputs=inputs, outputs=outputs,
                   locktime=locktime, version=version), offset

    def sighash(self, input_index: int, locking_script: Script,
                hash_type: int = SIGHASH_ALL) -> bytes:
        """The digest an input's signature commits to (SIGHASH_ALL).

        Every input's scriptSig is blanked except the signed input's, which
        is replaced by the locking script being spent — the classic Bitcoin
        construction, which binds the signature to the entire transaction.
        """
        if not 0 <= input_index < len(self.inputs):
            raise ValidationError(
                f"input index {input_index} out of range "
                f"(transaction has {len(self.inputs)} inputs)"
            )
        modified_inputs = []
        for i, tx_input in enumerate(self.inputs):
            script = locking_script if i == input_index else Script()
            modified_inputs.append(replace(tx_input, script_sig=script))
        preimage = Transaction(
            inputs=modified_inputs,
            outputs=self.outputs,
            locktime=self.locktime,
            version=self.version,
        ).serialize() + struct.pack("<I", hash_type)
        return double_sha256(preimage)

    def sighash_many(self, spends: "list[tuple[int, Script]]",
                     hash_type: int = SIGHASH_ALL) -> list[bytes]:
        """SIGHASH_ALL digests for several inputs, sharing serialization.

        ``spends`` pairs each input index with the locking script being
        spent.  Byte-identical to calling :meth:`sighash` per input, but
        the unsigned inputs' wire forms are serialized once for the whole
        batch instead of once per requested digest — an ``n``-input
        transaction's full digest set drops from ``O(n**2)`` script
        serializations to ``O(n)`` (the preimage byte joins and hashes
        remain, as they must).
        """
        blank = Script()
        blank_parts = [replace(tx_input, script_sig=blank).serialize()
                       for tx_input in self.inputs]
        head = struct.pack("<i", self.version) + _write_varint(len(self.inputs))
        tail = (
            _write_varint(len(self.outputs))
            + b"".join(output.serialize() for output in self.outputs)
            + struct.pack("<I", self.locktime)
            + struct.pack("<I", hash_type)
        )
        digests: list[bytes] = []
        for input_index, locking_script in spends:
            if not 0 <= input_index < len(self.inputs):
                raise ValidationError(
                    f"input index {input_index} out of range "
                    f"(transaction has {len(self.inputs)} inputs)"
                )
            signed = replace(self.inputs[input_index],
                             script_sig=locking_script).serialize()
            parts = list(blank_parts)
            parts[input_index] = signed
            digests.append(double_sha256(head + b"".join(parts) + tail))
        return digests

    def with_input_script(self, input_index: int, script_sig: Script) -> "Transaction":
        """A copy of this transaction with one input's scriptSig replaced."""
        new_inputs = list(self.inputs)
        new_inputs[input_index] = replace(new_inputs[input_index],
                                          script_sig=script_sig)
        return Transaction(inputs=new_inputs, outputs=self.outputs,
                           locktime=self.locktime, version=self.version)

    def is_final(self, block_height: int, block_time: float) -> bool:
        """BIP-113-style finality: may this tx be included at this point?"""
        if self.locktime == 0:
            return True
        threshold = 500_000_000
        reference = block_height if self.locktime < threshold else block_time
        if self.locktime <= reference:
            return True
        return all(tx_input.sequence == SEQUENCE_FINAL for tx_input in self.inputs)

    def __str__(self) -> str:
        return (
            f"Transaction({self.txid.hex()[:16]}.., "
            f"{len(self.inputs)} in, {len(self.outputs)} out, "
            f"locktime={self.locktime})"
        )
