"""Bridges transactions to the script interpreter.

:class:`TransactionContext` implements the interpreter's
``ExecutionContext`` protocol for one input of one spending transaction:
``OP_CHECKSIG`` verifies an ECDSA signature over the input's sighash, and
``OP_CHECKLOCKTIMEVERIFY`` applies BIP-65 semantics against the spending
transaction's ``locktime``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.blockchain.transaction import SEQUENCE_FINAL, Transaction
from repro.crypto import ecdsa
from repro.script.script import Script

__all__ = ["TransactionContext", "LOCKTIME_THRESHOLD"]

# Locktime values below this are block heights; above, unix timestamps.
LOCKTIME_THRESHOLD = 500_000_000


@dataclass
class TransactionContext:
    """Execution context for verifying ``tx.inputs[input_index]``.

    The two optional fields are the batch-verification fast path
    (:mod:`repro.blockchain.sigbatch`): ``sighash_hint`` is this input's
    precomputed SIGHASH_ALL digest (against ``locking_script``), and
    ``verdict_cache`` maps ``(pubkey_bytes, digest, sig_bytes)`` to a
    verdict precomputed by :func:`repro.crypto.ecdsa.verify_batch`.
    Both are pure accelerations: a missing hint or cache entry falls
    back to the exact computation they replace.
    """

    tx: Transaction
    input_index: int
    locking_script: Script
    sighash_hint: Optional[bytes] = None
    verdict_cache: Optional[dict] = None

    def check_ecdsa_signature(self, pubkey: bytes, signature: bytes) -> bool:
        """Verify a compact 64-byte signature over this input's sighash."""
        try:
            public_key = ecdsa.PublicKey.from_bytes(pubkey)
            sig = ecdsa.Signature.from_bytes(signature)
        except ecdsa.ECDSAError:
            return False
        digest = self.sighash_hint
        if digest is None:
            digest = self.tx.sighash(self.input_index, self.locking_script)
        if self.verdict_cache is not None:
            cached = self.verdict_cache.get((pubkey, digest, signature))
            if cached is not None:
                return cached
        return public_key.verify(digest, sig)

    def check_locktime(self, required: int) -> bool:
        """BIP-65: the spending tx must itself be locked at least as far.

        Three conditions: the locktime *types* (height vs timestamp) must
        match, the spending transaction's locktime must be >= the script's
        requirement, and the input must not be final (a final sequence
        disables locktime entirely, which would bypass the check).
        """
        tx_locktime = self.tx.locktime
        required_is_height = required < LOCKTIME_THRESHOLD
        tx_is_height = tx_locktime < LOCKTIME_THRESHOLD
        if required_is_height != tx_is_height:
            return False
        if tx_locktime < required:
            return False
        if self.tx.inputs[self.input_index].sequence == SEQUENCE_FINAL:
            return False
        return True
