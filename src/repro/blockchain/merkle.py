"""Merkle trees over transaction ids (Bitcoin-style, duplicate-last-on-odd)."""

from __future__ import annotations

from typing import Sequence

from repro.crypto.hashing import double_sha256
from repro.errors import ValidationError

__all__ = ["merkle_root", "merkle_branch", "verify_branch", "branch_depth",
           "verify_proof"]


def merkle_root(txids: Sequence[bytes]) -> bytes:
    """Compute the Merkle root of a list of 32-byte txids."""
    if not txids:
        raise ValidationError("cannot build a Merkle tree over zero txids")
    level = list(txids)
    for txid in level:
        if len(txid) != 32:
            raise ValidationError(f"txid must be 32 bytes, got {len(txid)}")
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [
            double_sha256(level[i] + level[i + 1])
            for i in range(0, len(level), 2)
        ]
    return level[0]


def merkle_branch(txids: Sequence[bytes], index: int) -> list[bytes]:
    """The authentication path proving ``txids[index]`` is in the tree."""
    if not 0 <= index < len(txids):
        raise ValidationError(f"index {index} out of range for {len(txids)} txids")
    branch: list[bytes] = []
    level = list(txids)
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        sibling = index ^ 1
        branch.append(level[sibling])
        level = [
            double_sha256(level[i] + level[i + 1])
            for i in range(0, len(level), 2)
        ]
        index //= 2
    return branch


def verify_branch(txid: bytes, branch: Sequence[bytes], index: int,
                  root: bytes) -> bool:
    """Check an authentication path against a Merkle ``root``.

    Trusting-context helper only: without the tree's leaf count it cannot
    pin the proof depth or reject duplicate-leaf mutations.  Anything
    consuming proofs from the network must use :func:`verify_proof`.
    """
    current = txid
    for sibling in branch:
        if index & 1:
            current = double_sha256(sibling + current)
        else:
            current = double_sha256(current + sibling)
        index //= 2
    return current == root


def branch_depth(tx_count: int) -> int:
    """Authentication-path length of a tree over ``tx_count`` leaves."""
    if tx_count < 1:
        raise ValidationError(f"tree needs at least one leaf, got {tx_count}")
    depth = 0
    width = tx_count
    while width > 1:
        width = (width + 1) // 2
        depth += 1
    return depth


def verify_proof(txid: bytes, branch: Sequence[bytes], index: int,
                 tx_count: int, root: bytes) -> bool:
    """Strict SPV proof check: path, position, *and* tree shape.

    Beyond re-hashing the path, this pins everything an untrusted prover
    could vary:

    * ``index`` must lie inside a ``tx_count``-leaf tree and the branch
      must have exactly that tree's depth (rejects truncated or padded
      paths, which :func:`verify_branch` would happily fold);
    * the duplicate-last-on-odd rule is enforced positionally, closing
      the CVE-2012-2459 ambiguity: a node may only be paired with itself
      at the mandated odd-row position, and there it *must* be — so a
      block whose leaf list fakes the internal duplication (``[a, b, c,
      c]`` mimicking ``[a, b, c]``) never yields an acceptable proof.
    """
    if len(txid) != 32 or len(root) != 32:
        return False
    if tx_count < 1 or not 0 <= index < tx_count:
        return False
    if len(branch) != branch_depth(tx_count):
        return False
    current = txid
    width = tx_count
    position = index
    for sibling in branch:
        if len(sibling) != 32:
            return False
        duplicate_slot = width % 2 == 1 and position == width - 1
        if duplicate_slot != (sibling == current):
            return False
        if position & 1:
            current = double_sha256(sibling + current)
        else:
            current = double_sha256(current + sibling)
        position //= 2
        width = (width + 1) // 2
    return current == root
