"""Merkle trees over transaction ids (Bitcoin-style, duplicate-last-on-odd)."""

from __future__ import annotations

from typing import Sequence

from repro.crypto.hashing import double_sha256
from repro.errors import ValidationError

__all__ = ["merkle_root", "merkle_branch", "verify_branch"]


def merkle_root(txids: Sequence[bytes]) -> bytes:
    """Compute the Merkle root of a list of 32-byte txids."""
    if not txids:
        raise ValidationError("cannot build a Merkle tree over zero txids")
    level = list(txids)
    for txid in level:
        if len(txid) != 32:
            raise ValidationError(f"txid must be 32 bytes, got {len(txid)}")
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        level = [
            double_sha256(level[i] + level[i + 1])
            for i in range(0, len(level), 2)
        ]
    return level[0]


def merkle_branch(txids: Sequence[bytes], index: int) -> list[bytes]:
    """The authentication path proving ``txids[index]`` is in the tree."""
    if not 0 <= index < len(txids):
        raise ValidationError(f"index {index} out of range for {len(txids)} txids")
    branch: list[bytes] = []
    level = list(txids)
    while len(level) > 1:
        if len(level) % 2:
            level.append(level[-1])
        sibling = index ^ 1
        branch.append(level[sibling])
        level = [
            double_sha256(level[i] + level[i + 1])
            for i in range(0, len(level), 2)
        ]
        index //= 2
    return branch


def verify_branch(txid: bytes, branch: Sequence[bytes], index: int,
                  root: bytes) -> bool:
    """Check an authentication path against a Merkle ``root``."""
    current = txid
    for sibling in branch:
        if index & 1:
            current = double_sha256(sibling + current)
        else:
            current = double_sha256(current + sibling)
        index //= 2
    return current == root
