"""A full node: chain + mempool + relay hooks.

:class:`FullNode` is the pure (simulation-agnostic) state machine one
BcWAN daemon runs: it validates and stores blocks, admits transactions,
and reports what should be relayed.  Timing behaviour — in particular the
Multichain-style *block verification stall* that produces the paper's
Fig. 6 — is layered on by :class:`repro.core.daemon.BlockchainDaemon`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.block import Block
from repro.blockchain.chain import AddBlockResult, Chain
from repro.blockchain.engine import ValidationEngine, ValidationReport
from repro.blockchain.mempool import Mempool, MempoolPolicy
from repro.blockchain.params import ChainParams
from repro.blockchain.transaction import Transaction
from repro.errors import ValidationError

__all__ = ["FullNode", "RelayDecision"]


@dataclass(frozen=True)
class RelayDecision:
    """What a node should do after processing an incoming item.

    ``reason_code`` carries the mempool's stable ``REJECT_*`` code for
    transaction rejections (empty for block decisions and acceptances);
    relay policy branches on it instead of parsing ``reason`` prose.
    """

    accepted: bool
    relay: bool
    reason: str = ""
    reason_code: str = ""


class FullNode:
    """Chain state plus mempool for one network participant."""

    def __init__(self, params: Optional[ChainParams] = None,
                 name: str = "node",
                 verify_scripts: Optional[bool] = None,
                 chain: Optional[Chain] = None,
                 mempool_policy: Optional[MempoolPolicy] = None) -> None:
        self.name = name
        # A pre-built chain (e.g. restored from a snapshot via
        # repro.blockchain.store after a crash) takes precedence; the
        # params/verify_scripts arguments only seed a fresh chain.
        self.chain = chain if chain is not None else Chain(
            params, verify_scripts=verify_scripts)
        self.mempool = Mempool(self.chain, policy=mempool_policy)
        self.blocks_processed = 0
        self.transactions_processed = 0

    @property
    def params(self) -> ChainParams:
        return self.chain.params

    @property
    def engine(self) -> ValidationEngine:
        """The staged validation engine shared by chain and mempool."""
        return self.chain.engine

    @property
    def last_block_report(self) -> Optional[ValidationReport]:
        """Telemetry of the most recent block connect (cache hits etc.)."""
        return self.chain.last_report

    @property
    def height(self) -> int:
        return self.chain.height

    def submit_transaction(self, tx: Transaction) -> RelayDecision:
        """Validate a transaction into the mempool."""
        self.transactions_processed += 1
        if tx.txid in self.mempool:
            return RelayDecision(accepted=False, relay=False,
                                 reason="already in mempool")
        if self.chain.confirmations(tx.txid):
            return RelayDecision(accepted=False, relay=False,
                                 reason="already confirmed")
        result = self.mempool.accept(tx)
        if not result.accepted:
            return RelayDecision(accepted=False, relay=False,
                                 reason=result.reason,
                                 reason_code=result.reason_code)
        return RelayDecision(accepted=True, relay=True)

    def submit_block(self, block: Block) -> tuple[RelayDecision, AddBlockResult]:
        """Validate a block into the chain; evicts confirmed pool entries."""
        self.blocks_processed += 1
        try:
            result = self.chain.add_block(block)
        except ValidationError as exc:
            return (
                RelayDecision(accepted=False, relay=False, reason=str(exc)),
                AddBlockResult(status="rejected"),
            )
        if result.status == "duplicate":
            return (
                RelayDecision(accepted=False, relay=False, reason="duplicate"),
                result,
            )
        if result.status == "active":
            for block_hash in result.connected:
                record = self.chain.record_for(block_hash)
                if record is not None:
                    self.mempool.remove_confirmed(record.block.transactions)
            # A reorg puts disconnected transactions back in play; real
            # nodes resurrect them.  We do too (best effort).
            for block_hash in result.disconnected:
                record = self.chain.record_for(block_hash)
                if record is None:
                    continue
                for tx in record.block.transactions[1:]:
                    if not self.chain.confirmations(tx.txid):
                        # Best effort: the verdict is advisory here — a
                        # transaction that no longer resolves simply
                        # stays out of the pool.
                        self.mempool.accept(tx)
        return RelayDecision(accepted=True, relay=True), result
