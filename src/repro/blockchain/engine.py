"""The staged validation engine.

One :class:`ValidationEngine` instance serves one chain view.  It runs the
three validation stages — *syntax* (context-free), *contextual* (against a
UTXO source and chain position), *scripts* (interpreter execution) — and
owns the script-verification cache that makes the paper's Fig. 6 regime
affordable: a transaction whose scripts were executed at mempool admission
is never re-executed when its block connects, because both stages share
the cache keyed by ``(txid, input_index, utxo_entry_hash)``.

Block connection validates against a copy-on-write
:class:`~repro.blockchain.utxo.UTXOView` instead of mutating the live set:
on success the overlay commits in one step, on failure it is discarded —
there is no undo path to run and nothing to roll back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.blockchain.block import Block
from repro.blockchain.checkpoint import Checkpoint, iter_checkpoints
from repro.blockchain.context import TransactionContext
from repro.blockchain.params import ChainParams
from repro.blockchain.sigbatch import precompute_verdicts
from repro.blockchain.transaction import OutPoint, Transaction
from repro.blockchain.utxo import UTXOEntry, UTXOSet, UTXOView
from repro.errors import ValidationError
from repro.parallel.jobs import ERROR_SCRIPT_FAILED, VerifyJob, VerifyResult
from repro.script.analysis import StandardnessPolicy
from repro.script.interpreter import ScriptInterpreter

__all__ = [
    "MAX_MONEY",
    "PendingConnect",
    "ScriptCacheStats",
    "ValidationEngine",
    "ValidationReport",
]

MAX_MONEY = 21_000_000 * 100_000_000

UTXOSource = Union[UTXOSet, UTXOView]


@dataclass
class ScriptCacheStats:  # lint: allow(ad-hoc-telemetry) — consensus-layer; mirrored into the registry by DaemonStats
    """Hit/miss counters of one engine's script-verification cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def executions(self) -> int:
        """Scripts actually run (every miss executes the interpreter)."""
        return self.misses

    def snapshot(self) -> "ScriptCacheStats":
        return ScriptCacheStats(hits=self.hits, misses=self.misses,
                                evictions=self.evictions)


@dataclass(frozen=True)
class ValidationReport:
    """What one block connect (or speculative validation) did.

    Consumed by the chain (undo data for reorgs), the node and daemon
    (cache telemetry), and the benchmarks (script-execution accounting).
    """

    block_hash: bytes
    height: int
    tx_count: int
    total_fees: int
    scripts_verified: bool
    script_executions: int
    cache_hits: int
    stages: tuple[str, ...]
    # Per-transaction spent entries, in block order (the undo record).
    undo: tuple[dict[OutPoint, UTXOEntry], ...] = ()


@dataclass
class PendingConnect:
    """An in-flight block connect, between ``begin_connect`` and
    ``finish_connect``.

    Carries the overlay the block applied to, the deferred script batch
    (possibly already dispatched to the pool), and every number the final
    :class:`ValidationReport` needs.  The pipelined chain driver stacks
    the next block's overlay on ``view`` while this one's scripts crunch.
    """

    block: Block
    height: int
    verify_scripts: bool
    view: UTXOView
    undo: tuple
    total_fees: int
    executions: int
    hits_before: int
    batch: Optional["_ScriptBatch"]
    pending_checkpoints: dict
    checkpoint_txids: list


class _ScriptBatch:
    """Deferred script verifications, replayed in serial order.

    The pooled paths collect one :class:`VerifyJob` per cache-missing
    input while the parent walks transactions in block order, then flush
    the whole batch through the engine's :class:`VerifyPool` at the next
    serialization point.  Determinism contract with the serial engine:

    * cache lookups and static prechecks stay in the parent, in serial
      order, so hit/fast-reject accounting is identical;
    * a flush raises the exact :class:`ValidationError` the serial
      engine's *first* failing input would have raised (workers return
      verdicts; the parent rebuilds the message from the entry it kept);
    * only successes that a serial run would have executed *before* that
      first failure are cached and counted as misses.

    ``barrier(exc)`` is the ordering glue for non-script errors: any
    contextual or fast-reject failure discovered at position *p* must
    lose to a script failure queued at a position before *p* — exactly
    what a serial run, which executes scripts as it goes, would report.
    """

    def __init__(self, engine: "ValidationEngine") -> None:
        self.engine = engine
        self.jobs: list[VerifyJob] = []
        # (tag, input_index) -> (tx, entry): what the parent needs to
        # rebuild the serial error message and the cache key.
        self._meta: dict[tuple[int, int], tuple[Transaction, UTXOEntry]] = {}
        self._tx_bytes: dict[bytes, bytes] = {}
        # Wire serialization only matters when jobs cross a process
        # boundary; the inline executor works from the live objects.
        self._wire = engine.verify_pool is not None
        self._pending = None
        # Per-batch cache-hit counter: pipelined connects interleave their
        # cache lookups, so per-connect reports cannot difference the
        # engine-global counter the way the serial path does.
        self.hits = 0

    def add(self, tx: Transaction, index: int, entry: UTXOEntry,
            tag: int) -> None:
        """Queue one input, honouring cache and precheck in serial order."""
        engine = self.engine
        key = (tx.txid, index, entry.entry_hash)
        if key in engine._script_cache:
            engine.cache_stats.hits += 1
            self.hits += 1
            return
        if engine.static_precheck:
            reason = engine.policy.precheck_spend(
                tx.inputs[index].script_sig, entry.output.script_pubkey
            )
            if reason is not None:
                engine.policy.stats.fast_rejects += 1
                # Every queued job precedes this input in serial order, so
                # an earlier queued *failure* must win — barrier decides.
                self.barrier(ValidationError(
                    f"script fast-reject for input {index} of "
                    f"{tx.txid.hex()[:16]}..: {reason}"
                ))
        if self._wire:
            tx_bytes = self._tx_bytes.get(tx.txid)
            if tx_bytes is None:
                tx_bytes = tx.serialize()
                self._tx_bytes[tx.txid] = tx_bytes
        else:
            tx_bytes = b""
        self.jobs.append(VerifyJob(
            txid=tx.txid,
            input_index=index,
            tx_bytes=tx_bytes,
            locking_bytes=entry.output.script_pubkey.to_bytes()
            if self._wire else b"",
            tag=tag,
        ))
        self._meta[(tag, index)] = (tx, entry)

    def dispatch(self) -> None:
        """Start pooled execution without waiting for results.

        The pipelined connect path calls this at the end of
        ``begin_connect`` so workers crunch block N's scripts while the
        parent walks block N+1; ``flush`` then collects.  A no-op without
        a pool (the inline executor has no background to run in) or when
        nothing is queued.
        """
        if self.jobs and self._pending is None:
            pool = self.engine.verify_pool
            if pool is not None:
                self._pending = pool.run_async(self.jobs)

    def _execute_inline(self) -> list[VerifyResult]:
        """Execute queued jobs in-process through the batch layer.

        One :func:`~repro.blockchain.sigbatch.precompute_verdicts` pass
        computes every input's sighash (one serialization per tx) and
        batch-verifies all recognizable CHECKSIG spends; the interpreter
        then replays each script pair with those results as pure
        accelerations, so verdicts match the unbatched path bit-for-bit.
        """
        spends = []
        for job in self.jobs:
            tx, entry = self._meta[(job.tag, job.input_index)]
            spends.append((tx, job.input_index, entry.output.script_pubkey))
        hints, verdicts = precompute_verdicts(spends)
        results = []
        for job in self.jobs:
            tx, entry = self._meta[(job.tag, job.input_index)]
            locking = entry.output.script_pubkey
            context = TransactionContext(
                tx=tx, input_index=job.input_index, locking_script=locking,
                sighash_hint=hints.get((job.txid, job.input_index)),
                verdict_cache=verdicts,
            )
            ok = ScriptInterpreter(context=context).verify(
                tx.inputs[job.input_index].script_sig, locking
            )
            results.append(VerifyResult(
                txid=job.txid, input_index=job.input_index, ok=ok,
                error_code=None if ok else ERROR_SCRIPT_FAILED, tag=job.tag,
            ))
        return results

    def flush(self) -> int:
        """Run queued jobs; cache pre-failure successes; raise the first
        failure in serial ``(tag, input_index)`` order.  Returns how many
        executions a serial run would have performed."""
        if not self.jobs:
            return 0
        engine = self.engine
        if self._pending is not None:
            results = self._pending.wait()
            self._pending = None
        elif engine.verify_pool is not None:
            results = engine.verify_pool.run(self.jobs)
        else:
            results = self._execute_inline()
        self.jobs = []
        self._tx_bytes.clear()
        results.sort(key=lambda result: (result.tag, result.input_index))
        first_failure = None
        executions = 0
        for result in results:
            if not result.ok:
                first_failure = result
                break
            executions += 1
            engine.cache_stats.misses += 1
            tx, entry = self._meta[(result.tag, result.input_index)]
            engine._cache_store((tx.txid, result.input_index,
                                 entry.entry_hash))
        if first_failure is not None:
            tx, entry = self._meta[(first_failure.tag,
                                    first_failure.input_index)]
            self._meta.clear()
            # The serial engine counts the miss before executing, so the
            # failing run itself is a miss too (never cached).
            engine.cache_stats.misses += 1
            raise ValidationError(
                f"script verification failed for input "
                f"{first_failure.input_index} of {tx.txid.hex()[:16]}.. "
                f"(locking: {entry.output.script_pubkey.disassemble()})"
            )
        self._meta.clear()
        return executions

    def barrier(self, exc: ValidationError) -> None:
        """Flush, then raise ``exc`` — unless an already-queued script
        failure precedes it in serial order (flush raises that instead)."""
        self.flush()
        raise exc


class ValidationEngine:
    """Staged validation with a shared script-verification cache.

    :param params: consensus parameters of the chain being validated.
    :param verify_scripts: whether block connection re-checks scripts
        (the Fig. 5 / Fig. 6 toggle); defaults to
        ``params.verify_blocks``.  Mempool admission always verifies.
    :param max_cache_entries: cache capacity; oldest verdicts evict first
        (insertion order — entries are never revalidated, so recency
        tracking buys nothing over FIFO here).
    :param policy: the :class:`~repro.script.analysis.StandardnessPolicy`
        shared by the mempool (standardness) and this engine (static
        fast-reject); a default instance is created when omitted.
    :param static_precheck: run the static analyzer's consensus-safe
        fast-reject before each interpreter execution.  The precheck
        only rejects spends whose execution provably fails, so toggling
        it never changes a verdict — only where the cost is paid.
    :param batch_verify: batch multi-input script work through
        :mod:`repro.blockchain.sigbatch` even without a pool attached
        (shared sighash serialization, per-pubkey fixed-base tables,
        Montgomery-batched inversions).  Verdicts, error strings, and
        cache accounting are identical either way; ``False`` restores
        strictly input-at-a-time verification.
    """

    def __init__(self, params: ChainParams,
                 verify_scripts: Optional[bool] = None,
                 max_cache_entries: int = 1 << 16,
                 policy: Optional[StandardnessPolicy] = None,
                 static_precheck: bool = True,
                 batch_verify: bool = True) -> None:
        self.params = params
        self.verify_scripts = (
            params.verify_blocks if verify_scripts is None else verify_scripts
        )
        self.max_cache_entries = max_cache_entries
        self.policy = StandardnessPolicy() if policy is None else policy
        self.static_precheck = static_precheck
        # Route multi-input script work through the cross-input batch
        # layer (sighash_many + ecdsa.verify_batch) even without a pool.
        # Verdict-identical to the serial path; False reproduces the
        # pre-batching engine input-by-input (the benchmark baseline).
        self.batch_verify = batch_verify
        # key -> True; only successful verdicts are cached (failures raise
        # and the offending tx never reaches a later stage twice).
        self._script_cache: dict[tuple[bytes, int, bytes], bool] = {}
        self.cache_stats = ScriptCacheStats()
        self.last_report: Optional[ValidationReport] = None
        # Optional wall-clock profiler (repro.obs.profile.HotPathProfiler).
        # None by default: the hot paths below pay exactly one attribute
        # load and branch when profiling is off — the microbench guard in
        # benchmarks/test_obs_overhead.py pins that.
        self.obs = None
        # Optional repro.parallel.VerifyPool.  None keeps every script
        # path strictly serial; attach_pool() routes block connection and
        # multi-input admission through batched (possibly multi-process)
        # verification with serial-identical verdicts.
        self.verify_pool = None
        # Optional repro.blockchain.checkpoint.CheckpointRules.  Set only
        # on a settlement-chain engine; gateway sub-chains leave it None
        # and pay a single attribute load per transaction.
        self.checkpoint_rules = None

    # -- stage 1: syntax -------------------------------------------------------

    def check_transaction_syntax(self, tx: Transaction) -> None:
        """Context-free sanity checks on a transaction."""
        seen = set()
        for tx_input in tx.inputs:
            if tx_input.outpoint in seen:
                raise ValidationError(
                    f"duplicate input {tx_input.outpoint} in "
                    f"{tx.txid.hex()[:16]}.."
                )
            seen.add(tx_input.outpoint)
        if not tx.is_coinbase:
            for tx_input in tx.inputs:
                if tx_input.outpoint.is_coinbase:
                    raise ValidationError(
                        "non-coinbase transaction has a null input"
                    )
        total = 0
        for output in tx.outputs:
            if output.value > MAX_MONEY:
                raise ValidationError(
                    f"output value too large: {output.value}"
                )
            total += output.value
            if total > MAX_MONEY:
                raise ValidationError(f"total output value too large: {total}")

    # -- stage 2: contextual ---------------------------------------------------

    def check_transaction_inputs(self, tx: Transaction, utxos: UTXOSource,
                                 height: int) -> int:
        """Contextual checks: inputs exist, maturity, value balance.

        Returns the transaction fee.
        """
        if tx.is_coinbase:
            return 0
        input_value = 0
        for tx_input in tx.inputs:
            entry = utxos.get(tx_input.outpoint)
            if entry is None:
                raise ValidationError(
                    f"input {tx_input.outpoint} not in UTXO set "
                    f"(spent or never existed)"
                )
            input_value += self._check_entry_spendable(
                tx_input.outpoint, entry, height
            )
        if input_value < tx.total_output_value:
            raise ValidationError(
                f"outputs ({tx.total_output_value}) exceed inputs "
                f"({input_value})"
            )
        return input_value - tx.total_output_value

    def _check_entry_spendable(self, outpoint: OutPoint, entry: UTXOEntry,
                               height: int) -> int:
        """Maturity check for one resolved entry; returns its value."""
        if (entry.is_coinbase
                and height - entry.height < self.params.coinbase_maturity):
            raise ValidationError(
                f"coinbase output {outpoint} spent at height {height}, "
                f"matures at {entry.height + self.params.coinbase_maturity}"
            )
        return entry.value

    # -- stage 3: scripts ------------------------------------------------------

    def verify_input_script(self, tx: Transaction, index: int,
                            entry: UTXOEntry) -> bool:
        """Verify one input against its resolved entry, through the cache.

        Returns True on a cache hit (no interpreter run), False on a miss
        that executed and succeeded; raises :class:`ValidationError` on
        script failure (failures are never cached).
        """
        if self.obs is None:
            return self._verify_input_script(tx, index, entry)
        t0 = self.obs.clock()
        try:
            return self._verify_input_script(tx, index, entry)
        finally:
            self.obs.observe("engine.verify_input_script",
                             self.obs.clock() - t0)

    def _verify_input_script(self, tx: Transaction, index: int,
                             entry: UTXOEntry) -> bool:
        key = (tx.txid, index, entry.entry_hash)
        if key in self._script_cache:
            self.cache_stats.hits += 1
            return True
        if self.static_precheck:
            reason = self.policy.precheck_spend(
                tx.inputs[index].script_sig, entry.output.script_pubkey
            )
            if reason is not None:
                # Consensus-safe: the interpreter would fail too, so the
                # execution (and its miss) is skipped entirely.
                self.policy.stats.fast_rejects += 1
                raise ValidationError(
                    f"script fast-reject for input {index} of "
                    f"{tx.txid.hex()[:16]}..: {reason}"
                )
        self.cache_stats.misses += 1
        context = TransactionContext(
            tx=tx, input_index=index,
            locking_script=entry.output.script_pubkey,
        )
        interpreter = ScriptInterpreter(context=context)
        obs = self.obs
        if obs is None:
            verified = interpreter.verify(tx.inputs[index].script_sig,
                                          entry.output.script_pubkey)
        else:
            t0 = obs.clock()
            verified = interpreter.verify(tx.inputs[index].script_sig,
                                          entry.output.script_pubkey)
            obs.observe("script.interpreter_verify", obs.clock() - t0)
        if not verified:
            raise ValidationError(
                f"script verification failed for input {index} of "
                f"{tx.txid.hex()[:16]}.. "
                f"(locking: {entry.output.script_pubkey.disassemble()})"
            )
        self._cache_store(key)
        return False

    def _cache_store(self, key: tuple[bytes, int, bytes]) -> None:
        """Record a successful verdict, FIFO-evicting at capacity."""
        if len(self._script_cache) >= self.max_cache_entries:
            self._script_cache.pop(next(iter(self._script_cache)))
            self.cache_stats.evictions += 1
        self._script_cache[key] = True

    def verify_input_scripts(self, tx: Transaction,
                             entries: list[UTXOEntry]) -> int:
        """Verify every input against its resolved entry; returns executions.

        The mempool's admission path: with a pool attached the inputs fan
        out as one batch; without one, ``batch_verify`` routes them
        through the inline batch executor instead.  Either way the
        verdict, error message, and cache state are identical to the
        strictly serial loop.
        """
        if self.verify_pool is None and not self.batch_verify:
            executions = 0
            for index, entry in enumerate(entries):
                if not self.verify_input_script(tx, index, entry):
                    executions += 1
            return executions
        batch = _ScriptBatch(self)
        for index, entry in enumerate(entries):
            batch.add(tx, index, entry, 0)
        return batch.flush()

    def verify_transaction_scripts(self, tx: Transaction,
                                   utxos: UTXOSource) -> int:
        """Run (or recall) every input's script pair; returns executions."""
        if tx.is_coinbase:
            return 0
        executions = 0
        for index, tx_input in enumerate(tx.inputs):
            entry = utxos.get(tx_input.outpoint)
            if entry is None:
                raise ValidationError(
                    f"input {tx_input.outpoint} not in UTXO set"
                )
            if not self.verify_input_script(tx, index, entry):
                executions += 1
        return executions

    # -- anchor-chain checkpoint rules -----------------------------------------

    def check_checkpoints(self, tx: Transaction,
                          pending: Optional[dict[int, "Checkpoint"]] = None,
                          ) -> None:
        """Validate any checkpoint commitments ``tx`` carries.

        A no-op unless :class:`CheckpointRules` are attached (i.e. this
        engine validates the settlement chain).  ``pending`` overlays
        checkpoints staged earlier in the same block.
        """
        if self.checkpoint_rules is None:
            return
        for checkpoint in iter_checkpoints(tx):
            self.checkpoint_rules.check(checkpoint, tx.txid, pending)

    def _stage_checkpoints(self, tx: Transaction,
                           pending: dict[int, "Checkpoint"],
                           txids: list[bytes]) -> None:
        """Stage ``tx``'s checkpoints against committed + staged state."""
        staged = False
        for checkpoint in iter_checkpoints(tx):
            self.checkpoint_rules.stage(checkpoint, tx.txid, pending)
            staged = True
        if staged:
            txids.append(tx.txid)

    # -- block stages ----------------------------------------------------------

    def check_block(self, block: Block, prev_height: int) -> None:
        """Structural block checks (independent of the UTXO set)."""
        if not block.header.meets_target(self.params.pow_bits):
            raise ValidationError(
                f"block {block.hash.hex()[:16]}.. does not meet the "
                f"{self.params.pow_bits}-bit proof-of-work target"
            )
        if block.serialized_size() > self.params.max_block_size:
            raise ValidationError(
                f"block size {block.serialized_size()} exceeds limit "
                f"{self.params.max_block_size}"
            )
        if block.compute_merkle_root() != block.header.merkle_root:
            raise ValidationError("merkle root mismatch")
        if not block.transactions[0].is_coinbase:
            raise ValidationError("first transaction is not a coinbase")
        for tx in block.transactions[1:]:
            if tx.is_coinbase:
                raise ValidationError("block contains a non-first coinbase")
        height = prev_height + 1
        for tx in block.transactions:
            self.check_transaction_syntax(tx)
            if not tx.is_final(height, block.header.timestamp):
                raise ValidationError(
                    f"transaction {tx.txid.hex()[:16]}.. is not final at "
                    f"height {height}"
                )

    def connect_block(self, block: Block, utxos: UTXOSource, height: int,
                      verify_scripts: Optional[bool] = None,
                      commit: bool = True) -> ValidationReport:
        """Validate and apply a block's transactions atomically.

        All work happens against a :class:`UTXOView` overlay; ``utxos`` is
        only touched by the final commit, so any :class:`ValidationError`
        leaves it bit-for-bit untouched with no rollback work.  Pass
        ``commit=False`` for purely speculative validation (the overlay is
        discarded even on success).

        ``verify_scripts`` overrides the engine default for this call —
        the chain uses that to skip re-verification when restoring a
        previously validated branch after a failed reorg.
        """
        pending = self.begin_connect(block, utxos, height,
                                     verify_scripts=verify_scripts)
        return self.finish_connect(pending, commit=commit)

    def begin_connect(self, block: Block, utxos: UTXOSource, height: int,
                      verify_scripts: Optional[bool] = None,
                      ) -> PendingConnect:
        """Walk a block — contextual checks, overlay apply, script queue.

        Everything except script execution and the commit: transactions
        are contextually validated and applied to a fresh overlay in
        block order, and cache-missing inputs are queued on a script
        batch (dispatched to the pool, if one is attached, before this
        returns).  :meth:`finish_connect` settles the batch and commits.
        ``begin_connect(b); finish_connect(p)`` is exactly
        ``connect_block(b)`` — the split exists so a pipelined caller can
        begin block N+1 against the returned overlay while block N's
        scripts verify in the background.
        """
        if verify_scripts is None:
            verify_scripts = self.verify_scripts
        view = UTXOView(utxos)
        hits_before = self.cache_stats.hits
        undo: list[dict[OutPoint, UTXOEntry]] = []
        total_fees = 0
        executions = 0
        batch = (_ScriptBatch(self)
                 if verify_scripts
                 and (self.verify_pool is not None or self.batch_verify)
                 else None)
        # Block-scoped checkpoint staging: applied to the rules only when
        # the block commits, so speculative and failed connects leave the
        # anchored state untouched.
        pending_checkpoints: dict[int, Checkpoint] = {}
        checkpoint_txids: list[bytes] = []
        for tag, tx in enumerate(block.transactions):
            if self.checkpoint_rules is not None:
                try:
                    self._stage_checkpoints(
                        tx, pending_checkpoints, checkpoint_txids)
                except ValidationError as exc:
                    if batch is not None:
                        batch.barrier(exc)
                    raise
            if batch is None:
                total_fees += self.check_transaction_inputs(tx, view, height)
                if verify_scripts:
                    executions += self.verify_transaction_scripts(tx, view)
            else:
                # Pooled: collect jobs while walking transactions; defer
                # execution to the flush below.  A contextual failure must
                # still lose to a script failure queued before it (that is
                # what a serial run reports first), hence the barrier.
                try:
                    total_fees += self.check_transaction_inputs(
                        tx, view, height)
                except ValidationError as exc:
                    batch.barrier(exc)
                if not tx.is_coinbase:
                    for index, tx_input in enumerate(tx.inputs):
                        entry = view.get(tx_input.outpoint)
                        assert entry is not None  # checked just above
                        batch.add(tx, index, entry, tag)
            undo.append(view.apply_transaction(tx, height))
        if batch is not None:
            batch.dispatch()
        return PendingConnect(
            block=block,
            height=height,
            verify_scripts=verify_scripts,
            view=view,
            undo=tuple(undo),
            total_fees=total_fees,
            executions=executions,
            hits_before=hits_before,
            batch=batch,
            pending_checkpoints=pending_checkpoints,
            checkpoint_txids=checkpoint_txids,
        )

    def finish_connect(self, pending: PendingConnect,
                       commit: bool = True) -> ValidationReport:
        """Settle a :meth:`begin_connect`: flush scripts, check the
        coinbase cap, commit the overlay, and report.

        Raises the same :class:`ValidationError` a serial
        ``connect_block`` would, in the same order; on any failure the
        overlay is discarded and the base UTXO source stays untouched.
        """
        block = pending.block
        executions = pending.executions
        if pending.batch is not None:
            executions = pending.batch.flush()
        total_fees = pending.total_fees
        coinbase_value = block.coinbase.total_output_value
        max_coinbase = self.params.coinbase_reward + total_fees
        if coinbase_value > max_coinbase:
            raise ValidationError(
                f"coinbase claims {coinbase_value}, max is {max_coinbase}"
            )
        if commit:
            pending.view.commit()
            if self.checkpoint_rules is not None:
                self.checkpoint_rules.apply(pending.pending_checkpoints,
                                            pending.checkpoint_txids)
        if pending.batch is not None:
            cache_hits = pending.batch.hits
        else:
            cache_hits = self.cache_stats.hits - pending.hits_before
        report = ValidationReport(
            block_hash=block.hash,
            height=pending.height,
            tx_count=len(block.transactions),
            total_fees=total_fees,
            scripts_verified=pending.verify_scripts,
            script_executions=executions,
            cache_hits=cache_hits,
            stages=("syntax", "contextual", "scripts", "connect")
            if pending.verify_scripts
            else ("syntax", "contextual", "connect"),
            undo=pending.undo,
        )
        self.last_report = report
        return report

    # -- speculative helpers ---------------------------------------------------

    def speculative_fees(self, transactions: list[Transaction],
                         utxos: UTXOSource, height: int) -> int:
        """Total fees of an ordered batch, validated against an overlay.

        The miner's template assembly: dependencies inside the batch
        resolve through the overlay as each transaction applies, and the
        live set is never touched.
        """
        view = UTXOView(utxos)
        total = 0
        for tx in transactions:
            total += self.check_transaction_inputs(tx, view, height)
            view.apply_transaction(tx, height)
        return total

    def conflicts(self, first: Transaction, second: Transaction,
                  utxos: UTXOSource, height: int) -> bool:
        """Whether ``second`` becomes unspendable once ``first`` applies.

        The double-spend probe: both orders of a conflicting pair fail the
        contextual stage on whichever transaction comes second, and the
        probe costs one overlay, not a UTXO-set clone.
        """
        view = UTXOView(utxos)
        view.apply_transaction(first, height)
        try:
            self.check_transaction_inputs(second, view, height)
        except ValidationError:
            return True
        return False

    # -- parallel backend ------------------------------------------------------

    def attach_pool(self, pool) -> None:
        """Route batched script verification through ``pool``.

        The pool is borrowed, not owned: several engines may share one
        (a federation shares its host's cores), so the engine never shuts
        it down — :meth:`detach_pool` merely unhooks it.
        """
        self.verify_pool = pool

    def detach_pool(self) -> None:
        """Return to strictly serial script verification."""
        self.verify_pool = None

    # -- cache management ------------------------------------------------------

    @property
    def cache_size(self) -> int:
        return len(self._script_cache)

    def clear_cache(self) -> None:
        self._script_cache.clear()
