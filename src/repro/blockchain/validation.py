"""Transaction and block validation rules (deprecated free-function API).

The staged pipeline now lives in
:class:`repro.blockchain.engine.ValidationEngine` — syntax → contextual →
scripts, executed against copy-on-write
:class:`~repro.blockchain.utxo.UTXOView` overlays with a shared
script-verification cache.  These free functions remain as thin shims for
existing callers and tests; each call builds a throwaway engine, so no
verdicts are cached across calls.  New code should use the engine owned
by the :class:`~repro.blockchain.chain.Chain` it validates for.
"""

from __future__ import annotations

from repro.blockchain.block import Block
from repro.blockchain.engine import MAX_MONEY, ValidationEngine
from repro.blockchain.params import ChainParams
from repro.blockchain.transaction import Transaction
from repro.blockchain.utxo import UTXOSet
from repro.script.analysis import OUTPUT_OP_RETURN, classify_output

__all__ = [
    "check_transaction_syntax",
    "check_transaction_inputs",
    "verify_transaction_scripts",
    "check_block",
    "connect_block_transactions",
]

_MAX_MONEY = MAX_MONEY


def check_transaction_syntax(tx: Transaction) -> None:
    """Deprecated shim for :meth:`ValidationEngine.check_transaction_syntax`."""
    ValidationEngine(ChainParams()).check_transaction_syntax(tx)


def check_transaction_inputs(tx: Transaction, utxos: UTXOSet, height: int,
                             params: ChainParams) -> int:
    """Deprecated shim for :meth:`ValidationEngine.check_transaction_inputs`.

    Returns the transaction fee.
    """
    return ValidationEngine(params).check_transaction_inputs(tx, utxos, height)


def verify_transaction_scripts(tx: Transaction, utxos: UTXOSet) -> None:
    """Deprecated shim for :meth:`ValidationEngine.verify_transaction_scripts`."""
    ValidationEngine(ChainParams()).verify_transaction_scripts(tx, utxos)


def check_block(block: Block, prev_height: int, params: ChainParams) -> None:
    """Deprecated shim for :meth:`ValidationEngine.check_block`."""
    ValidationEngine(params).check_block(block, prev_height)


def connect_block_transactions(block: Block, utxos: UTXOSet, height: int,
                               params: ChainParams,
                               verify_scripts: bool = True) -> list[dict]:
    """Deprecated shim for :meth:`ValidationEngine.connect_block`.

    Raises :class:`~repro.errors.ValidationError` with ``utxos`` untouched
    on any failure (the engine validates against an overlay, so there is
    no undo path to run).  ``verify_scripts=False`` reproduces the paper's
    Fig. 5 configuration (block verification disabled).
    """
    engine = ValidationEngine(params, verify_scripts=verify_scripts)
    report = engine.connect_block(block, utxos, height)
    return [dict(spent) for spent in report.undo]


def is_op_return_output(script_pubkey) -> bool:
    """True if a locking script is a data-carrier (OP_RETURN) output.

    Delegates to the static analyzer's output classification so the
    directory layer and the standardness policy agree on what counts as
    a data carrier.
    """
    return classify_output(script_pubkey) == OUTPUT_OP_RETURN
