"""Transaction and block validation rules.

Split into *syntactic* checks (self-contained), *contextual* transaction
checks (against a UTXO set and chain position), and *block* checks
(structure, proof-of-work, and every contained transaction).  The node
layer decides when the expensive script execution runs — the paper's
Figs. 5/6 differ exactly in whether incoming blocks are re-verified.
"""

from __future__ import annotations

from typing import Optional

from repro.blockchain.block import Block
from repro.blockchain.context import TransactionContext
from repro.blockchain.params import ChainParams
from repro.blockchain.transaction import Transaction
from repro.blockchain.utxo import UTXOSet
from repro.errors import ValidationError
from repro.script.interpreter import ScriptInterpreter
from repro.script.opcodes import OP

__all__ = [
    "check_transaction_syntax",
    "check_transaction_inputs",
    "verify_transaction_scripts",
    "check_block",
    "connect_block_transactions",
]

_MAX_MONEY = 21_000_000 * 100_000_000


def check_transaction_syntax(tx: Transaction) -> None:
    """Context-free sanity checks on a transaction."""
    seen = set()
    for tx_input in tx.inputs:
        if tx_input.outpoint in seen:
            raise ValidationError(
                f"duplicate input {tx_input.outpoint} in {tx.txid.hex()[:16]}.."
            )
        seen.add(tx_input.outpoint)
    if not tx.is_coinbase:
        for tx_input in tx.inputs:
            if tx_input.outpoint.is_coinbase:
                raise ValidationError(
                    "non-coinbase transaction has a null input"
                )
    total = 0
    for output in tx.outputs:
        if output.value > _MAX_MONEY:
            raise ValidationError(f"output value too large: {output.value}")
        total += output.value
        if total > _MAX_MONEY:
            raise ValidationError(f"total output value too large: {total}")


def check_transaction_inputs(tx: Transaction, utxos: UTXOSet, height: int,
                             params: ChainParams) -> int:
    """Contextual checks: inputs exist, maturity, value balance.

    Returns the transaction fee.
    """
    if tx.is_coinbase:
        return 0
    input_value = 0
    for tx_input in tx.inputs:
        entry = utxos.get(tx_input.outpoint)
        if entry is None:
            raise ValidationError(
                f"input {tx_input.outpoint} not in UTXO set "
                f"(spent or never existed)"
            )
        if entry.is_coinbase and height - entry.height < params.coinbase_maturity:
            raise ValidationError(
                f"coinbase output {tx_input.outpoint} spent at height "
                f"{height}, matures at {entry.height + params.coinbase_maturity}"
            )
        input_value += entry.value
    if input_value < tx.total_output_value:
        raise ValidationError(
            f"outputs ({tx.total_output_value}) exceed inputs ({input_value})"
        )
    return input_value - tx.total_output_value


def verify_transaction_scripts(tx: Transaction, utxos: UTXOSet) -> None:
    """Run every input's unlocking+locking script pair."""
    if tx.is_coinbase:
        return
    for index, tx_input in enumerate(tx.inputs):
        entry = utxos.get(tx_input.outpoint)
        if entry is None:
            raise ValidationError(f"input {tx_input.outpoint} not in UTXO set")
        context = TransactionContext(
            tx=tx, input_index=index,
            locking_script=entry.output.script_pubkey,
        )
        interpreter = ScriptInterpreter(context=context)
        if not interpreter.verify(tx_input.script_sig,
                                  entry.output.script_pubkey):
            raise ValidationError(
                f"script verification failed for input {index} of "
                f"{tx.txid.hex()[:16]}.. "
                f"(locking: {entry.output.script_pubkey.disassemble()})"
            )


def check_block(block: Block, prev_height: int, params: ChainParams) -> None:
    """Structural block checks (independent of the UTXO set)."""
    if not block.header.meets_target(params.pow_bits):
        raise ValidationError(
            f"block {block.hash.hex()[:16]}.. does not meet the "
            f"{params.pow_bits}-bit proof-of-work target"
        )
    if block.serialized_size() > params.max_block_size:
        raise ValidationError(
            f"block size {block.serialized_size()} exceeds limit "
            f"{params.max_block_size}"
        )
    if block.compute_merkle_root() != block.header.merkle_root:
        raise ValidationError("merkle root mismatch")
    if not block.transactions[0].is_coinbase:
        raise ValidationError("first transaction is not a coinbase")
    for tx in block.transactions[1:]:
        if tx.is_coinbase:
            raise ValidationError("block contains a non-first coinbase")
    height = prev_height + 1
    for tx in block.transactions:
        check_transaction_syntax(tx)
        if not tx.is_final(height, block.header.timestamp):
            raise ValidationError(
                f"transaction {tx.txid.hex()[:16]}.. is not final at "
                f"height {height}"
            )


def connect_block_transactions(block: Block, utxos: UTXOSet, height: int,
                               params: ChainParams,
                               verify_scripts: bool = True) -> list[dict]:
    """Apply a block's transactions to ``utxos``; returns per-tx undo data.

    Raises :class:`ValidationError` with the UTXO set *rolled back* to its
    pre-call state on any failure.  ``verify_scripts=False`` reproduces the
    paper's Fig. 5 configuration (block verification disabled).
    """
    undo_stack: list[tuple[Transaction, dict]] = []
    total_fees = 0
    try:
        for tx in block.transactions:
            total_fees += check_transaction_inputs(tx, utxos, height, params)
            if verify_scripts:
                verify_transaction_scripts(tx, utxos)
            spent = utxos.apply_transaction(tx, height)
            undo_stack.append((tx, spent))
    except ValidationError:
        for tx, spent in reversed(undo_stack):
            utxos.undo_transaction(tx, spent)
        raise
    coinbase_value = block.coinbase.total_output_value
    max_coinbase = params.coinbase_reward + total_fees
    if coinbase_value > max_coinbase:
        for tx, spent in reversed(undo_stack):
            utxos.undo_transaction(tx, spent)
        raise ValidationError(
            f"coinbase claims {coinbase_value}, max is {max_coinbase}"
        )
    return [spent for _, spent in undo_stack]


def is_op_return_output(script_pubkey) -> bool:
    """True if a locking script is a data-carrier (OP_RETURN) output."""
    elements = script_pubkey.elements
    return bool(elements) and elements[0] == OP.OP_RETURN
