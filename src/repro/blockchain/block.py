"""Blocks and block headers."""

from __future__ import annotations

import struct
from dataclasses import dataclass
from functools import cached_property
from typing import Iterable

from repro.blockchain.merkle import merkle_root
from repro.blockchain.transaction import Transaction
from repro.crypto.hashing import double_sha256
from repro.errors import ValidationError

__all__ = ["BlockHeader", "Block"]


@dataclass(frozen=True)
class BlockHeader:
    """An 80-byte-equivalent block header.

    ``timestamp`` is simulation time in seconds (float seconds are rounded
    into milliseconds on the wire so hashing stays deterministic).
    """

    prev_hash: bytes
    merkle_root: bytes
    timestamp: float
    nonce: int = 0
    version: int = 1

    def __post_init__(self) -> None:
        if len(self.prev_hash) != 32:
            raise ValidationError(
                f"prev_hash must be 32 bytes, got {len(self.prev_hash)}"
            )
        if len(self.merkle_root) != 32:
            raise ValidationError(
                f"merkle_root must be 32 bytes, got {len(self.merkle_root)}"
            )
        if self.nonce < 0:
            raise ValidationError(f"nonce cannot be negative: {self.nonce}")

    def serialize(self) -> bytes:
        return (
            struct.pack("<i", self.version)
            + self.prev_hash
            + self.merkle_root
            + struct.pack("<Q", int(self.timestamp * 1000))
            + struct.pack("<Q", self.nonce)
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "BlockHeader":
        if len(data) != 4 + 32 + 32 + 8 + 8:
            raise ValidationError(f"bad header length: {len(data)}")
        version = struct.unpack_from("<i", data, 0)[0]
        prev_hash = data[4:36]
        root = data[36:68]
        timestamp_ms = struct.unpack_from("<Q", data, 68)[0]
        nonce = struct.unpack_from("<Q", data, 76)[0]
        return cls(prev_hash=prev_hash, merkle_root=root,
                   timestamp=timestamp_ms / 1000.0, nonce=nonce,
                   version=version)

    @cached_property
    def hash(self) -> bytes:
        return double_sha256(self.serialize())

    def meets_target(self, pow_bits: int) -> bool:
        """True if the header hash has at least ``pow_bits`` leading zero bits."""
        if pow_bits == 0:
            return True
        value = int.from_bytes(self.hash, "big")
        return value < (1 << (256 - pow_bits))


@dataclass(frozen=True)
class Block:
    """A block: header plus ordered transactions (coinbase first)."""

    header: BlockHeader
    transactions: tuple[Transaction, ...]

    def __init__(self, header: BlockHeader,
                 transactions: Iterable[Transaction]) -> None:
        object.__setattr__(self, "header", header)
        object.__setattr__(self, "transactions", tuple(transactions))
        if not self.transactions:
            raise ValidationError("block has no transactions")

    @property
    def hash(self) -> bytes:
        return self.header.hash

    @property
    def coinbase(self) -> Transaction:
        return self.transactions[0]

    def serialized_size(self) -> int:
        return len(self.header.serialize()) + sum(
            len(tx.serialize()) for tx in self.transactions
        )

    def compute_merkle_root(self) -> bytes:
        return merkle_root([tx.txid for tx in self.transactions])

    @classmethod
    def assemble(cls, prev_hash: bytes, timestamp: float,
                 transactions: Iterable[Transaction],
                 nonce: int = 0, version: int = 1) -> "Block":
        """Build a block with a correct Merkle root over ``transactions``."""
        txs = tuple(transactions)
        root = merkle_root([tx.txid for tx in txs])
        header = BlockHeader(prev_hash=prev_hash, merkle_root=root,
                             timestamp=timestamp, nonce=nonce, version=version)
        return cls(header=header, transactions=txs)

    def __str__(self) -> str:
        return (
            f"Block({self.hash.hex()[:16]}.., {len(self.transactions)} txs, "
            f"t={self.header.timestamp:.3f})"
        )
