"""Cross-input ECDSA batching: static extraction + precomputed verdicts.

The throughput engine's batch layer.  Given the ``(tx, input_index,
locking_script)`` triples a block (or one multi-input admission) is about
to verify, this module statically recognizes the spends whose signature
check is a plain ECDSA verify — a p2pkh or CLTV-guarded-p2pkh locking
script spent by a push-only ``<sig> <pubkey>`` unlocking script — and
front-loads their expensive work:

* every input's SIGHASH_ALL digest is computed through
  :meth:`~repro.blockchain.transaction.Transaction.sighash_many`, which
  serializes each transaction once instead of once per input;
* all recognized ``(pubkey, digest, signature)`` triples go through
  :func:`repro.crypto.ecdsa.verify_batch`, which amortizes fixed-base
  table setup across inputs sharing a pubkey and batches the modular
  inversions.

The interpreter still executes every opcode of every script — the
precomputed digests and verdicts are handed to
:class:`~repro.blockchain.context.TransactionContext` as pure
accelerations, so verdicts, error strings, and side effects are
bit-identical to the unbatched path (``verify_batch`` itself is
verdict-identical to ``PublicKey.verify``).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.blockchain.transaction import Transaction
from repro.crypto import ecdsa
from repro.script.analysis import (
    OUTPUT_CLTV_GUARDED,
    OUTPUT_P2PKH,
    classify_output,
)
from repro.script.script import Script

__all__ = ["extract_checksig_spend", "precompute_verdicts"]

#: Locking shapes whose single OP_CHECKSIG consumes exactly the two
#: pushes of a ``<sig> <pubkey>`` unlocking script.
_CHECKSIG_SHAPES = (OUTPUT_P2PKH, OUTPUT_CLTV_GUARDED)


def extract_checksig_spend(script_sig: Script,
                           locking: Script) -> Optional[tuple[bytes, bytes]]:
    """``(pubkey, signature)`` if this spend is a recognizable CHECKSIG.

    Returns None for anything the static view cannot pin down (multisig,
    key-release scripts, non-push unlocking data) — those inputs simply
    verify at interpreter speed.
    """
    elements = script_sig.elements
    if len(elements) != 2:
        return None
    signature, pubkey = elements
    if not (isinstance(signature, bytes) and len(signature) == 64):
        return None
    if not (isinstance(pubkey, bytes) and len(pubkey) == 33):
        return None
    if classify_output(locking) not in _CHECKSIG_SHAPES:
        return None
    return pubkey, signature


def precompute_verdicts(
    spends: Sequence[tuple[Transaction, int, Script]],
) -> tuple[dict[tuple[bytes, int], bytes], dict[tuple[bytes, bytes, bytes], bool]]:
    """Precompute sighash digests and ECDSA verdicts for a spend batch.

    Returns ``(hints, verdicts)``: ``hints`` maps ``(txid, input_index)``
    to the input's SIGHASH_ALL digest, ``verdicts`` maps
    ``(pubkey, digest, signature)`` to the batch-verified outcome.  Both
    feed :class:`~repro.blockchain.context.TransactionContext` fields of
    the same names' purpose.
    """
    hints: dict[tuple[bytes, int], bytes] = {}
    by_tx: dict[bytes, list[tuple[int, Script]]] = {}
    tx_for: dict[bytes, Transaction] = {}
    for tx, input_index, locking in spends:
        by_tx.setdefault(tx.txid, []).append((input_index, locking))
        tx_for[tx.txid] = tx
    for txid, pairs in by_tx.items():
        digests = tx_for[txid].sighash_many(pairs)
        for (input_index, _), digest in zip(pairs, digests):
            hints[(txid, input_index)] = digest

    items: list[tuple[ecdsa.PublicKey, bytes, ecdsa.Signature]] = []
    keys: list[tuple[bytes, bytes, bytes]] = []
    for tx, input_index, locking in spends:
        extracted = extract_checksig_spend(tx.inputs[input_index].script_sig,
                                           locking)
        if extracted is None:
            continue
        pubkey, signature = extracted
        digest = hints[(tx.txid, input_index)]
        try:
            public_key = ecdsa.PublicKey.from_bytes(pubkey)
            sig = ecdsa.Signature.from_bytes(signature)
        except ecdsa.ECDSAError:
            # The interpreter's CHECKSIG returns False for unparseable
            # material; recording that verdict here skips the re-parse.
            keys.append((pubkey, digest, signature))
            items.append(None)
            continue
        keys.append((pubkey, digest, signature))
        items.append((public_key, digest, sig))

    verdicts: dict[tuple[bytes, bytes, bytes], bool] = {}
    parseable = [(i, item) for i, item in enumerate(items) if item is not None]
    batch_results = ecdsa.verify_batch([item for _, item in parseable])
    for (slot, _), ok in zip(parseable, batch_results):
        verdicts[keys[slot]] = ok
    for slot, item in enumerate(items):
        if item is None:
            verdicts[keys[slot]] = False
    return hints, verdicts
