"""Wallets: key management, UTXO tracking, transaction construction.

Every BcWAN actor (gateway, recipient, master) holds a wallet.  Beyond
plain payments it builds the three transaction shapes the protocol needs:

* OP_RETURN *announcements* carrying a gateway's IP address (section 4.3);
* the *key-release offer* locking payment to the revelation of an
  ephemeral RSA-512 private key (Listing 1, step 9 of Fig. 3);
* the *claim* and *refund* spends of such an offer (step 10).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.blockchain.chain import Chain
from repro.blockchain.transaction import (
    OutPoint,
    SEQUENCE_FINAL,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.crypto.keys import KeyPair
from repro.errors import ValidationError
from repro.script import builder
from repro.script.script import Script

__all__ = ["Wallet", "KeyReleaseOffer"]


@dataclass(frozen=True)
class KeyReleaseOffer:
    """A funded Listing-1 output, as seen by both gateway and recipient."""

    transaction: Transaction
    output_index: int
    rsa_pubkey: bytes
    gateway_pubkey_hash: bytes
    buyer_pubkey_hash: bytes
    refund_locktime: int

    @property
    def outpoint(self) -> OutPoint:
        return OutPoint(txid=self.transaction.txid, index=self.output_index)

    @property
    def amount(self) -> int:
        return self.transaction.outputs[self.output_index].value


class Wallet:
    """A single-key wallet bound to one chain view.

    The wallet watches connected blocks for outputs paying its address and
    for spends of its coins; register it via :meth:`watch_chain` or call
    :meth:`scan_block` manually.  Mempool-pending spends are tracked so the
    wallet never builds two transactions over the same coin.
    """

    def __init__(self, chain: Chain, keypair: Optional[KeyPair] = None,
                 rng: Optional[random.Random] = None) -> None:
        self.chain = chain
        self.keypair = keypair or KeyPair.generate(rng)
        self._owned: dict[OutPoint, int] = {}  # outpoint -> value
        self._pending_spends: set[OutPoint] = set()

    # -- identity -------------------------------------------------------------

    @property
    def address(self) -> str:
        return self.keypair.address

    @property
    def pubkey_hash(self) -> bytes:
        return self.keypair.pubkey_hash

    @property
    def pubkey_bytes(self) -> bytes:
        return self.keypair.public_key.to_bytes()

    # -- balance tracking -------------------------------------------------------

    def watch_chain(self) -> None:
        """Subscribe to block-connect events and scan existing history."""
        for _height, block in self.chain.iter_active_blocks():
            self.scan_block(block)
        self.chain.add_connect_listener(lambda block, height: self.scan_block(block))

    def scan_block(self, block) -> None:
        """Update owned coins from a connected block."""
        my_script = builder.p2pkh_locking(self.pubkey_hash).to_bytes()
        for tx in block.transactions:
            for tx_input in tx.inputs:
                self._owned.pop(tx_input.outpoint, None)
                self._pending_spends.discard(tx_input.outpoint)
            for index, output in enumerate(tx.outputs):
                if output.script_pubkey.to_bytes() == my_script:
                    outpoint = OutPoint(txid=tx.txid, index=index)
                    if self.chain.utxos.get(outpoint) is not None:
                        self._owned[outpoint] = output.value

    def refresh_from_utxo_set(self) -> None:
        """Rebuild ownership from the chain's UTXO set (e.g. after reorg)."""
        my_script = builder.p2pkh_locking(self.pubkey_hash).to_bytes()
        self._owned = {
            outpoint: entry.value
            for outpoint, entry in self.chain.utxos.items()
            if entry.output.script_pubkey.to_bytes() == my_script
        }
        self._pending_spends &= set(self._owned)

    @property
    def balance(self) -> int:
        return sum(
            value for outpoint, value in self._owned.items()
            if outpoint not in self._pending_spends
        )

    def spendable_coins(self) -> list[tuple[OutPoint, int]]:
        """Mature, unreserved coins sorted largest-first."""
        maturity = self.chain.params.coinbase_maturity
        coins = []
        for outpoint, value in self._owned.items():
            if outpoint in self._pending_spends:
                continue
            entry = self.chain.utxos.get(outpoint)
            if entry is None:
                continue
            if entry.is_coinbase and self.chain.height - entry.height < maturity:
                continue
            coins.append((outpoint, value))
        coins.sort(key=lambda item: item[1], reverse=True)
        return coins

    def _select_coins(self, amount: int) -> tuple[list[tuple[OutPoint, int]], int]:
        """Greedy largest-first coin selection covering ``amount``."""
        selected = []
        total = 0
        for outpoint, value in self.spendable_coins():
            selected.append((outpoint, value))
            total += value
            if total >= amount:
                return selected, total
        raise ValidationError(
            f"insufficient funds: need {amount}, have {total} spendable"
        )

    # -- transaction construction ------------------------------------------------

    def sign_input(self, tx: Transaction, input_index: int,
                   locking_script: Script) -> bytes:
        """Compact ECDSA signature for one input under SIGHASH_ALL."""
        digest = tx.sighash(input_index, locking_script)
        return self.keypair.sign(digest).to_bytes()

    def _finalize_p2pkh_inputs(self, tx: Transaction) -> Transaction:
        """Fill every input's scriptSig assuming they all spend our P2PKH."""
        locking = builder.p2pkh_locking(self.pubkey_hash)
        for index in range(len(tx.inputs)):
            signature = self.sign_input(tx, index, locking)
            tx = tx.with_input_script(
                index, builder.p2pkh_unlocking(signature, self.pubkey_bytes)
            )
        return tx

    def _build_spend(self, outputs: list[TxOutput], fee: int,
                     locktime: int = 0,
                     sequence: int = SEQUENCE_FINAL) -> Transaction:
        amount = sum(output.value for output in outputs) + fee
        coins, total = self._select_coins(amount)
        change = total - amount
        final_outputs = list(outputs)
        if change > 0:
            final_outputs.append(TxOutput(
                value=change,
                script_pubkey=builder.p2pkh_locking(self.pubkey_hash),
            ))
        tx = Transaction(
            inputs=[TxInput(outpoint=outpoint, sequence=sequence)
                    for outpoint, _ in coins],
            outputs=final_outputs,
            locktime=locktime,
        )
        tx = self._finalize_p2pkh_inputs(tx)
        for outpoint, _ in coins:
            self._pending_spends.add(outpoint)
        return tx

    def create_payment(self, to_pubkey_hash: bytes, amount: int,
                       fee: int = 0) -> Transaction:
        """A plain P2PKH payment."""
        if amount <= 0:
            raise ValidationError(f"payment amount must be positive: {amount}")
        return self._build_spend(
            [TxOutput(value=amount,
                      script_pubkey=builder.p2pkh_locking(to_pubkey_hash))],
            fee=fee,
        )

    def create_fanout(self, to_pubkey_hash: bytes, amount: int,
                      count: int, fee: int = 0) -> Transaction:
        """Pay ``count`` equal outputs of ``amount`` to one address.

        Bootstrap helper: an actor funded with many small coins can issue
        many concurrent key-release offers without waiting for change to
        confirm.
        """
        if amount <= 0 or count <= 0:
            raise ValidationError(
                f"fanout needs positive amount and count, got "
                f"{amount} x {count}"
            )
        outputs = [
            TxOutput(value=amount,
                     script_pubkey=builder.p2pkh_locking(to_pubkey_hash))
            for _ in range(count)
        ]
        return self._build_spend(outputs, fee=fee)

    def create_announcement(self, payload: bytes, fee: int = 0) -> Transaction:
        """An OP_RETURN data-carrier transaction (gateway IP directory)."""
        return self._build_spend(
            [TxOutput(value=0, script_pubkey=builder.op_return(payload))],
            fee=fee,
        )

    def create_key_release_offer(self, rsa_pubkey: bytes,
                                 gateway_pubkey_hash: bytes,
                                 amount: int, fee: int = 0,
                                 refund_locktime: Optional[int] = None
                                 ) -> KeyReleaseOffer:
        """Step 9 of Fig. 3: lock ``amount`` to the ephemeral key revelation.

        The refund path defaults to the paper's ``block_height + 100``.
        """
        if amount <= 0:
            raise ValidationError(f"offer amount must be positive: {amount}")
        if refund_locktime is None:
            refund_locktime = self.chain.height + self.chain.params.locktime_grace
        locking = builder.ephemeral_key_release(
            rsa_pubkey=rsa_pubkey,
            gateway_pubkey_hash=gateway_pubkey_hash,
            buyer_pubkey_hash=self.pubkey_hash,
            refund_locktime=refund_locktime,
        )
        tx = self._build_spend(
            [TxOutput(value=amount, script_pubkey=locking)], fee=fee,
        )
        return KeyReleaseOffer(
            transaction=tx,
            output_index=0,
            rsa_pubkey=rsa_pubkey,
            gateway_pubkey_hash=gateway_pubkey_hash,
            buyer_pubkey_hash=self.pubkey_hash,
            refund_locktime=refund_locktime,
        )

    def claim_key_release(self, offer: KeyReleaseOffer,
                          rsa_private_key: bytes, fee: int = 0) -> Transaction:
        """Step 10 of Fig. 3: spend the offer by revealing ``eSk``.

        The output pays this wallet ("the output ... should be intended to
        the gateway itself", paper step 10).
        """
        value = offer.amount - fee
        if value <= 0:
            raise ValidationError(
                f"fee {fee} consumes the whole offer of {offer.amount}"
            )
        tx = Transaction(
            inputs=[TxInput(outpoint=offer.outpoint)],
            outputs=[TxOutput(
                value=value,
                script_pubkey=builder.p2pkh_locking(self.pubkey_hash),
            )],
        )
        locking = builder.ephemeral_key_release(
            rsa_pubkey=offer.rsa_pubkey,
            gateway_pubkey_hash=offer.gateway_pubkey_hash,
            buyer_pubkey_hash=offer.buyer_pubkey_hash,
            refund_locktime=offer.refund_locktime,
        )
        signature = self.sign_input(tx, 0, locking)
        return tx.with_input_script(
            0, builder.key_release_claim(signature, self.pubkey_bytes,
                                         rsa_private_key),
        )

    def refund_key_release(self, offer: KeyReleaseOffer,
                           fee: int = 0) -> Transaction:
        """Reclaim an unclaimed offer after its locktime expires."""
        value = offer.amount - fee
        if value <= 0:
            raise ValidationError(
                f"fee {fee} consumes the whole offer of {offer.amount}"
            )
        tx = Transaction(
            inputs=[TxInput(outpoint=offer.outpoint,
                            sequence=SEQUENCE_FINAL - 1)],
            outputs=[TxOutput(
                value=value,
                script_pubkey=builder.p2pkh_locking(self.pubkey_hash),
            )],
            locktime=offer.refund_locktime,
        )
        locking = builder.ephemeral_key_release(
            rsa_pubkey=offer.rsa_pubkey,
            gateway_pubkey_hash=offer.gateway_pubkey_hash,
            buyer_pubkey_hash=offer.buyer_pubkey_hash,
            refund_locktime=offer.refund_locktime,
        )
        signature = self.sign_input(tx, 0, locking)
        return tx.with_input_script(
            0, builder.key_release_refund(signature, self.pubkey_bytes),
        )

    def release_pending(self, tx: Transaction) -> None:
        """Un-reserve a built transaction's inputs (e.g. broadcast failed)."""
        for tx_input in tx.inputs:
            self._pending_spends.discard(tx_input.outpoint)
