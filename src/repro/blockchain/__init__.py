"""A Multichain-like UTXO blockchain, from scratch.

The paper runs its proof of concept on Multichain (a Bitcoin v10 fork with
configurable mining time, block size, and consensus).  This package
implements the equivalent substrate:

* :mod:`repro.blockchain.params` — the Multichain-style tunables, including
  the block-verification toggle behind Figs. 5/6;
* :mod:`repro.blockchain.transaction`, :mod:`repro.blockchain.block`,
  :mod:`repro.blockchain.merkle` — wire formats and hashing;
* :mod:`repro.blockchain.utxo`, :mod:`repro.blockchain.engine`,
  :mod:`repro.blockchain.chain` — state (with copy-on-write overlay
  views), the staged validation engine with its script-verification
  cache, fork choice, reorgs;
* :mod:`repro.blockchain.mempool`, :mod:`repro.blockchain.miner` —
  unconfirmed pool and block production;
* :mod:`repro.blockchain.checkpoint` — sub-chain digests anchored on the
  global settlement chain of a hierarchical federation;
* :mod:`repro.blockchain.wallet` — keys, coins, and the BcWAN transaction
  shapes (OP_RETURN announcements, Listing-1 key-release offers);
* :mod:`repro.blockchain.node` — the assembled full node.
"""

from repro.blockchain.block import Block, BlockHeader
from repro.blockchain.chain import AddBlockResult, BlockRecord, Chain, create_genesis_block
from repro.blockchain.checkpoint import (
    CHECKPOINT_MAGIC,
    Checkpoint,
    CheckpointRules,
    build_checkpoint_payload,
    iter_checkpoints,
    latest_checkpoints,
    parse_checkpoint_payload,
    settlement_proof,
    verify_settlement,
)
from repro.blockchain.context import TransactionContext
from repro.blockchain.engine import (
    MAX_MONEY,
    ScriptCacheStats,
    ValidationEngine,
    ValidationReport,
)
from repro.blockchain.mempool import Mempool
from repro.blockchain.merkle import merkle_branch, merkle_root, verify_branch
from repro.blockchain.miner import Miner
from repro.blockchain.node import FullNode, RelayDecision
from repro.blockchain.params import COIN, ChainParams
from repro.blockchain.pos import PoSProducer, StakeRegistry, slot_of
from repro.blockchain.store import (
    deserialize_block,
    load_chain,
    save_chain,
    serialize_block,
)
from repro.blockchain.transaction import (
    COINBASE_OUTPOINT,
    SEQUENCE_FINAL,
    SIGHASH_ALL,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.blockchain.utxo import UTXOEntry, UTXOSet, UTXOView
from repro.blockchain.wallet import KeyReleaseOffer, Wallet

__all__ = [
    "AddBlockResult",
    "Block",
    "BlockHeader",
    "BlockRecord",
    "CHECKPOINT_MAGIC",
    "COIN",
    "COINBASE_OUTPOINT",
    "Chain",
    "ChainParams",
    "Checkpoint",
    "CheckpointRules",
    "FullNode",
    "KeyReleaseOffer",
    "MAX_MONEY",
    "Mempool",
    "Miner",
    "ScriptCacheStats",
    "ValidationEngine",
    "ValidationReport",
    "OutPoint",
    "PoSProducer",
    "RelayDecision",
    "StakeRegistry",
    "SEQUENCE_FINAL",
    "SIGHASH_ALL",
    "Transaction",
    "TransactionContext",
    "TxInput",
    "TxOutput",
    "UTXOEntry",
    "UTXOSet",
    "UTXOView",
    "Wallet",
    "build_checkpoint_payload",
    "create_genesis_block",
    "deserialize_block",
    "iter_checkpoints",
    "latest_checkpoints",
    "load_chain",
    "merkle_branch",
    "merkle_root",
    "parse_checkpoint_payload",
    "save_chain",
    "serialize_block",
    "settlement_proof",
    "slot_of",
    "verify_branch",
    "verify_settlement",
]
