"""The unconfirmed-transaction pool and its fee-market admission policy.

Accepts transactions after full validation against the chain tip plus the
pool itself (chained unconfirmed spends are allowed, conflicting spends are
rejected — which is exactly where the paper's double-spend discussion
starts: a conflicting respend is invisible to a node that already holds
the first transaction, until a block proves otherwise).

Admission is a *verdict*, not an exception: :meth:`Mempool.accept` returns
an :class:`AcceptResult` carrying the outcome, a stable ``reason_code``
for programmatic flow control (gossip keys orphan handling off
:data:`REJECT_MISSING_INPUTS`, not string matching), the fee the pool
recorded, and any transactions evicted to make room.  The pre-redesign
raise-only signature survives as the deprecated
:meth:`Mempool.accept_or_raise` shim.

Under sustained overload a :class:`MempoolPolicy` turns the pool into a
fee market: a minimum fee-rate floor at the door, and size caps enforced
by evicting the lowest fee-rate transaction (oldest first on ties) along
with its unconfirmed descendants.  :meth:`Mempool.accept_package` admits
a parent+child chain on its *aggregate* fee rate (child-pays-for-parent),
so a zero-fee sensor reading can still ride in behind a paying child.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator, Optional

from repro.blockchain.chain import Chain
from repro.blockchain.transaction import OutPoint, Transaction
from repro.blockchain.utxo import UTXOEntry
from repro.errors import ConfigurationError, ValidationError

__all__ = [
    "AcceptResult",
    "Mempool",
    "MempoolPolicy",
    "REJECT_CHECKPOINT",
    "REJECT_COINBASE",
    "REJECT_CONFLICT",
    "REJECT_DUPLICATE",
    "REJECT_FEE",
    "REJECT_FULL",
    "REJECT_IMMATURE",
    "REJECT_MISSING_INPUTS",
    "REJECT_NONSTANDARD",
    "REJECT_NON_FINAL",
    "REJECT_SCRIPT",
    "REJECT_SYNTAX",
    "REJECT_VALUE",
]

# Stable machine-readable rejection codes.  Callers branch on these;
# ``AcceptResult.reason`` stays human-diagnostic prose.
REJECT_DUPLICATE = "duplicate"
REJECT_COINBASE = "coinbase"
REJECT_SYNTAX = "syntax"
REJECT_CHECKPOINT = "checkpoint"
REJECT_CONFLICT = "conflict"
REJECT_NONSTANDARD = "nonstandard"
REJECT_MISSING_INPUTS = "missing-inputs"
REJECT_IMMATURE = "immature"
REJECT_VALUE = "value"
REJECT_NON_FINAL = "non-final"
REJECT_SCRIPT = "script"
REJECT_FEE = "fee"
REJECT_FULL = "full"


@dataclass(frozen=True)
class MempoolPolicy:
    """Fee-market knobs; the all-zero default disables every mechanism
    (unlimited pool, no floor — the pre-policy behaviour, bit for bit).

    :param max_transactions: pool entry cap; ``0`` = unlimited.
    :param max_bytes: cap on summed serialized sizes; ``0`` = unlimited.
    :param min_fee_per_kb: admission floor in value-units per 1000 bytes
        of serialized transaction; ``0`` = no floor.  Integer fee-rate
        arithmetic throughout (``fee * 1000 // size``) — consensus-adjacent
        code never touches floats.
    """

    max_transactions: int = 0
    max_bytes: int = 0
    min_fee_per_kb: int = 0

    def __post_init__(self) -> None:
        for name in ("max_transactions", "max_bytes", "min_fee_per_kb"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(
                    f"{name} cannot be negative: {value}"
                )


@dataclass(frozen=True)
class AcceptResult:
    """The verdict of one admission attempt.

    :param accepted: whether ``txid`` is now in the pool.  Note a
        transaction can be admitted and immediately evicted by its own
        arrival pushing the pool over a cap — that reports
        ``accepted=False`` with :data:`REJECT_FULL` and lists itself in
        ``evicted``.
    :param txid: the subject transaction.
    :param reason: human-readable rejection diagnosis (empty on accept);
        for :data:`REJECT_SCRIPT` et al. this is the exact
        :class:`ValidationError` message the raise-only API produced.
    :param reason_code: one of the ``REJECT_*`` constants (empty on
        accept) — the field flow control should branch on.
    :param fee: the transaction's fee (inputs minus outputs), 0 when
        rejected before fee computation.
    :param fee_per_kb: integer fee rate over the serialized size.
    :param evicted: txids removed from the pool as a consequence of this
        admission (fee-market eviction cascades).
    """

    accepted: bool
    txid: bytes
    reason: str = ""
    reason_code: str = ""
    fee: int = 0
    fee_per_kb: int = 0
    evicted: tuple[bytes, ...] = ()


class Mempool:
    """Validated unconfirmed transactions, keyed by txid.

    Admission runs the chain engine's full staged pipeline — including
    script execution — so every verdict lands in the shared script cache
    and the eventual block connect never re-executes an admitted
    transaction's scripts.

    :param chain: the chain whose tip admission validates against.
    :param policy: fee/eviction knobs; omitted means the all-zero
        :class:`MempoolPolicy` (unlimited, floorless).
    """

    def __init__(self, chain: Chain,
                 policy: Optional[MempoolPolicy] = None) -> None:
        self._chain = chain
        self._engine = chain.engine
        self.policy = MempoolPolicy() if policy is None else policy
        self._transactions: dict[bytes, Transaction] = {}
        # outpoint -> txid of the pool transaction spending it.
        self._spends: dict[OutPoint, bytes] = {}
        # Fee-market bookkeeping, maintained by admission and removal.
        self._fees: dict[bytes, int] = {}
        self._sizes: dict[bytes, int] = {}
        self._total_bytes = 0
        self.evictions = 0
        # Optional wall-clock profiler; None keeps accept() at one extra
        # attribute load and branch (see repro.obs.profile).
        self.obs = None

    def __len__(self) -> int:
        return len(self._transactions)

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._transactions

    def get(self, txid: bytes) -> Optional[Transaction]:
        return self._transactions.get(txid)

    def transactions(self) -> Iterator[Transaction]:
        return iter(self._transactions.values())

    @property
    def total_bytes(self) -> int:
        """Summed serialized sizes of every pooled transaction."""
        return self._total_bytes

    def fee_of(self, txid: bytes) -> int:
        """The fee recorded at admission (0 for unknown txids)."""
        return self._fees.get(txid, 0)

    def package_fee(self, transactions: Iterable[Transaction]) -> int:
        """Summed recorded fees of pooled members of ``transactions``."""
        return sum(self._fees.get(tx.txid, 0) for tx in transactions)

    def conflicts_with(self, tx: Transaction) -> list[bytes]:
        """Txids already in the pool that spend any of ``tx``'s inputs."""
        seen = []
        for tx_input in tx.inputs:
            existing = self._spends.get(tx_input.outpoint)
            if existing is not None and existing != tx.txid:
                seen.append(existing)
        return seen

    # -- admission -------------------------------------------------------------

    def accept(self, tx: Transaction) -> AcceptResult:
        """Validate and admit ``tx``; the verdict is the return value.

        Inputs may come from the confirmed UTXO set or from other pool
        transactions (unconfirmed chaining), but never from outputs
        already spent by another pool transaction.  Never raises for a
        rejected transaction — branch on ``result.accepted`` and
        ``result.reason_code``.
        """
        if self.obs is None:
            return self._accept(tx)
        t0 = self.obs.clock()
        try:
            return self._accept(tx)
        finally:
            self.obs.observe("mempool.accept", self.obs.clock() - t0)

    def accept_or_raise(self, tx: Transaction) -> None:
        """Deprecated pre-:class:`AcceptResult` signature.

        Raises :class:`ValidationError` with the result's reason instead
        of returning the verdict; kept one release for external callers
        that still use exception flow control.  New code must call
        :meth:`accept`.
        """
        result = self.accept(tx)
        if not result.accepted:
            raise ValidationError(result.reason)

    def _reject(self, tx: Transaction, code: str, reason: str,
                **fields) -> AcceptResult:
        return AcceptResult(accepted=False, txid=tx.txid, reason=reason,
                            reason_code=code, **fields)

    def _accept(self, tx: Transaction,
                enforce_floor: bool = True) -> AcceptResult:
        if tx.txid in self._transactions:
            return self._reject(
                tx, REJECT_DUPLICATE,
                f"transaction {tx.txid.hex()[:16]}.. already in pool")
        if tx.is_coinbase:
            return self._reject(
                tx, REJECT_COINBASE,
                "coinbase transactions cannot enter the pool")
        try:
            self._engine.check_transaction_syntax(tx)
        except ValidationError as exc:
            return self._reject(tx, REJECT_SYNTAX, str(exc))
        # Anchor-chain only (no-op elsewhere): stale checkpoints are
        # turned away at admission, before input resolution.
        try:
            self._engine.check_checkpoints(tx)
        except ValidationError as exc:
            return self._reject(tx, REJECT_CHECKPOINT, str(exc))

        conflicts = self.conflicts_with(tx)
        if conflicts:
            return self._reject(
                tx, REJECT_CONFLICT,
                f"transaction {tx.txid.hex()[:16]}.. double-spends inputs of "
                f"pool transaction(s) "
                f"{', '.join(c.hex()[:16] + '..' for c in conflicts)}")

        # Standardness pre-pass: purely static, so it runs before input
        # resolution — a provably-unspendable output or a non-push
        # unlocking script is turned away without touching the UTXO set
        # or executing a single opcode.
        standardness = self._engine.policy.check_transaction(tx)
        if standardness is not None:
            return self._reject(
                tx, REJECT_NONSTANDARD,
                f"transaction {tx.txid.hex()[:16]}.. is not standard: "
                f"{standardness}")

        next_height = self._chain.height + 1
        input_value = 0
        resolved: list[UTXOEntry] = []
        for tx_input in tx.inputs:
            entry = self._resolve(tx_input.outpoint)
            if entry is None:
                return self._reject(
                    tx, REJECT_MISSING_INPUTS,
                    f"input {tx_input.outpoint} not found in chain or pool")
            if (entry.is_coinbase
                    and next_height - entry.height
                    < self._chain.params.coinbase_maturity):
                return self._reject(
                    tx, REJECT_IMMATURE,
                    f"immature coinbase input {tx_input.outpoint}")
            input_value += entry.value
            resolved.append(entry)
        if input_value < tx.total_output_value:
            return self._reject(
                tx, REJECT_VALUE,
                f"outputs ({tx.total_output_value}) exceed inputs "
                f"({input_value})")

        # Mempool policy mirrors Bitcoin: non-final transactions wait.
        if not tx.is_final(next_height,
                           self._chain.tip.block.header.timestamp):
            return self._reject(
                tx, REJECT_NON_FINAL,
                f"transaction {tx.txid.hex()[:16]}.. is not final at "
                f"height {next_height}")

        fee = input_value - tx.total_output_value
        size = len(tx.serialize())
        fee_per_kb = fee * 1000 // size
        floor = self.policy.min_fee_per_kb
        if enforce_floor and floor and fee_per_kb < floor:
            return self._reject(
                tx, REJECT_FEE,
                f"transaction {tx.txid.hex()[:16]}.. fee rate {fee_per_kb} "
                f"below floor {floor} per kB",
                fee=fee, fee_per_kb=fee_per_kb)

        # Script execution, through the engine so verdicts land in the
        # shared cache — and through its VerifyPool when one is attached
        # (multi-input transactions fan out across workers).
        try:
            self._engine.verify_input_scripts(tx, resolved)
        except ValidationError as exc:
            return self._reject(tx, REJECT_SCRIPT, str(exc),
                                fee=fee, fee_per_kb=fee_per_kb)

        self._insert(tx, fee, size)
        evicted = self._enforce_limits()
        if tx.txid not in self._transactions:
            # The pool was so full of better-paying traffic that the
            # newcomer itself was the cheapest thing to shed.
            return self._reject(
                tx, REJECT_FULL,
                f"transaction {tx.txid.hex()[:16]}.. evicted on arrival: "
                f"pool is full of higher fee-rate transactions",
                fee=fee, fee_per_kb=fee_per_kb, evicted=evicted)
        return AcceptResult(accepted=True, txid=tx.txid, fee=fee,
                            fee_per_kb=fee_per_kb, evicted=evicted)

    def accept_package(self,
                       transactions: Iterable[Transaction],
                       ) -> list[AcceptResult]:
        """Admit an ordered package on its aggregate fee rate (CPFP).

        Each member is validated exactly as :meth:`accept` does — except
        the per-transaction fee floor, which is judged against the
        *package*: if the members that got in do not jointly clear
        ``min_fee_per_kb``, they are all backed out and re-reported as
        :data:`REJECT_FEE`.  A child paying generously can therefore
        sponsor its zero-fee parent, but cannot sponsor an otherwise
        invalid one (non-fee rejections stand on their own).
        """
        results = [self._accept(tx, enforce_floor=False)
                   for tx in transactions]
        floor = self.policy.min_fee_per_kb
        admitted = [result for result in results if result.accepted]
        if not floor or not admitted:
            return results
        total_fee = sum(result.fee for result in admitted)
        total_size = sum(self._sizes.get(result.txid, 0)
                         for result in admitted)
        if total_size and total_fee * 1000 // total_size >= floor:
            return results
        package_rate = total_fee * 1000 // total_size if total_size else 0
        rejected = {result.txid for result in admitted}
        for result in admitted:
            self.remove(result.txid)
        return [
            replace(result, accepted=False, reason_code=REJECT_FEE,
                    reason=(f"package fee rate {package_rate} below floor "
                            f"{floor} per kB"))
            if result.txid in rejected else result
            for result in results
        ]

    def _insert(self, tx: Transaction, fee: int, size: int) -> None:
        self._transactions[tx.txid] = tx
        for tx_input in tx.inputs:
            self._spends[tx_input.outpoint] = tx.txid
        self._fees[tx.txid] = fee
        self._sizes[tx.txid] = size
        self._total_bytes += size

    # -- fee-market eviction -----------------------------------------------------

    def _over_limits(self) -> bool:
        policy = self.policy
        if (policy.max_transactions
                and len(self._transactions) > policy.max_transactions):
            return True
        if policy.max_bytes and self._total_bytes > policy.max_bytes:
            return True
        return False

    def _enforce_limits(self) -> tuple[bytes, ...]:
        """Shed lowest fee-rate transactions (plus descendants) until the
        pool fits its policy caps again.  Oldest loses fee-rate ties —
        stale cheap traffic goes before fresh cheap traffic."""
        if not self._over_limits():
            return ()
        evicted: list[bytes] = []
        while self._over_limits():
            order = {txid: position
                     for position, txid in enumerate(self._transactions)}
            victim = min(
                self._transactions,
                key=lambda txid: (
                    self._fees[txid] * 1000 // self._sizes[txid],
                    order[txid],
                ),
            )
            # A victim's unconfirmed descendants lose their ancestry and
            # must go with it — eviction never leaves dangling chains.
            for txid in self._descendants(victim):
                if self.remove(txid) is not None:
                    evicted.append(txid)
                    self.evictions += 1
        return tuple(evicted)

    def _descendants(self, txid: bytes) -> list[bytes]:
        """``txid`` plus every pool transaction depending on it, parents
        before children (insertion order is already topological)."""
        selected = {txid}
        for candidate, tx in self._transactions.items():
            if candidate in selected:
                continue
            if any(tx_input.outpoint.txid in selected
                   for tx_input in tx.inputs):
                selected.add(candidate)
        return [candidate for candidate in self._transactions
                if candidate in selected]

    # -- resolution and removal --------------------------------------------------

    def _resolve(self, outpoint: OutPoint) -> Optional[UTXOEntry]:
        """Find an outpoint in the confirmed set or among pool outputs."""
        entry = self._chain.utxos.get(outpoint)
        if entry is not None:
            return entry
        parent = self._transactions.get(outpoint.txid)
        if parent is not None and outpoint.index < len(parent.outputs):
            return UTXOEntry(
                output=parent.outputs[outpoint.index],
                height=self._chain.height + 1,
                is_coinbase=False,
            )
        return None

    def remove(self, txid: bytes) -> Optional[Transaction]:
        """Drop a transaction (and its spend claims) from the pool."""
        tx = self._transactions.pop(txid, None)
        if tx is None:
            return None
        for tx_input in tx.inputs:
            if self._spends.get(tx_input.outpoint) == txid:
                del self._spends[tx_input.outpoint]
        self._fees.pop(txid, None)
        self._total_bytes -= self._sizes.pop(txid, 0)
        return tx

    def remove_confirmed(self, transactions) -> int:
        """Evict transactions that made it into a block, plus conflicts.

        Returns how many entries were removed.  A confirmed transaction
        also invalidates any pool transaction spending the same inputs
        (the loser of a double-spend race).
        """
        removed = 0
        for tx in transactions:
            if self.remove(tx.txid) is not None:
                removed += 1
            for tx_input in tx.inputs:
                conflicting = self._spends.get(tx_input.outpoint)
                if conflicting is not None:
                    self.remove(conflicting)
                    removed += 1
        return removed

    def select_for_block(self, max_bytes: int) -> list[Transaction]:
        """Pick transactions for a block template, respecting dependencies.

        Insertion order already topologically sorts unconfirmed chains
        (a child can only be accepted after its parent), so a linear pass
        suffices.
        """
        selected: list[Transaction] = []
        used = 0
        included: set[bytes] = set()
        for tx in self._transactions.values():
            size = len(tx.serialize())
            if used + size > max_bytes:
                continue
            # Parents must be confirmed or already included.
            depends_ok = all(
                tx_input.outpoint.txid not in self._transactions
                or tx_input.outpoint.txid in included
                for tx_input in tx.inputs
            )
            if not depends_ok:
                continue
            selected.append(tx)
            included.add(tx.txid)
            used += size
        return selected
