"""The unconfirmed-transaction pool.

Accepts transactions after full validation against the chain tip plus the
pool itself (chained unconfirmed spends are allowed, conflicting spends are
rejected — which is exactly where the paper's double-spend discussion
starts: a conflicting respend is invisible to a node that already holds
the first transaction, until a block proves otherwise).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.blockchain.chain import Chain
from repro.blockchain.transaction import OutPoint, Transaction
from repro.blockchain.utxo import UTXOEntry
from repro.errors import ValidationError

__all__ = ["Mempool"]


class Mempool:
    """Validated unconfirmed transactions, keyed by txid.

    Admission runs the chain engine's full staged pipeline — including
    script execution — so every verdict lands in the shared script cache
    and the eventual block connect never re-executes an admitted
    transaction's scripts.
    """

    def __init__(self, chain: Chain) -> None:
        self._chain = chain
        self._engine = chain.engine
        self._transactions: dict[bytes, Transaction] = {}
        # outpoint -> txid of the pool transaction spending it.
        self._spends: dict[OutPoint, bytes] = {}
        # Optional wall-clock profiler; None keeps accept() at one extra
        # attribute load and branch (see repro.obs.profile).
        self.obs = None

    def __len__(self) -> int:
        return len(self._transactions)

    def __contains__(self, txid: bytes) -> bool:
        return txid in self._transactions

    def get(self, txid: bytes) -> Optional[Transaction]:
        return self._transactions.get(txid)

    def transactions(self) -> Iterator[Transaction]:
        return iter(self._transactions.values())

    def conflicts_with(self, tx: Transaction) -> list[bytes]:
        """Txids already in the pool that spend any of ``tx``'s inputs."""
        seen = []
        for tx_input in tx.inputs:
            existing = self._spends.get(tx_input.outpoint)
            if existing is not None and existing != tx.txid:
                seen.append(existing)
        return seen

    def accept(self, tx: Transaction) -> None:
        """Validate and admit ``tx``; raises :class:`ValidationError`.

        Inputs may come from the confirmed UTXO set or from other pool
        transactions (unconfirmed chaining), but never from outputs already
        spent by another pool transaction.
        """
        if self.obs is None:
            return self._accept(tx)
        t0 = self.obs.clock()
        try:
            return self._accept(tx)
        finally:
            self.obs.observe("mempool.accept", self.obs.clock() - t0)

    def _accept(self, tx: Transaction) -> None:
        if tx.txid in self._transactions:
            raise ValidationError(f"transaction {tx.txid.hex()[:16]}.. already in pool")
        if tx.is_coinbase:
            raise ValidationError("coinbase transactions cannot enter the pool")
        self._engine.check_transaction_syntax(tx)
        # Anchor-chain only (no-op elsewhere): stale checkpoints are
        # turned away at admission, before input resolution.
        self._engine.check_checkpoints(tx)

        conflicts = self.conflicts_with(tx)
        if conflicts:
            raise ValidationError(
                f"transaction {tx.txid.hex()[:16]}.. double-spends inputs of "
                f"pool transaction(s) {', '.join(c.hex()[:16] + '..' for c in conflicts)}"
            )

        # Standardness pre-pass: purely static, so it runs before input
        # resolution — a provably-unspendable output or a non-push
        # unlocking script is turned away without touching the UTXO set
        # or executing a single opcode.
        standardness = self._engine.policy.check_transaction(tx)
        if standardness is not None:
            raise ValidationError(
                f"transaction {tx.txid.hex()[:16]}.. is not standard: "
                f"{standardness}"
            )

        next_height = self._chain.height + 1
        input_value = 0
        resolved: list[UTXOEntry] = []
        for tx_input in tx.inputs:
            entry = self._resolve(tx_input.outpoint)
            if entry is None:
                raise ValidationError(
                    f"input {tx_input.outpoint} not found in chain or pool"
                )
            if (entry.is_coinbase
                    and next_height - entry.height < self._chain.params.coinbase_maturity):
                raise ValidationError(
                    f"immature coinbase input {tx_input.outpoint}"
                )
            input_value += entry.value
            resolved.append(entry)
        if input_value < tx.total_output_value:
            raise ValidationError(
                f"outputs ({tx.total_output_value}) exceed inputs ({input_value})"
            )

        # Mempool policy mirrors Bitcoin: non-final transactions wait.
        if not tx.is_final(next_height, self._chain.tip.block.header.timestamp):
            raise ValidationError(
                f"transaction {tx.txid.hex()[:16]}.. is not final at "
                f"height {next_height}"
            )

        # Script execution, through the engine so verdicts land in the
        # shared cache — and through its VerifyPool when one is attached
        # (multi-input transactions fan out across workers).
        self._engine.verify_input_scripts(tx, resolved)

        self._transactions[tx.txid] = tx
        for tx_input in tx.inputs:
            self._spends[tx_input.outpoint] = tx.txid

    def _resolve(self, outpoint: OutPoint) -> Optional[UTXOEntry]:
        """Find an outpoint in the confirmed set or among pool outputs."""
        entry = self._chain.utxos.get(outpoint)
        if entry is not None:
            return entry
        parent = self._transactions.get(outpoint.txid)
        if parent is not None and outpoint.index < len(parent.outputs):
            return UTXOEntry(
                output=parent.outputs[outpoint.index],
                height=self._chain.height + 1,
                is_coinbase=False,
            )
        return None

    def remove(self, txid: bytes) -> Optional[Transaction]:
        """Drop a transaction (and its spend claims) from the pool."""
        tx = self._transactions.pop(txid, None)
        if tx is None:
            return None
        for tx_input in tx.inputs:
            if self._spends.get(tx_input.outpoint) == txid:
                del self._spends[tx_input.outpoint]
        return tx

    def remove_confirmed(self, transactions) -> int:
        """Evict transactions that made it into a block, plus conflicts.

        Returns how many entries were removed.  A confirmed transaction
        also invalidates any pool transaction spending the same inputs
        (the loser of a double-spend race).
        """
        removed = 0
        for tx in transactions:
            if self.remove(tx.txid) is not None:
                removed += 1
            for tx_input in tx.inputs:
                conflicting = self._spends.get(tx_input.outpoint)
                if conflicting is not None:
                    self.remove(conflicting)
                    removed += 1
        return removed

    def select_for_block(self, max_bytes: int) -> list[Transaction]:
        """Pick transactions for a block template, respecting dependencies.

        Insertion order already topologically sorts unconfirmed chains
        (a child can only be accepted after its parent), so a linear pass
        suffices.
        """
        selected: list[Transaction] = []
        used = 0
        included: set[bytes] = set()
        for tx in self._transactions.values():
            size = len(tx.serialize())
            if used + size > max_bytes:
                continue
            # Parents must be confirmed or already included.
            depends_ok = all(
                tx_input.outpoint.txid not in self._transactions
                or tx_input.outpoint.txid in included
                for tx_input in tx.inputs
            )
            if not depends_ok:
                continue
            selected.append(tx)
            included.add(tx.txid)
            used += size
        return selected
