"""Checkpoint commitments: regional sub-chains anchored on a settlement chain.

A hierarchical BcWAN federation runs one gateway sub-chain per region and
a single global *settlement chain*.  Every ``checkpoint_interval`` the
region's master commits a **checkpoint transaction** to the settlement
chain: an OP_RETURN output carrying the region id, a monotonically
increasing epoch number, the sub-chain tip (height + hash), and a Merkle
commitment over the transactions the region settled during the epoch.
Cross-region fair exchanges escrow and claim on the paying recipient's
sub-chain; the checkpoint is what lets anyone audit that settlement from
the global chain alone, via a standard Merkle inclusion proof.

Layout:

* payload codec — :func:`build_checkpoint_payload` /
  :func:`parse_checkpoint_payload` / :func:`iter_checkpoints`;
* settlement proofs — :func:`settlement_proof` / :func:`verify_settlement`
  on top of :mod:`repro.blockchain.merkle`;
* anchor-side consensus — :class:`CheckpointRules`, attached to the
  settlement chain's :class:`~repro.blockchain.engine.ValidationEngine`
  (``engine.checkpoint_rules``) so stale or regressing checkpoints are
  rejected at mempool admission *and* block connection;
* chain queries — :func:`latest_checkpoints`, the per-region view an
  auditor (or the chaos convergence oracle) reads off the anchor chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.blockchain.merkle import merkle_branch, verify_branch
from repro.blockchain.transaction import Transaction
from repro.errors import ValidationError
from repro.script.opcodes import OP

__all__ = [
    "CHECKPOINT_MAGIC",
    "EMPTY_EPOCH_ROOT",
    "Checkpoint",
    "CheckpointRules",
    "build_checkpoint_payload",
    "parse_checkpoint_payload",
    "iter_checkpoints",
    "settlement_proof",
    "verify_settlement",
    "latest_checkpoints",
]

CHECKPOINT_MAGIC = b"BCWCP1"

# Committed as the settled-set root of an epoch in which the sub-chain
# confirmed no transactions; no txid can prove membership against it.
EMPTY_EPOCH_ROOT = b"\x00" * 32

_PAYLOAD_LENGTH = len(CHECKPOINT_MAGIC) + 2 + 4 + 4 + 32 + 32 + 4


@dataclass(frozen=True)
class Checkpoint:
    """One decoded sub-chain digest as committed on the anchor chain."""

    region_id: int
    epoch: int
    height: int         # sub-chain height at commit time
    tip_hash: bytes     # sub-chain tip block hash
    settled_root: bytes  # Merkle root over the epoch's settled txids
    tx_count: int       # how many txids the root commits to


def build_checkpoint_payload(region_id: int, epoch: int, height: int,
                             tip_hash: bytes, settled_root: bytes,
                             tx_count: int) -> bytes:
    """Serialize one checkpoint into an OP_RETURN payload."""
    if not 0 <= region_id < 1 << 16:
        raise ValidationError(f"region id out of range: {region_id}")
    if epoch < 0 or height < 0 or tx_count < 0:
        raise ValidationError("checkpoint fields must be non-negative")
    if len(tip_hash) != 32 or len(settled_root) != 32:
        raise ValidationError("checkpoint hashes must be 32 bytes")
    return (CHECKPOINT_MAGIC
            + region_id.to_bytes(2, "big")
            + epoch.to_bytes(4, "big")
            + height.to_bytes(4, "big")
            + tip_hash
            + settled_root
            + tx_count.to_bytes(4, "big"))


def parse_checkpoint_payload(payload: bytes) -> Optional[Checkpoint]:
    """Decode a checkpoint payload.

    Returns ``None`` for payloads that are not checkpoints (no magic);
    raises :class:`ValidationError` for magic-prefixed payloads that are
    malformed — on the anchor chain a broken checkpoint is a consensus
    fault, not something to skip silently.
    """
    if not payload.startswith(CHECKPOINT_MAGIC):
        return None
    if len(payload) != _PAYLOAD_LENGTH:
        raise ValidationError(
            f"malformed checkpoint payload: {len(payload)} bytes, "
            f"expected {_PAYLOAD_LENGTH}"
        )
    offset = len(CHECKPOINT_MAGIC)
    region_id = int.from_bytes(payload[offset:offset + 2], "big")
    epoch = int.from_bytes(payload[offset + 2:offset + 6], "big")
    height = int.from_bytes(payload[offset + 6:offset + 10], "big")
    tip_hash = payload[offset + 10:offset + 42]
    settled_root = payload[offset + 42:offset + 74]
    tx_count = int.from_bytes(payload[offset + 74:offset + 78], "big")
    return Checkpoint(region_id=region_id, epoch=epoch, height=height,
                      tip_hash=tip_hash, settled_root=settled_root,
                      tx_count=tx_count)


def iter_checkpoints(tx: Transaction) -> Iterator[Checkpoint]:
    """Yield every checkpoint committed by ``tx``'s OP_RETURN outputs."""
    for output in tx.outputs:
        elements = output.script_pubkey.elements
        if (len(elements) == 2 and elements[0] == OP.OP_RETURN
                and isinstance(elements[1], bytes)):
            checkpoint = parse_checkpoint_payload(elements[1])
            if checkpoint is not None:
                yield checkpoint


# -- settlement proofs ---------------------------------------------------------

def settlement_proof(txids: list[bytes], txid: bytes) -> tuple[list[bytes], int]:
    """The Merkle branch proving ``txid`` is in an epoch's settled set.

    Returns ``(branch, index)`` for :func:`verify_settlement`.  Raises
    :class:`ValidationError` when the txid was not settled in the epoch.
    """
    try:
        index = txids.index(txid)
    except ValueError:
        raise ValidationError(
            f"transaction {txid.hex()[:16]}.. not in the epoch's settled set"
        ) from None
    return merkle_branch(txids, index), index


def verify_settlement(txid: bytes, branch: list[bytes], index: int,
                      checkpoint: Checkpoint) -> bool:
    """Whether ``txid`` is committed by ``checkpoint``'s settled root."""
    if checkpoint.tx_count == 0:
        return False
    return verify_branch(txid, branch, index, checkpoint.settled_root)


# -- anchor-side consensus ------------------------------------------------------

class CheckpointRules:
    """Monotonicity rules the settlement chain enforces per region.

    A checkpoint is valid only when its epoch strictly increases and its
    sub-chain height never regresses relative to the region's last
    accepted checkpoint.  The rules object is attached to the anchor
    engine (``engine.checkpoint_rules``); the engine consults it at
    mempool admission and while connecting blocks, and commits accepted
    checkpoints atomically with the block.

    Replays are tolerated by txid: the anchor chain is single-producer
    (master-mined, like the paper's PoC), but a failed reorg restores the
    previous branch by re-connecting its blocks, and the re-connected
    checkpoints must not be rejected as regressions.
    """

    def __init__(self) -> None:
        self._latest: dict[int, Checkpoint] = {}
        self._applied_txids: set[bytes] = set()

    def latest(self, region_id: int) -> Optional[Checkpoint]:
        return self._latest.get(region_id)

    def check(self, checkpoint: Checkpoint, txid: bytes,
              pending: Optional[dict[int, Checkpoint]] = None) -> None:
        """Raise :class:`ValidationError` unless ``checkpoint`` advances.

        ``pending`` overlays checkpoints staged earlier in the same block,
        so two same-region checkpoints in one block must still be strictly
        ordered between themselves.
        """
        if txid in self._applied_txids:
            return  # replay of an already-anchored checkpoint (reorg restore)
        reference = None
        if pending is not None:
            reference = pending.get(checkpoint.region_id)
        if reference is None:
            reference = self._latest.get(checkpoint.region_id)
        if reference is None:
            return
        if checkpoint.epoch <= reference.epoch:
            raise ValidationError(
                f"stale checkpoint for region {checkpoint.region_id}: "
                f"epoch {checkpoint.epoch} <= anchored epoch "
                f"{reference.epoch}"
            )
        if checkpoint.height < reference.height:
            raise ValidationError(
                f"checkpoint height regression for region "
                f"{checkpoint.region_id}: {checkpoint.height} < "
                f"{reference.height}"
            )

    def stage(self, checkpoint: Checkpoint, txid: bytes,
              pending: dict[int, Checkpoint]) -> None:
        """Validate against committed + staged state, then stage."""
        self.check(checkpoint, txid, pending)
        if txid not in self._applied_txids:
            pending[checkpoint.region_id] = checkpoint

    def apply(self, pending: dict[int, Checkpoint],
              txids: list[bytes]) -> None:
        """Commit a connected block's staged checkpoints."""
        self._latest.update(pending)
        self._applied_txids.update(txids)


# -- chain queries --------------------------------------------------------------

def latest_checkpoints(chain) -> dict[int, Checkpoint]:
    """The newest anchored checkpoint per region, read off the chain.

    Walks the active chain, so the result reflects exactly what the
    anchor's consensus accepted — the auditor's view, independent of any
    engine-internal state.
    """
    latest: dict[int, Checkpoint] = {}
    for _height, block in chain.iter_active_blocks(start_height=1):
        for tx in block.transactions:
            for checkpoint in iter_checkpoints(tx):
                current = latest.get(checkpoint.region_id)
                if current is None or checkpoint.epoch > current.epoch:
                    latest[checkpoint.region_id] = checkpoint
    return latest
