"""Proof-of-stake block production — the paper's §6 future-work item.

"The Proof-of-Work is not suitable for edge nodes to run the blockchain
as this is a computational power based method of election.  Other methods
such as Proof-of-stake do not rely on computational power and thus can
help to further close the gap of the blockchain to the edge nodes."

This module implements a simple, deterministic slot-lottery PoS in the
Ouroboros spirit (the paper cites Kiayias et al.):

* time is divided into fixed *slots* (one potential block per slot);
* each slot has a leader drawn from the registered stakeholders with
  probability proportional to stake;
* the draw is deterministic: a follow-the-stake walk over
  ``H(epoch_seed ‖ slot)``, so every node computes the same leader with
  no communication and no work;
* a block is only valid in its slot if signed by that slot's leader
  (checked by :meth:`StakeRegistry.verify_block_signature`).

Fork choice stays longest-chain; with honest leaders and synchronized
slots there is at most one block per slot, so forks only arise from
equivocation — which the gossip layer surfaces as a reorg, exactly like
the PoW path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.block import Block
from repro.blockchain.chain import Chain
from repro.blockchain.mempool import Mempool
from repro.blockchain.miner import Miner
from repro.crypto import ecdsa
from repro.crypto.hashing import sha256
from repro.errors import ConfigurationError, ValidationError

__all__ = ["StakeRegistry", "PoSProducer", "slot_of"]


def slot_of(timestamp: float, slot_duration: float) -> int:
    """The slot index a timestamp falls in."""
    if slot_duration <= 0:
        raise ConfigurationError(f"slot duration must be positive: {slot_duration}")
    return int(timestamp // slot_duration)


@dataclass
class StakeRegistry:
    """The stake distribution and the slot-leader lottery.

    Stakeholders register a (name, ECDSA public key, stake) triple; the
    registry is identical on every node (in a production system it would
    be derived from chain state; here it is bootstrap configuration, like
    Multichain's permissioned miner list).
    """

    epoch_seed: bytes = b"bcwan-pos-epoch-0"
    slot_duration: float = 15.0
    _stakes: dict[str, int] = field(default_factory=dict)
    _pubkeys: dict[str, ecdsa.PublicKey] = field(default_factory=dict)

    def register(self, name: str, pubkey: ecdsa.PublicKey, stake: int) -> None:
        if stake <= 0:
            raise ConfigurationError(f"stake must be positive: {stake}")
        if name in self._stakes:
            raise ConfigurationError(f"stakeholder already registered: {name}")
        self._stakes[name] = stake
        self._pubkeys[name] = pubkey

    @property
    def total_stake(self) -> int:
        return sum(self._stakes.values())

    def stake_of(self, name: str) -> int:
        return self._stakes.get(name, 0)

    def stakeholders(self) -> list[str]:
        return sorted(self._stakes)

    def leader_for_slot(self, slot: int) -> str:
        """Deterministic follow-the-stake leader election for ``slot``."""
        if not self._stakes:
            raise ConfigurationError("no stakeholders registered")
        digest = sha256(self.epoch_seed + slot.to_bytes(8, "big"))
        ticket = int.from_bytes(digest, "big") % self.total_stake
        for name in sorted(self._stakes):
            ticket -= self._stakes[name]
            if ticket < 0:
                return name
        raise AssertionError("unreachable: ticket below total stake")

    def leader_for_time(self, timestamp: float) -> str:
        return self.leader_for_slot(slot_of(timestamp, self.slot_duration))

    # -- block endorsement -----------------------------------------------------

    def sign_block(self, block: Block,
                   private_key: ecdsa.PrivateKey) -> bytes:
        """A leader's endorsement over the block hash."""
        return private_key.sign(block.hash).to_bytes()

    def verify_block_signature(self, block: Block, producer: str,
                               signature: bytes) -> bool:
        """Check that ``block`` was endorsed by its slot's rightful leader."""
        slot = slot_of(block.header.timestamp, self.slot_duration)
        if self.leader_for_slot(slot) != producer:
            return False
        pubkey = self._pubkeys.get(producer)
        if pubkey is None:
            return False
        try:
            parsed = ecdsa.Signature.from_bytes(signature)
        except ecdsa.ECDSAError:
            return False
        return pubkey.verify(block.hash, parsed)


@dataclass
class PoSProducer:
    """One stakeholder's block-production role.

    Wraps the ordinary :class:`Miner` for template assembly, but only
    produces when this stakeholder leads the current slot — no nonce
    grinding anywhere (set ``pow_bits=0`` in the chain params).
    """

    name: str
    registry: StakeRegistry
    chain: Chain
    mempool: Mempool
    private_key: ecdsa.PrivateKey
    reward_pubkey_hash: bytes

    def __post_init__(self) -> None:
        if self.registry.stake_of(self.name) <= 0:
            raise ConfigurationError(
                f"{self.name} holds no stake; cannot produce blocks"
            )
        self._miner = Miner(chain=self.chain, mempool=self.mempool,
                            reward_pubkey_hash=self.reward_pubkey_hash)

    def is_leader(self, timestamp: float) -> bool:
        return self.registry.leader_for_time(timestamp) == self.name

    def try_produce(self, timestamp: float) -> Optional[tuple[Block, bytes]]:
        """Produce and locally connect a block if we lead this slot.

        Returns ``(block, endorsement_signature)`` or None when another
        stakeholder leads the slot.
        """
        if not self.is_leader(timestamp):
            return None
        block = self._miner.build_template(timestamp)
        if not block.header.meets_target(self.chain.params.pow_bits):
            raise ValidationError(
                "PoS chains must run with pow_bits=0 (no grinding)"
            )
        signature = self.registry.sign_block(block, self.private_key)
        self.chain.add_block(block)
        self.mempool.remove_confirmed(block.transactions)
        return block, signature
