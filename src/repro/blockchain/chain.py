"""Chain state: block storage, fork choice, and reorganization.

Fork choice is cumulative work (with constant per-block work this reduces
to longest-chain, first-seen-wins on ties), matching Bitcoin/Multichain.
The UTXO set always reflects the active tip; side-chain blocks are stored
and can trigger a reorg when their branch overtakes the active one — the
mechanism behind the double-spend attack the paper's section 6 discusses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.blockchain.block import Block
from repro.blockchain.params import ChainParams
from repro.blockchain.transaction import (
    COINBASE_OUTPOINT,
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from repro.blockchain.engine import ValidationEngine, ValidationReport
from repro.blockchain.utxo import JournaledUTXOSet, UTXOEntry, UTXOSet
from repro.errors import ConfigurationError, ValidationError
from repro.script.builder import op_return
from repro.script.script import Script

__all__ = ["Chain", "BlockRecord", "create_genesis_block", "AddBlockResult"]

GENESIS_TAG = b"BcWAN genesis: no core network, no trusted third party"


def create_genesis_block(params: ChainParams) -> Block:
    """The deterministic genesis block shared by all nodes of a chain."""
    coinbase = Transaction(
        inputs=[TxInput(outpoint=COINBASE_OUTPOINT,
                        script_sig=Script([GENESIS_TAG]))],
        outputs=[TxOutput(value=0, script_pubkey=op_return(GENESIS_TAG))],
    )
    return Block.assemble(prev_hash=b"\x00" * 32, timestamp=0.0,
                          transactions=[coinbase])


@dataclass
class BlockRecord:
    """A stored block with its chain position metadata."""

    block: Block
    height: int
    total_work: int
    # Per-transaction undo data; populated while the block is on the
    # active chain, None for side-chain blocks.
    undo: Optional[list[dict[OutPoint, UTXOEntry]]] = None
    # Journal position *before* this block's UTXO mutations — rewinding
    # to it disconnects the block in O(changes).  Only set while the
    # block is active on a journaled store.
    journal_mark: Optional[int] = None

    @property
    def hash(self) -> bytes:
        return self.block.hash


@dataclass(frozen=True)
class AddBlockResult:
    """Outcome of :meth:`Chain.add_block` / one :meth:`Chain.add_blocks` item.

    ``status`` is one of ``"active"``, ``"side"``, ``"duplicate"``,
    ``"orphan"``, or — from :meth:`Chain.add_blocks` only, which reports
    instead of raising — ``"invalid"`` with ``reason`` carrying the
    :class:`ValidationError` message.
    """

    status: str
    reorged: bool = False
    disconnected: tuple[bytes, ...] = ()
    connected: tuple[bytes, ...] = ()
    reason: str = ""


class Chain:
    """The validated chain of one node."""

    def __init__(self, params: Optional[ChainParams] = None,
                 verify_scripts: Optional[bool] = None,
                 utxo_store: str = "dict") -> None:
        self.params = params or ChainParams()
        # The staged validation pipeline plus its script cache; whether
        # connecting blocks re-runs scripts defaults to the chain params'
        # verify_blocks flag (the Fig. 5 / Fig. 6 toggle).
        self.engine = ValidationEngine(self.params,
                                       verify_scripts=verify_scripts)
        self.last_report: Optional[ValidationReport] = None
        # "dict" is the plain mapping; "journal" adds an append-only undo
        # log (JournaledUTXOSet) so reorg disconnects rewind in
        # O(changes) instead of replaying per-transaction undo records.
        # Both stores hold identical mappings at every height.
        if utxo_store == "dict":
            self.utxos: UTXOSet = UTXOSet()
        elif utxo_store == "journal":
            self.utxos = JournaledUTXOSet()
        else:
            raise ConfigurationError(
                f"unknown utxo_store {utxo_store!r} "
                f"(expected 'dict' or 'journal')"
            )
        self.utxo_store = utxo_store
        self._journaled = utxo_store == "journal"
        self._records: dict[bytes, BlockRecord] = {}
        self._active: list[bytes] = []
        # Blocks whose parent we have not seen yet, keyed by parent hash.
        self._orphans: dict[bytes, list[Block]] = {}
        self._listeners: list[Callable[[Block, int], None]] = []

        genesis = create_genesis_block(self.params)
        record = BlockRecord(block=genesis, height=0, total_work=1, undo=[])
        self._records[genesis.hash] = record
        self._active.append(genesis.hash)
        # Genesis coinbase output is an OP_RETURN: deliberately not added
        # to the UTXO set (unspendable).

    # -- inspection -----------------------------------------------------------

    @property
    def verify_scripts(self) -> bool:
        """Whether block connection re-runs scripts (engine-owned flag)."""
        return self.engine.verify_scripts

    @verify_scripts.setter
    def verify_scripts(self, value: bool) -> None:
        self.engine.verify_scripts = value

    @property
    def height(self) -> int:
        return len(self._active) - 1

    @property
    def tip(self) -> BlockRecord:
        return self._records[self._active[-1]]

    @property
    def genesis(self) -> Block:
        return self._records[self._active[0]].block

    def block_at(self, height: int) -> Optional[Block]:
        if not 0 <= height < len(self._active):
            return None
        return self._records[self._active[height]].block

    def record_for(self, block_hash: bytes) -> Optional[BlockRecord]:
        return self._records.get(block_hash)

    def contains(self, block_hash: bytes) -> bool:
        return block_hash in self._records

    def is_active(self, block_hash: bytes) -> bool:
        record = self._records.get(block_hash)
        if record is None:
            return False
        return (record.height < len(self._active)
                and self._active[record.height] == block_hash)

    def confirmations(self, txid: bytes) -> int:
        """How many blocks deep a transaction is (0 = unconfirmed)."""
        for height in range(len(self._active) - 1, -1, -1):
            block = self._records[self._active[height]].block
            if any(tx.txid == txid for tx in block.transactions):
                return len(self._active) - height
        return 0

    def find_transaction(self, txid: bytes) -> Optional[tuple[Transaction, int]]:
        """Locate a transaction on the active chain; returns (tx, height)."""
        for height in range(len(self._active) - 1, -1, -1):
            block = self._records[self._active[height]].block
            for tx in block.transactions:
                if tx.txid == txid:
                    return tx, height
        return None

    def iter_active_blocks(self, start_height: int = 0):
        """Yield ``(height, block)`` along the active chain."""
        for height in range(start_height, len(self._active)):
            yield height, self._records[self._active[height]].block

    def add_connect_listener(self, listener: Callable[[Block, int], None]) -> None:
        """Register a callback invoked for each block connected to the tip."""
        self._listeners.append(listener)

    # -- mutation --------------------------------------------------------------

    def add_block(self, block: Block) -> AddBlockResult:
        """Validate and store ``block``, reorganizing if it wins fork choice.

        Raises :class:`ValidationError` only for blocks that are provably
        invalid; unknown-parent blocks are held as orphans and connected
        when the parent arrives.
        """
        if block.hash in self._records:
            return AddBlockResult(status="duplicate")
        parent = self._records.get(block.header.prev_hash)
        if parent is None:
            self._orphans.setdefault(block.header.prev_hash, []).append(block)
            return AddBlockResult(status="orphan")

        result = self._attach(block, parent)
        # Any orphans waiting for this block can now be attached.
        final = result
        pending = self._orphans.pop(block.hash, [])
        while pending:
            child = pending.pop()
            child_parent = self._records.get(child.header.prev_hash)
            if child_parent is None:  # pragma: no cover - defensive
                continue
            try:
                child_result = self._attach(child, child_parent)
            except ValidationError:
                continue
            if child_result.status == "active":
                final = AddBlockResult(
                    status="active",
                    reorged=final.reorged or child_result.reorged,
                    disconnected=final.disconnected + child_result.disconnected,
                    connected=final.connected + child_result.connected,
                )
            pending.extend(self._orphans.pop(child.hash, []))
        return final

    def add_blocks(self, blocks: list[Block]) -> list[AddBlockResult]:
        """Add a batch of blocks; returns one result per block, in order.

        Behaviourally identical to calling :meth:`add_block` per block
        with :class:`ValidationError` caught into an ``"invalid"``
        result — verdicts, error strings, UTXO state, and notifications
        all match — but a contiguous tip-extending run goes through the
        pipelined driver: block N+1's contextual walk (and its script
        dispatch, when a :class:`~repro.parallel.VerifyPool` is
        attached) overlaps block N's script settlement.  After an
        invalid block the rest of the run is stashed as orphans, exactly
        as the sequential path would leave them.
        """
        blocks = list(blocks)
        if not self._can_pipeline(blocks):
            results = []
            for block in blocks:
                try:
                    results.append(self.add_block(block))
                except ValidationError as exc:
                    results.append(AddBlockResult(status="invalid",
                                                  reason=str(exc)))
            return results
        return self._add_blocks_pipelined(blocks)

    def _can_pipeline(self, blocks: list[Block]) -> bool:
        """Whether ``blocks`` is a clean tip-extending run.

        The pipelined driver handles only the common sync shape: two or
        more new, contiguous blocks extending the current tip, with no
        orphans waiting (their resolution interleaves arbitrarily) and
        no checkpoint rules (whose block-scoped staging is ordered
        against the commit).  Everything else falls back to the
        sequential path.
        """
        if len(blocks) < 2 or self.engine.checkpoint_rules is not None:
            return False
        if self._orphans:
            return False
        prev = self._active[-1]
        seen = set()
        for block in blocks:
            if block.header.prev_hash != prev:
                return False
            if block.hash in self._records or block.hash in seen:
                return False
            seen.add(block.hash)
            prev = block.hash
        return True

    def _add_blocks_pipelined(self, blocks: list[Block]) -> list[AddBlockResult]:
        results: list[AddBlockResult] = []
        work = 1 << self.params.pow_bits
        parent = self.tip
        base = self.utxos
        outstanding = None  # (record, PendingConnect) for blocks[i-1]
        failed = False
        for block in blocks:
            if failed:
                # Sequential semantics after an invalid block: the parent
                # was never recorded, so the rest of the run is orphaned.
                self._orphans.setdefault(block.header.prev_hash,
                                         []).append(block)
                results.append(AddBlockResult(status="orphan"))
                continue
            try:
                self.engine.check_block(block, parent.height)
                pending = self.engine.begin_connect(block, base,
                                                    parent.height + 1)
            except ValidationError as exc:
                if outstanding is not None:
                    settled = self._settle_pending(outstanding, results)
                    outstanding = None
                    if not settled:
                        failed = True
                        self._orphans.setdefault(block.header.prev_hash,
                                                 []).append(block)
                        results.append(AddBlockResult(status="orphan"))
                        continue
                results.append(AddBlockResult(status="invalid",
                                              reason=str(exc)))
                failed = True
                continue
            if outstanding is not None:
                settled = self._settle_pending(outstanding, results)
                outstanding = None
                if not settled:
                    # This block's overlay was stacked on a discarded
                    # view; its parent never connected, so it orphans.
                    failed = True
                    self._orphans.setdefault(block.header.prev_hash,
                                             []).append(block)
                    results.append(AddBlockResult(status="orphan"))
                    continue
                # The settled delta now lives in the real set; reads and
                # the eventual commit go straight through.
                pending.view.rebase(self.utxos)
            record = BlockRecord(block=block, height=parent.height + 1,
                                 total_work=parent.total_work + work)
            outstanding = (record, pending)
            base = pending.view
            parent = record
        if outstanding is not None:
            self._settle_pending(outstanding, results)
        return results

    def _settle_pending(self, outstanding, results: list[AddBlockResult]) -> bool:
        """Finish one pipelined connect: flush scripts, commit, record.

        Appends the block's result (``"active"`` or ``"invalid"``) and
        returns whether it connected.
        """
        record, pending = outstanding
        try:
            if self._journaled:
                record.journal_mark = self.utxos.mark()
            report = self.engine.finish_connect(pending)
        except ValidationError as exc:
            record.journal_mark = None
            results.append(AddBlockResult(status="invalid", reason=str(exc)))
            return False
        self.last_report = report
        record.undo = [dict(spent) for spent in report.undo]
        self._records[record.hash] = record
        self._active.append(record.hash)
        self._notify(record.block, record.height)
        results.append(AddBlockResult(status="active",
                                      connected=(record.hash,)))
        return True

    def _attach(self, block: Block, parent: BlockRecord) -> AddBlockResult:
        self.engine.check_block(block, parent.height)
        work = 1 << self.params.pow_bits
        record = BlockRecord(block=block, height=parent.height + 1,
                             total_work=parent.total_work + work)

        extends_tip = parent.hash == self._active[-1]
        if extends_tip:
            if self._journaled:
                record.journal_mark = self.utxos.mark()
            report = self.engine.connect_block(block, self.utxos,
                                               record.height)
            self.last_report = report
            record.undo = [dict(spent) for spent in report.undo]
            self._records[block.hash] = record
            self._active.append(block.hash)
            self._notify(block, record.height)
            return AddBlockResult(status="active", connected=(block.hash,))

        self._records[block.hash] = record
        if record.total_work > self.tip.total_work:
            return self._reorganize(record)
        return AddBlockResult(status="side")

    def _reorganize(self, new_tip: BlockRecord) -> AddBlockResult:
        """Switch the active chain to the branch ending at ``new_tip``."""
        # Collect the new branch back to the fork point.
        branch: list[BlockRecord] = []
        cursor: Optional[BlockRecord] = new_tip
        while cursor is not None and not self.is_active(cursor.hash):
            branch.append(cursor)
            cursor = self._records.get(cursor.block.header.prev_hash)
        if cursor is None:
            raise ValidationError("side branch does not connect to the chain")
        branch.reverse()
        fork_height = cursor.height

        # Disconnect active blocks above the fork point.  On a journaled
        # store the whole branch disconnects as one journal rewind (to
        # the deepest disconnected block's pre-connect mark); the dict
        # store replays per-transaction undo records.
        disconnected: list[bytes] = []
        rollback: list[BlockRecord] = []
        fork_mark: Optional[int] = None
        while len(self._active) - 1 > fork_height:
            tip_record = self._records[self._active.pop()]
            if self._journaled:
                fork_mark = tip_record.journal_mark
                tip_record.journal_mark = None
            else:
                assert tip_record.undo is not None
                for tx, spent in zip(reversed(tip_record.block.transactions),
                                     reversed(tip_record.undo)):
                    self.utxos.undo_transaction(tx, spent)
            tip_record.undo = None
            disconnected.append(tip_record.hash)
            rollback.append(tip_record)
        if self._journaled and fork_mark is not None:
            self.utxos.rewind(fork_mark)

        # Connect the new branch; on failure restore the old chain.
        branch_mark = self.utxos.mark() if self._journaled else None
        connected: list[bytes] = []
        try:
            for record in branch:
                if self._journaled:
                    record.journal_mark = self.utxos.mark()
                report = self.engine.connect_block(record.block, self.utxos,
                                                   record.height)
                self.last_report = report
                record.undo = [dict(spent) for spent in report.undo]
                self._active.append(record.hash)
                connected.append(record.hash)
        except ValidationError:
            # Roll back whatever connected, then restore the old branch.
            if self._journaled:
                self.utxos.rewind(branch_mark)
                for block_hash in reversed(connected):
                    failed = self._records[block_hash]
                    failed.undo = None
                    failed.journal_mark = None
                    self._active.pop()
            else:
                for block_hash in reversed(connected):
                    failed = self._records[block_hash]
                    assert failed.undo is not None
                    for tx, spent in zip(reversed(failed.block.transactions),
                                         reversed(failed.undo)):
                        self.utxos.undo_transaction(tx, spent)
                    failed.undo = None
                    self._active.pop()
            for record in reversed(rollback):
                if self._journaled:
                    record.journal_mark = self.utxos.mark()
                report = self.engine.connect_block(
                    record.block, self.utxos, record.height,
                    verify_scripts=False,  # previously validated
                )
                record.undo = [dict(spent) for spent in report.undo]
                self._active.append(record.hash)
            raise

        for record in branch:
            self._notify(record.block, record.height)
        return AddBlockResult(
            status="active", reorged=True,
            disconnected=tuple(disconnected), connected=tuple(connected),
        )

    def _notify(self, block: Block, height: int) -> None:
        for listener in self._listeners:
            listener(block, height)
