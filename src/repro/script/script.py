"""The :class:`Script` container: a parsed sequence of opcodes and pushes.

Scripts serialize to the Bitcoin wire format (direct pushes for 1-75 bytes,
``OP_PUSHDATA1/2/4`` beyond) so transaction hashes are stable, and parse
back into a list of :class:`ScriptElement` for the interpreter.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.script.errors import SerializationError
from repro.script.opcodes import OP, opcode_name

__all__ = ["Script", "ScriptElement", "encode_number", "decode_number"]

# An element is either an opcode (int / OP) or a data push (bytes).
ScriptElement = Union[int, bytes]

_MAX_SCRIPT_SIZE = 10_000
_MAX_PUSH_SIZE = 520


def encode_number(value: int) -> bytes:
    """Encode an integer as a minimal Bitcoin CScriptNum byte string."""
    if value == 0:
        return b""
    negative = value < 0
    magnitude = abs(value)
    result = bytearray()
    while magnitude:
        result.append(magnitude & 0xFF)
        magnitude >>= 8
    # If the top bit of the most significant byte is set, we need an extra
    # byte to carry the sign, otherwise the sign lives in that top bit.
    if result[-1] & 0x80:
        result.append(0x80 if negative else 0x00)
    elif negative:
        result[-1] |= 0x80
    return bytes(result)


def decode_number(data: bytes, max_size: int = 5) -> int:
    """Decode a CScriptNum byte string (little-endian, sign-magnitude)."""
    if len(data) > max_size:
        raise SerializationError(
            f"script number overflow: {len(data)} > {max_size} bytes"
        )
    if not data:
        return 0
    value = int.from_bytes(data, "little")
    if data[-1] & 0x80:
        value &= (1 << (len(data) * 8 - 1)) - 1
        return -value
    return value


@dataclass(frozen=True)
class Script:
    """An immutable script: a tuple of opcodes and byte pushes.

    Construct from elements (``Script([OP.OP_DUP, pubkey_hash, ...])``) or
    parse wire bytes with :meth:`from_bytes`.  Integers outside the opcode
    range are not accepted as elements — push numbers as
    ``encode_number(n)`` byte strings or via :meth:`push_int`.
    """

    elements: tuple[ScriptElement, ...] = field(default_factory=tuple)

    def __init__(self, elements: Iterable[ScriptElement] = ()) -> None:
        normalized: list[ScriptElement] = []
        for element in elements:
            if isinstance(element, (bytes, bytearray, memoryview)):
                data = bytes(element)
                if len(data) > _MAX_PUSH_SIZE:
                    raise SerializationError(
                        f"push too large: {len(data)} > {_MAX_PUSH_SIZE} bytes"
                    )
                normalized.append(data)
            elif isinstance(element, int):
                if not 0 <= element <= 0xFF:
                    raise SerializationError(f"invalid opcode value: {element}")
                normalized.append(int(element))
            else:
                raise SerializationError(
                    f"script element must be bytes or opcode, got "
                    f"{type(element).__name__}"
                )
        object.__setattr__(self, "elements", tuple(normalized))

    @staticmethod
    def push_int(value: int) -> ScriptElement:
        """The canonical element that pushes integer ``value``."""
        if value == 0:
            return int(OP.OP_0)
        if 1 <= value <= 16:
            return int(OP.OP_1) + value - 1
        if value == -1:
            return int(OP.OP_1NEGATE)
        return encode_number(value)

    def to_bytes(self) -> bytes:
        """Serialize to the Bitcoin wire format."""
        out = bytearray()
        for element in self.elements:
            if isinstance(element, bytes):
                length = len(element)
                if length == 0:
                    out.append(OP.OP_0)
                elif length <= 75:
                    out.append(length)
                    out += element
                elif length <= 0xFF:
                    out.append(OP.OP_PUSHDATA1)
                    out.append(length)
                    out += element
                else:
                    out.append(OP.OP_PUSHDATA2)
                    out += struct.pack("<H", length)
                    out += element
            else:
                out.append(element)
        if len(out) > _MAX_SCRIPT_SIZE:
            raise SerializationError(
                f"script too large: {len(out)} > {_MAX_SCRIPT_SIZE} bytes"
            )
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Script":
        """Parse wire bytes back into a script."""
        if len(data) > _MAX_SCRIPT_SIZE:
            raise SerializationError(
                f"script too large: {len(data)} > {_MAX_SCRIPT_SIZE} bytes"
            )
        elements: list[ScriptElement] = []
        i = 0
        while i < len(data):
            opcode = data[i]
            i += 1
            if opcode == OP.OP_0:
                elements.append(b"")
            elif 1 <= opcode <= 75:
                elements.append(cls._take(data, i, opcode))
                i += opcode
            elif opcode == OP.OP_PUSHDATA1:
                if i >= len(data):
                    raise SerializationError("truncated OP_PUSHDATA1 length")
                length = data[i]
                i += 1
                elements.append(cls._take(data, i, length))
                i += length
            elif opcode == OP.OP_PUSHDATA2:
                if i + 2 > len(data):
                    raise SerializationError("truncated OP_PUSHDATA2 length")
                length = struct.unpack_from("<H", data, i)[0]
                i += 2
                elements.append(cls._take(data, i, length))
                i += length
            elif opcode == OP.OP_PUSHDATA4:
                raise SerializationError("OP_PUSHDATA4 pushes exceed limits")
            else:
                elements.append(opcode)
        return cls(elements)

    @staticmethod
    def _take(data: bytes, offset: int, length: int) -> bytes:
        if offset + length > len(data):
            raise SerializationError(
                f"push of {length} bytes runs past end of script"
            )
        if length > _MAX_PUSH_SIZE:
            raise SerializationError(
                f"push too large: {length} > {_MAX_PUSH_SIZE} bytes"
            )
        return data[offset:offset + length]

    def __add__(self, other: "Script") -> "Script":
        return Script(self.elements + other.elements)

    def __len__(self) -> int:
        return len(self.elements)

    def disassemble(self) -> str:
        """Readable one-line form, e.g. ``OP_DUP OP_HASH160 <20:ab..> ...``."""
        parts = []
        for element in self.elements:
            if isinstance(element, bytes):
                preview = element.hex()
                if len(preview) > 16:
                    preview = preview[:16] + ".."
                parts.append(f"<{len(element)}:{preview}>")
            else:
                parts.append(opcode_name(element))
        return " ".join(parts)
