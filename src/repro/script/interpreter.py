"""The BcWAN script interpreter.

Executes the unlocking script (scriptSig) then the locking script
(scriptPubKey) over a shared stack, Bitcoin style.  Signature and locktime
checks are delegated to an :class:`ExecutionContext` supplied by the
blockchain layer, which knows the spending transaction; this keeps the
interpreter a pure stack machine.

The custom ``OP_CHECKRSA512PAIR`` (paper Listing 1) pops a serialized RSA
public key and a serialized RSA private key and pushes whether they form a
matching pair — the mechanism that forces a gateway to *reveal* the
ephemeral private key on-chain in order to collect its payment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Protocol

from repro.crypto import rsa
from repro.crypto.hashing import double_sha256, sha256
from repro.crypto.ripemd160 import ripemd160
from repro.crypto.hashing import hash160
from repro.script.errors import EvaluationError, ScriptError
from repro.script.opcodes import OP, opcode_name
from repro.script.script import Script, decode_number, encode_number

__all__ = [
    "ExecutionContext",
    "MAX_OPS",
    "MAX_STACK_SIZE",
    "NullContext",
    "ScriptInterpreter",
    "verify_spend",
]

MAX_STACK_SIZE = 1_000
MAX_OPS = 201
_LOCKTIME_THRESHOLD = 500_000_000  # below: block height; above: unix time

# Backwards-compatible aliases (the static analyzer and external tooling use
# the public names above).
_MAX_STACK_SIZE = MAX_STACK_SIZE
_MAX_OPS = MAX_OPS


class ExecutionContext(Protocol):
    """What the interpreter needs to know about the spending transaction."""

    def check_ecdsa_signature(self, pubkey: bytes, signature: bytes) -> bool:
        """Verify ``signature`` over this transaction's sighash."""
        ...

    def check_locktime(self, required: int) -> bool:
        """BIP-65: can this spend satisfy a locktime requirement?"""
        ...


class NullContext:
    """Context for standalone script evaluation (tests, tooling).

    Signature checks fail and locktime checks fail, so scripts exercising
    those opcodes must be run under a real transaction context.
    """

    def check_ecdsa_signature(self, pubkey: bytes, signature: bytes) -> bool:
        return False

    def check_locktime(self, required: int) -> bool:
        return False


def _as_bool(item: bytes) -> bool:
    """Bitcoin truthiness: empty and negative-zero byte strings are false."""
    for i, byte in enumerate(item):
        if byte != 0:
            # Negative zero: sign byte only, in the last position.
            if i == len(item) - 1 and byte == 0x80:
                return False
            return True
    return False


def _bool_bytes(value: bool) -> bytes:
    return b"\x01" if value else b""


@dataclass
class ScriptInterpreter:
    """Evaluates scripts against an execution context.

    The interpreter is stateless between :meth:`evaluate` calls; a fresh
    stack is created per script pair.
    """

    context: ExecutionContext = field(default_factory=NullContext)
    rsa_pair_check: Callable[[bytes, bytes], bool] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.rsa_pair_check is None:
            self.rsa_pair_check = _default_rsa_pair_check

    # -- public API ---------------------------------------------------------

    def verify(self, unlocking: Script, locking: Script) -> bool:
        """Run ``unlocking`` then ``locking``; True iff the spend is valid."""
        try:
            stack = self.evaluate(unlocking, [])
            stack = self.evaluate(locking, stack)
        except EvaluationError:
            return False
        return bool(stack) and _as_bool(stack[-1])

    def evaluate(self, script: Script,
                 initial_stack: Optional[list[bytes]] = None) -> list[bytes]:
        """Execute one script over ``initial_stack``; returns the stack.

        Raises :class:`EvaluationError` on any rule violation.
        """
        stack: list[bytes] = list(initial_stack or [])
        alt_stack: list[bytes] = []
        # Each entry: are we currently in an executing branch?
        condition_stack: list[bool] = []
        op_count = 0

        for element in script.elements:
            executing = all(condition_stack)

            if isinstance(element, bytes):
                # Data pushes never consume op budget, however many there
                # are — only real operators count toward MAX_OPS.
                if executing:
                    stack.append(element)
                    self._check_stack(stack, alt_stack)
                continue

            opcode = element
            if opcode > OP.OP_16:
                op_count += 1
                if op_count > MAX_OPS:
                    raise EvaluationError(f"too many opcodes (> {MAX_OPS})")

            # Flow control runs even in non-executing branches.
            if opcode in (OP.OP_IF, OP.OP_NOTIF):
                taken = False
                if executing:
                    taken = _as_bool(self._pop(stack, opcode_name(opcode)))
                    if opcode == OP.OP_NOTIF:
                        taken = not taken
                condition_stack.append(taken)
                continue
            if opcode == OP.OP_ELSE:
                if not condition_stack:
                    raise EvaluationError("OP_ELSE without OP_IF")
                condition_stack[-1] = not condition_stack[-1]
                continue
            if opcode == OP.OP_ENDIF:
                if not condition_stack:
                    raise EvaluationError("OP_ENDIF without OP_IF")
                condition_stack.pop()
                continue

            if not executing:
                continue

            extra_ops = self._execute_opcode(opcode, stack, alt_stack)
            if extra_ops:
                # OP_CHECKMULTISIG bills one op per public key inspected
                # (Bitcoin's nOpCount += nKeysCount) so a 20-key multisig
                # cannot smuggle 20 signature checks for one op.
                op_count += extra_ops
                if op_count > MAX_OPS:
                    raise EvaluationError(f"too many opcodes (> {MAX_OPS})")
            self._check_stack(stack, alt_stack)

        if condition_stack:
            raise EvaluationError("unbalanced OP_IF/OP_ENDIF")
        return stack

    # -- opcode dispatch ----------------------------------------------------

    def _execute_opcode(self, opcode: int, stack: list[bytes],
                        alt_stack: list[bytes]) -> int:
        """Run one opcode; returns extra op-budget consumed (multisig keys)."""
        if opcode == OP.OP_0:
            stack.append(b"")
        elif opcode == OP.OP_1NEGATE:
            stack.append(encode_number(-1))
        elif OP.OP_1 <= opcode <= OP.OP_16:
            stack.append(encode_number(opcode - OP.OP_1 + 1))
        elif opcode == OP.OP_NOP:
            pass
        elif opcode == OP.OP_VERIFY:
            if not _as_bool(self._pop(stack, "OP_VERIFY")):
                raise EvaluationError("OP_VERIFY failed")
        elif opcode == OP.OP_RETURN:
            raise EvaluationError("OP_RETURN makes output unspendable")
        elif opcode == OP.OP_TOALTSTACK:
            alt_stack.append(self._pop(stack, "OP_TOALTSTACK"))
        elif opcode == OP.OP_FROMALTSTACK:
            if not alt_stack:
                raise EvaluationError(
                    "altstack underflow: OP_FROMALTSTACK needs 1 item, have 0"
                )
            stack.append(alt_stack.pop())
        elif opcode == OP.OP_2DROP:
            self._need(stack, 2, "OP_2DROP")
            del stack[-2:]
        elif opcode == OP.OP_2DUP:
            self._need(stack, 2, "OP_2DUP")
            stack.extend(stack[-2:])
        elif opcode == OP.OP_3DUP:
            self._need(stack, 3, "OP_3DUP")
            stack.extend(stack[-3:])
        elif opcode == OP.OP_2OVER:
            self._need(stack, 4, "OP_2OVER")
            stack.extend(stack[-4:-2])
        elif opcode == OP.OP_2ROT:
            self._need(stack, 6, "OP_2ROT")
            moved = stack[-6:-4]
            del stack[-6:-4]
            stack.extend(moved)
        elif opcode == OP.OP_2SWAP:
            self._need(stack, 4, "OP_2SWAP")
            stack[-4:] = stack[-2:] + stack[-4:-2]
        elif opcode == OP.OP_IFDUP:
            self._need(stack, 1, "OP_IFDUP")
            if _as_bool(stack[-1]):
                stack.append(stack[-1])
        elif opcode == OP.OP_DEPTH:
            stack.append(encode_number(len(stack)))
        elif opcode == OP.OP_DROP:
            self._pop(stack, "OP_DROP")
        elif opcode == OP.OP_DUP:
            self._need(stack, 1, "OP_DUP")
            stack.append(stack[-1])
        elif opcode == OP.OP_NIP:
            self._need(stack, 2, "OP_NIP")
            del stack[-2]
        elif opcode == OP.OP_OVER:
            self._need(stack, 2, "OP_OVER")
            stack.append(stack[-2])
        elif opcode in (OP.OP_PICK, OP.OP_ROLL):
            index = self._pop_number(stack, opcode_name(opcode))
            if index < 0:
                raise EvaluationError(
                    f"{opcode_name(opcode)} negative index {index}"
                )
            self._need(stack, index + 1, opcode_name(opcode))
            item = stack[-1 - index]
            if opcode == OP.OP_ROLL:
                del stack[-1 - index]
            stack.append(item)
        elif opcode == OP.OP_ROT:
            self._need(stack, 3, "OP_ROT")
            stack.append(stack.pop(-3))
        elif opcode == OP.OP_SWAP:
            self._need(stack, 2, "OP_SWAP")
            stack[-2], stack[-1] = stack[-1], stack[-2]
        elif opcode == OP.OP_TUCK:
            self._need(stack, 2, "OP_TUCK")
            stack.insert(-2, stack[-1])
        elif opcode == OP.OP_SIZE:
            self._need(stack, 1, "OP_SIZE")
            stack.append(encode_number(len(stack[-1])))
        elif opcode in (OP.OP_EQUAL, OP.OP_EQUALVERIFY):
            self._need(stack, 2, opcode_name(opcode))
            equal = stack.pop() == stack.pop()
            if opcode == OP.OP_EQUALVERIFY:
                if not equal:
                    raise EvaluationError("OP_EQUALVERIFY failed")
            else:
                stack.append(_bool_bytes(equal))
        elif opcode in _UNARY_NUMERIC:
            value = self._pop_number(stack, opcode_name(opcode))
            stack.append(encode_number(_UNARY_NUMERIC[opcode](value)))
        elif opcode in _BINARY_NUMERIC:
            b = self._pop_number(stack, opcode_name(opcode))
            a = self._pop_number(stack, opcode_name(opcode))
            stack.append(encode_number(_BINARY_NUMERIC[opcode](a, b)))
        elif opcode == OP.OP_NUMEQUALVERIFY:
            b = self._pop_number(stack, "OP_NUMEQUALVERIFY")
            a = self._pop_number(stack, "OP_NUMEQUALVERIFY")
            if a != b:
                raise EvaluationError("OP_NUMEQUALVERIFY failed")
        elif opcode == OP.OP_WITHIN:
            upper = self._pop_number(stack, "OP_WITHIN")
            lower = self._pop_number(stack, "OP_WITHIN")
            value = self._pop_number(stack, "OP_WITHIN")
            stack.append(_bool_bytes(lower <= value < upper))
        elif opcode == OP.OP_RIPEMD160:
            stack.append(ripemd160(self._pop(stack, "OP_RIPEMD160")))
        elif opcode == OP.OP_SHA256:
            stack.append(sha256(self._pop(stack, "OP_SHA256")))
        elif opcode == OP.OP_HASH160:
            stack.append(hash160(self._pop(stack, "OP_HASH160")))
        elif opcode == OP.OP_HASH256:
            stack.append(double_sha256(self._pop(stack, "OP_HASH256")))
        elif opcode in (OP.OP_CHECKSIG, OP.OP_CHECKSIGVERIFY):
            pubkey = self._pop(stack, opcode_name(opcode))
            signature = self._pop(stack, opcode_name(opcode))
            valid = self.context.check_ecdsa_signature(pubkey, signature)
            if opcode == OP.OP_CHECKSIGVERIFY:
                if not valid:
                    raise EvaluationError("OP_CHECKSIGVERIFY failed")
            else:
                stack.append(_bool_bytes(valid))
        elif opcode == OP.OP_CHECKMULTISIG:
            return self._check_multisig(stack)
        elif opcode == OP.OP_CHECKLOCKTIMEVERIFY:
            # BIP-65 semantics: peek (do not pop) the required locktime.
            self._need(stack, 1, "OP_CHECKLOCKTIMEVERIFY")
            try:
                required = decode_number(stack[-1], max_size=5)
            except ScriptError as exc:
                raise EvaluationError(f"OP_CHECKLOCKTIMEVERIFY: {exc}") from exc
            if required < 0:
                raise EvaluationError("negative locktime")
            if not self.context.check_locktime(required):
                raise EvaluationError(
                    f"locktime requirement {required} not satisfied"
                )
        elif opcode == OP.OP_CHECKRSA512PAIR:
            public = self._pop(stack, "OP_CHECKRSA512PAIR")
            private = self._pop(stack, "OP_CHECKRSA512PAIR")
            stack.append(_bool_bytes(self.rsa_pair_check(public, private)))
        else:
            raise EvaluationError(f"unknown or disabled opcode {opcode_name(opcode)}")
        return 0

    def _check_multisig(self, stack: list[bytes]) -> int:
        """Minimal m-of-n OP_CHECKMULTISIG (with the historical extra pop).

        Returns the key count ``n``, which the evaluator bills against the
        op budget.
        """
        n = self._pop_number(stack, "OP_CHECKMULTISIG")
        if not 0 <= n <= 20:
            raise EvaluationError(f"multisig n out of range: {n}")
        self._need(stack, n, "OP_CHECKMULTISIG")
        pubkeys = [stack.pop() for _ in range(n)]
        m = self._pop_number(stack, "OP_CHECKMULTISIG")
        if not 0 <= m <= n:
            raise EvaluationError(f"multisig m out of range: {m} of {n}")
        self._need(stack, m, "OP_CHECKMULTISIG")
        signatures = [stack.pop() for _ in range(m)]
        # Historical off-by-one: consumes one extra stack item.
        self._pop(stack, "OP_CHECKMULTISIG dummy")
        # Signatures must match pubkeys in order.
        sig_index = 0
        for pubkey in pubkeys:
            if sig_index >= len(signatures):
                break
            if self.context.check_ecdsa_signature(pubkey, signatures[sig_index]):
                sig_index += 1
        stack.append(_bool_bytes(sig_index == len(signatures)))
        return n

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _pop(stack: list[bytes], operation: str) -> bytes:
        if not stack:
            raise EvaluationError(
                f"stack underflow: {operation} needs 1 item, have 0"
            )
        return stack.pop()

    @staticmethod
    def _need(stack: list[bytes], count: int, operation: str) -> None:
        if len(stack) < count:
            raise EvaluationError(
                f"stack underflow: {operation} needs {count} items, "
                f"have {len(stack)}"
            )

    def _pop_number(self, stack: list[bytes], operation: str) -> int:
        data = self._pop(stack, operation)
        try:
            return decode_number(data, max_size=4)
        except ScriptError as exc:
            raise EvaluationError(f"{operation}: {exc}") from exc

    @staticmethod
    def _check_stack(stack: list[bytes], alt_stack: list[bytes]) -> None:
        combined = len(stack) + len(alt_stack)
        if combined > MAX_STACK_SIZE:
            raise EvaluationError(
                f"stack overflow: {combined} items (stack + altstack) "
                f"exceeds limit {MAX_STACK_SIZE}"
            )


_UNARY_NUMERIC = {
    OP.OP_1ADD: lambda a: a + 1,
    OP.OP_1SUB: lambda a: a - 1,
    OP.OP_NEGATE: lambda a: -a,
    OP.OP_ABS: abs,
    OP.OP_NOT: lambda a: int(a == 0),
    OP.OP_0NOTEQUAL: lambda a: int(a != 0),
}

_BINARY_NUMERIC = {
    OP.OP_ADD: lambda a, b: a + b,
    OP.OP_SUB: lambda a, b: a - b,
    OP.OP_BOOLAND: lambda a, b: int(bool(a) and bool(b)),
    OP.OP_BOOLOR: lambda a, b: int(bool(a) or bool(b)),
    OP.OP_NUMEQUAL: lambda a, b: int(a == b),
    OP.OP_NUMNOTEQUAL: lambda a, b: int(a != b),
    OP.OP_LESSTHAN: lambda a, b: int(a < b),
    OP.OP_GREATERTHAN: lambda a, b: int(a > b),
    OP.OP_LESSTHANOREQUAL: lambda a, b: int(a <= b),
    OP.OP_GREATERTHANOREQUAL: lambda a, b: int(a >= b),
    OP.OP_MIN: min,
    OP.OP_MAX: max,
}


def _default_rsa_pair_check(public: bytes, private: bytes) -> bool:
    """The paper's OP_CHECKRSA512PAIR semantics (OpenSSL ``VerifyPubKey``).

    Malformed keys evaluate to False rather than aborting the script, so a
    refund path (Listing 1's OP_ELSE branch) can be taken by pushing any
    non-matching placeholder.
    """
    try:
        public_key = rsa.RSAPublicKey.from_bytes(public)
        private_key = rsa.RSAPrivateKey.from_bytes(private)
    except rsa.RSAError:
        return False
    return private_key.matches(public_key)


def verify_spend(unlocking: Script, locking: Script,
                 context: Optional[ExecutionContext] = None) -> bool:
    """Convenience wrapper: verify a spend under ``context``."""
    interpreter = ScriptInterpreter(context=context or NullContext())
    return interpreter.verify(unlocking, locking)
