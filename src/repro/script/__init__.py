"""Bitcoin-style scripting for BcWAN.

* :mod:`repro.script.script` — the :class:`Script` container and
  CScriptNum number encoding;
* :mod:`repro.script.opcodes` — opcode table, including the BcWAN
  extension ``OP_CHECKRSA512PAIR``;
* :mod:`repro.script.interpreter` — the stack machine;
* :mod:`repro.script.builder` — standard templates (P2PKH, OP_RETURN) and
  the paper's Listing 1 ephemeral-key-release script;
* :mod:`repro.script.analysis` — static analyzer: abstract stack-depth
  interpretation, output classification, and the mempool/engine
  :class:`~repro.script.analysis.StandardnessPolicy`.
"""

from repro.script.analysis import (
    STANDARD_OUTPUT_CLASSES,
    ScriptAnalysis,
    ScriptIssue,
    StandardnessPolicy,
    StandardnessStats,
    analyze,
    classify_output,
    is_push_only,
)
from repro.script.builder import (
    RSA_PAIR_PLACEHOLDER,
    ephemeral_key_release,
    key_release_claim,
    key_release_refund,
    op_return,
    p2pkh_locking,
    p2pkh_unlocking,
)
from repro.script.errors import EvaluationError, ScriptError, SerializationError
from repro.script.interpreter import (
    ExecutionContext,
    NullContext,
    ScriptInterpreter,
    verify_spend,
)
from repro.script.opcodes import OP, opcode_name
from repro.script.script import Script, decode_number, encode_number

__all__ = [
    "EvaluationError",
    "ExecutionContext",
    "NullContext",
    "OP",
    "RSA_PAIR_PLACEHOLDER",
    "STANDARD_OUTPUT_CLASSES",
    "Script",
    "ScriptAnalysis",
    "ScriptError",
    "ScriptInterpreter",
    "ScriptIssue",
    "SerializationError",
    "StandardnessPolicy",
    "StandardnessStats",
    "analyze",
    "classify_output",
    "is_push_only",
    "decode_number",
    "encode_number",
    "ephemeral_key_release",
    "key_release_claim",
    "key_release_refund",
    "op_return",
    "opcode_name",
    "p2pkh_locking",
    "p2pkh_unlocking",
    "verify_spend",
]
