"""Opcode constants for the BcWAN script language.

The language is the non-Turing-complete stack machine of the Bitcoin family
(paper section 2), with numbering compatible with Bitcoin where the opcodes
overlap.  BcWAN adds one operator, ``OP_CHECKRSA512PAIR`` (paper section
4.4 / Listing 1), assigned ``0xC0`` in the unassigned range — the same kind
of extension Multichain applies when soft-forking new operators in.
"""

from __future__ import annotations

from enum import IntEnum

__all__ = ["OP", "OPCODE_NAMES", "opcode_name"]


class OP(IntEnum):
    """Script opcodes (values match Bitcoin where applicable)."""

    # Pushing data.
    OP_0 = 0x00
    OP_PUSHDATA1 = 0x4C
    OP_PUSHDATA2 = 0x4D
    OP_PUSHDATA4 = 0x4E
    OP_1NEGATE = 0x4F
    OP_1 = 0x51
    OP_2 = 0x52
    OP_3 = 0x53
    OP_4 = 0x54
    OP_5 = 0x55
    OP_6 = 0x56
    OP_7 = 0x57
    OP_8 = 0x58
    OP_9 = 0x59
    OP_10 = 0x5A
    OP_11 = 0x5B
    OP_12 = 0x5C
    OP_13 = 0x5D
    OP_14 = 0x5E
    OP_15 = 0x5F
    OP_16 = 0x60

    # Flow control.
    OP_NOP = 0x61
    OP_IF = 0x63
    OP_NOTIF = 0x64
    OP_ELSE = 0x67
    OP_ENDIF = 0x68
    OP_VERIFY = 0x69
    OP_RETURN = 0x6A

    # Stack manipulation.
    OP_TOALTSTACK = 0x6B
    OP_FROMALTSTACK = 0x6C
    OP_2DROP = 0x6D
    OP_2DUP = 0x6E
    OP_3DUP = 0x6F
    OP_2OVER = 0x70
    OP_2ROT = 0x71
    OP_2SWAP = 0x72
    OP_IFDUP = 0x73
    OP_DEPTH = 0x74
    OP_DROP = 0x75
    OP_DUP = 0x76
    OP_NIP = 0x77
    OP_OVER = 0x78
    OP_PICK = 0x79
    OP_ROLL = 0x7A
    OP_ROT = 0x7B
    OP_SWAP = 0x7C
    OP_TUCK = 0x7D
    OP_SIZE = 0x82

    # Comparison.
    OP_EQUAL = 0x87
    OP_EQUALVERIFY = 0x88

    # Arithmetic.
    OP_1ADD = 0x8B
    OP_1SUB = 0x8C
    OP_NEGATE = 0x8F
    OP_ABS = 0x90
    OP_NOT = 0x91
    OP_0NOTEQUAL = 0x92
    OP_ADD = 0x93
    OP_SUB = 0x94
    OP_BOOLAND = 0x9A
    OP_BOOLOR = 0x9B
    OP_NUMEQUAL = 0x9C
    OP_NUMEQUALVERIFY = 0x9D
    OP_NUMNOTEQUAL = 0x9E
    OP_LESSTHAN = 0x9F
    OP_GREATERTHAN = 0xA0
    OP_LESSTHANOREQUAL = 0xA1
    OP_GREATERTHANOREQUAL = 0xA2
    OP_MIN = 0xA3
    OP_MAX = 0xA4
    OP_WITHIN = 0xA5

    # Crypto.
    OP_RIPEMD160 = 0xA6
    OP_SHA256 = 0xA8
    OP_HASH160 = 0xA9
    OP_HASH256 = 0xAA
    OP_CHECKSIG = 0xAC
    OP_CHECKSIGVERIFY = 0xAD
    OP_CHECKMULTISIG = 0xAE

    # Locktime (BIP 65).
    OP_CHECKLOCKTIMEVERIFY = 0xB1

    # BcWAN extension (paper section 4.4): pops an RSA public key and an
    # RSA private key and pushes whether they form a matching pair.
    OP_CHECKRSA512PAIR = 0xC0


OPCODE_NAMES: dict[int, str] = {op.value: op.name for op in OP}


def opcode_name(value: int) -> str:
    """Human-readable name of an opcode value (for disassembly/errors)."""
    return OPCODE_NAMES.get(value, f"OP_UNKNOWN_{value:#04x}")
