"""Script templates used by BcWAN.

The centrepiece is :func:`ephemeral_key_release`, a faithful transcription
of the paper's Listing 1 ("Ephemeral Private Key Release Script"):

.. code-block:: none

    <rsaPubKey>
    OP_CHECKRSA512PAIR
    OP_IF
        OP_DUP OP_HASH160 <pubKeyHash> OP_EQUALVERIFY
    OP_ELSE
        <block_height+100> OP_CHECKLOCKTIMEVERIFY OP_VERIFY
        OP_DUP OP_HASH160 <buyerPubkeyHash> OP_EQUALVERIFY
    OP_ENDIF
    OP_CHECKSIG

The IF branch pays the *gateway* once it reveals the ephemeral RSA-512
private key matching ``<rsaPubKey>``; the ELSE branch refunds the *buyer*
(the recipient) after the locktime if the gateway never claims.
"""

from __future__ import annotations

from repro.script.errors import SerializationError
from repro.script.opcodes import OP
from repro.script.script import Script, decode_number, encode_number

__all__ = [
    "p2pkh_locking",
    "p2pkh_unlocking",
    "op_return",
    "ephemeral_key_release",
    "parse_ephemeral_key_release",
    "key_release_claim",
    "key_release_refund",
    "RSA_PAIR_PLACEHOLDER",
]

# Pushed in place of the RSA private key when taking the refund branch; any
# byte string that does not parse as a matching key works, this one is
# self-describing in transaction dumps.
RSA_PAIR_PLACEHOLDER = b"\x00"


def p2pkh_locking(pubkey_hash: bytes) -> Script:
    """Standard pay-to-pubkey-hash locking script."""
    if len(pubkey_hash) != 20:
        raise ValueError(f"pubkey hash must be 20 bytes, got {len(pubkey_hash)}")
    return Script([
        OP.OP_DUP, OP.OP_HASH160, pubkey_hash,
        OP.OP_EQUALVERIFY, OP.OP_CHECKSIG,
    ])


def p2pkh_unlocking(signature: bytes, pubkey: bytes) -> Script:
    """Standard pay-to-pubkey-hash unlocking script."""
    return Script([signature, pubkey])


def op_return(data: bytes) -> Script:
    """A provably-unspendable data-carrier output.

    BcWAN publishes gateway IP announcements this way (paper section 5.1:
    "We used the OP_RETURN script operator to [broadcast the node IP]").
    """
    return Script([OP.OP_RETURN, data])


def ephemeral_key_release(rsa_pubkey: bytes, gateway_pubkey_hash: bytes,
                          buyer_pubkey_hash: bytes,
                          refund_locktime: int) -> Script:
    """Listing 1: lock an output to the revelation of an RSA private key.

    :param rsa_pubkey: serialized ephemeral RSA-512 public key (``ePk``)
    :param gateway_pubkey_hash: HASH160 of the gateway's ECDSA public key —
        paid when the matching private key (``eSk``) is revealed
    :param buyer_pubkey_hash: HASH160 of the recipient's ECDSA public key —
        refunded once ``refund_locktime`` passes
    :param refund_locktime: absolute block height (the paper uses
        ``block_height + 100``) after which the refund path opens
    """
    for name, value in (("gateway", gateway_pubkey_hash), ("buyer", buyer_pubkey_hash)):
        if len(value) != 20:
            raise ValueError(f"{name} pubkey hash must be 20 bytes, got {len(value)}")
    if refund_locktime < 0:
        raise ValueError(f"refund locktime must be non-negative: {refund_locktime}")
    return Script([
        rsa_pubkey,
        OP.OP_CHECKRSA512PAIR,
        OP.OP_IF,
        OP.OP_DUP, OP.OP_HASH160, gateway_pubkey_hash, OP.OP_EQUALVERIFY,
        OP.OP_ELSE,
        encode_number(refund_locktime),
        OP.OP_CHECKLOCKTIMEVERIFY,
        OP.OP_VERIFY,
        OP.OP_DUP, OP.OP_HASH160, buyer_pubkey_hash, OP.OP_EQUALVERIFY,
        OP.OP_ENDIF,
        OP.OP_CHECKSIG,
    ])


def parse_ephemeral_key_release(script: Script):
    """Recognize a Listing-1 locking script.

    Returns ``(rsa_pubkey, gateway_pubkey_hash, buyer_pubkey_hash,
    refund_locktime)`` or ``None`` if the script has a different shape.
    The gateway uses this to audit an incoming offer before revealing its
    ephemeral private key: right template, right key, right payee.
    """
    elements = script.elements
    if len(elements) != 17:
        return None
    checks = (
        isinstance(elements[0], bytes)
        and elements[1] == OP.OP_CHECKRSA512PAIR
        and elements[2] == OP.OP_IF
        and elements[3] == OP.OP_DUP
        and elements[4] == OP.OP_HASH160
        and isinstance(elements[5], bytes) and len(elements[5]) == 20
        and elements[6] == OP.OP_EQUALVERIFY
        and elements[7] == OP.OP_ELSE
        and isinstance(elements[8], bytes)
        and elements[9] == OP.OP_CHECKLOCKTIMEVERIFY
        and elements[10] == OP.OP_VERIFY
        and elements[11] == OP.OP_DUP
        and elements[12] == OP.OP_HASH160
        and isinstance(elements[13], bytes) and len(elements[13]) == 20
        and elements[14] == OP.OP_EQUALVERIFY
        and elements[15] == OP.OP_ENDIF
        and elements[16] == OP.OP_CHECKSIG
    )
    if not checks:
        return None
    try:
        locktime = decode_number(elements[8], max_size=5)
    except SerializationError:
        return None
    return elements[0], elements[5], elements[13], locktime


def key_release_claim(signature: bytes, gateway_pubkey: bytes,
                      rsa_private_key: bytes) -> Script:
    """Unlocking script for the gateway's claim path of Listing 1.

    Publishing this script on-chain *reveals* ``rsa_private_key`` — that is
    the whole point: the recipient reads ``eSk`` from the spending
    transaction and decrypts the wrapped message.
    """
    return Script([signature, gateway_pubkey, rsa_private_key])


def key_release_refund(signature: bytes, buyer_pubkey: bytes) -> Script:
    """Unlocking script for the buyer's refund path of Listing 1.

    Pushes a placeholder where the RSA private key would go so that
    ``OP_CHECKRSA512PAIR`` evaluates false and execution falls through to
    the timelocked OP_ELSE branch.
    """
    return Script([signature, buyer_pubkey, RSA_PAIR_PLACEHOLDER])
