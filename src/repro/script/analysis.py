"""Static analysis of BcWAN scripts: prove properties without executing.

Two consumers drive this module:

* **Standardness** — the mempool wants to turn away transactions whose
  outputs can never be spent (constant-false locks, value burned into
  ``OP_RETURN``) or whose scripts do not match a known template, before
  paying for signature checks.  This mirrors production-chain policy
  rules: consensus stays permissive, admission stays strict.
* **Fast-reject** — the validation engine wants to skip interpreter
  execution entirely when a spend *provably* fails: unbalanced
  ``OP_IF``/``OP_ENDIF``, guaranteed stack underflow, an op count over
  the consensus limit, an unconditional ``OP_RETURN``.  Rejecting those
  statically is consensus-equivalent (execution would fail too) and
  much cheaper than running the stack machine.

The core is :func:`analyze`, an abstract interpreter over
:class:`~repro.script.script.Script` that tracks the main and alt stack
depths as intervals ``[lo, hi]``, joins the intervals at
``OP_ELSE``/``OP_ENDIF`` branch merges, bills a worst-case op budget
(including ``OP_CHECKMULTISIG``'s per-key charge), and statically
audits ``OP_CHECKLOCKTIMEVERIFY`` operands.  Every finding is a
:class:`ScriptIssue` with one of three severities:

* ``fatal`` — execution of the script provably fails (or, at the end of
  a conditional arm, every arm fails).  Safe to reject in consensus
  paths.
* ``nonstandard`` — executable, but violates standardness policy
  (e.g. a non-minimally-encoded locktime operand).
* ``info`` — a data-dependent hazard the analyzer cannot decide
  (possible underflow, a dead conditional arm, dynamic-depth opcodes).

:class:`StandardnessPolicy` packages the analyses behind a bounded
verdict cache (keyed by the immutable ``Script`` itself) with hit/miss
counters, and is owned by the
:class:`~repro.blockchain.engine.ValidationEngine` so the mempool and
block pipeline share one set of verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.ecdsa import CURVE_ORDER
from repro.script.builder import parse_ephemeral_key_release
from repro.script.errors import ScriptError
from repro.script.interpreter import MAX_OPS, MAX_STACK_SIZE
from repro.script.opcodes import OP, opcode_name
from repro.script.script import Script, ScriptElement, decode_number, encode_number

__all__ = [
    "OUTPUT_P2PKH",
    "OUTPUT_KEY_RELEASE",
    "OUTPUT_CLTV_GUARDED",
    "OUTPUT_OP_RETURN",
    "OUTPUT_UNSPENDABLE",
    "OUTPUT_TRIVIAL",
    "OUTPUT_EMPTY",
    "OUTPUT_NONSTANDARD",
    "STANDARD_OUTPUT_CLASSES",
    "ScriptIssue",
    "ScriptAnalysis",
    "StandardnessStats",
    "StandardnessPolicy",
    "analyze",
    "classify_output",
    "is_push_only",
]

# -- output classification ----------------------------------------------------

OUTPUT_P2PKH = "p2pkh"
OUTPUT_KEY_RELEASE = "rsa-pair-locked"
OUTPUT_CLTV_GUARDED = "cltv-guarded"
OUTPUT_OP_RETURN = "op-return"
OUTPUT_UNSPENDABLE = "unspendable"
OUTPUT_TRIVIAL = "trivial"
OUTPUT_EMPTY = "empty"
OUTPUT_NONSTANDARD = "nonstandard"

#: Spendable output shapes the mempool admits.  ``op-return`` is admitted
#: separately (data carrier, zero value only); everything else is policy-
#: rejected at admission while remaining consensus-valid in blocks.
STANDARD_OUTPUT_CLASSES = frozenset({
    OUTPUT_P2PKH, OUTPUT_KEY_RELEASE, OUTPUT_CLTV_GUARDED,
})

# Constant pushes: opcodes whose only effect is pushing a fixed value.
_CONSTANT_PUSH_OPS = frozenset(
    {int(OP.OP_0), int(OP.OP_1NEGATE)}
    | {int(op) for op in range(OP.OP_1, OP.OP_16 + 1)}
)


def _script_bool(item: bytes) -> bool:
    """Bitcoin truthiness (mirrors the interpreter's ``_as_bool``)."""
    for i, byte in enumerate(item):
        if byte != 0:
            if i == len(item) - 1 and byte == 0x80:
                return False
            return True
    return False


def _constant_value(element: ScriptElement) -> Optional[bytes]:
    """The bytes a constant-push element leaves on the stack, else None."""
    if isinstance(element, bytes):
        return element
    if element == OP.OP_0:
        return b""
    if element == OP.OP_1NEGATE:
        return encode_number(-1)
    if OP.OP_1 <= element <= OP.OP_16:
        return encode_number(element - OP.OP_1 + 1)
    return None


def is_push_only(script: Script) -> bool:
    """True if the script only pushes data (the standardness rule for
    unlocking scripts: no computation may live in a scriptSig)."""
    return all(_constant_value(element) is not None
               for element in script.elements)


def _is_high_s_signature(element: ScriptElement) -> bool:
    """Whether a pushed element is a well-formed but high-S signature.

    Only 64-byte pushes whose halves both decode to in-range scalars
    qualify — anything else is either not a signature or will fail
    verification outright, which is the interpreter's business, not
    standardness's.
    """
    if not isinstance(element, bytes) or len(element) != 64:
        return False
    r = int.from_bytes(element[:32], "big")
    s = int.from_bytes(element[32:], "big")
    return (0 < r < CURVE_ORDER) and (CURVE_ORDER // 2 < s < CURVE_ORDER)


def _is_p2pkh(elements: tuple[ScriptElement, ...]) -> bool:
    return (
        len(elements) == 5
        and elements[0] == OP.OP_DUP
        and elements[1] == OP.OP_HASH160
        and isinstance(elements[2], bytes) and len(elements[2]) == 20
        and elements[3] == OP.OP_EQUALVERIFY
        and elements[4] == OP.OP_CHECKSIG
    )


def _is_cltv_guarded(elements: tuple[ScriptElement, ...]) -> bool:
    """``<locktime> OP_CHECKLOCKTIMEVERIFY OP_DROP <p2pkh>``."""
    return (
        len(elements) == 8
        and isinstance(elements[0], bytes)
        and elements[1] == OP.OP_CHECKLOCKTIMEVERIFY
        and elements[2] == OP.OP_DROP
        and _is_p2pkh(elements[3:])
    )


def classify_output(script: Script) -> str:
    """Name the shape of a locking script.

    Returns one of the ``OUTPUT_*`` constants.  Template recognition runs
    before the generic buckets, so a Listing-1 script classifies as
    ``rsa-pair-locked`` even though it also contains a CLTV.
    """
    elements = script.elements
    if not elements:
        return OUTPUT_EMPTY
    if elements[0] == OP.OP_RETURN:
        return OUTPUT_OP_RETURN
    if _is_p2pkh(elements):
        return OUTPUT_P2PKH
    if parse_ephemeral_key_release(script) is not None:
        return OUTPUT_KEY_RELEASE
    if _is_cltv_guarded(elements):
        return OUTPUT_CLTV_GUARDED
    if is_push_only(script):
        final = _constant_value(elements[-1])
        assert final is not None
        # A push-only script never errors; its verdict is its last push.
        return OUTPUT_TRIVIAL if _script_bool(final) else OUTPUT_UNSPENDABLE
    # An OP_RETURN outside any conditional always executes and always
    # aborts: the output is provably unspendable wherever it appears.
    depth = 0
    for element in elements:
        if isinstance(element, bytes):
            continue
        if element in (OP.OP_IF, OP.OP_NOTIF):
            depth += 1
        elif element == OP.OP_ENDIF and depth > 0:
            depth -= 1
        elif element == OP.OP_RETURN and depth == 0:
            return OUTPUT_UNSPENDABLE
    return OUTPUT_NONSTANDARD


# -- issues -------------------------------------------------------------------

SEVERITY_FATAL = "fatal"
SEVERITY_NONSTANDARD = "nonstandard"
SEVERITY_INFO = "info"


@dataclass(frozen=True)
class ScriptIssue:
    """One finding of the static analyzer."""

    code: str
    message: str
    severity: str = SEVERITY_INFO

    @property
    def fatal(self) -> bool:
        return self.severity == SEVERITY_FATAL


@dataclass(frozen=True)
class ScriptAnalysis:
    """What :func:`analyze` proved about one script.

    Stack figures are absolute depths given the initial-depth interval
    the analysis ran with; ``max_stack`` is the worst-case combined
    (main + alt) high-water mark checked against ``MAX_STACK_SIZE``.
    """

    issues: tuple[ScriptIssue, ...]
    op_count_min: int
    op_count_max: int
    max_stack: int
    final_lo: int
    final_hi: int
    push_count: int

    @property
    def fatal(self) -> bool:
        """Execution provably fails (safe to reject without running)."""
        return any(issue.fatal for issue in self.issues)

    @property
    def first_fatal(self) -> Optional[ScriptIssue]:
        for issue in self.issues:
            if issue.fatal:
                return issue
        return None

    @property
    def standard(self) -> bool:
        """No fatal and no standardness violations."""
        return not any(issue.severity in (SEVERITY_FATAL, SEVERITY_NONSTANDARD)
                       for issue in self.issues)

    def first_rejectable(self) -> Optional[ScriptIssue]:
        """The first fatal-or-nonstandard issue, if any."""
        for issue in self.issues:
            if issue.severity in (SEVERITY_FATAL, SEVERITY_NONSTANDARD):
                return issue
        return None

    def has(self, code: str) -> bool:
        return any(issue.code == code for issue in self.issues)


# -- the abstract machine -----------------------------------------------------

# opcode -> (items required on the main stack, net-depth delta lo, hi).
_EFFECTS: dict[int, tuple[int, int, int]] = {
    int(OP.OP_NOP): (0, 0, 0),
    int(OP.OP_VERIFY): (1, -1, -1),
    int(OP.OP_2DROP): (2, -2, -2),
    int(OP.OP_2DUP): (2, 2, 2),
    int(OP.OP_3DUP): (3, 3, 3),
    int(OP.OP_2OVER): (4, 2, 2),
    int(OP.OP_2ROT): (6, 0, 0),
    int(OP.OP_2SWAP): (4, 0, 0),
    int(OP.OP_IFDUP): (1, 0, 1),
    int(OP.OP_DEPTH): (0, 1, 1),
    int(OP.OP_DROP): (1, -1, -1),
    int(OP.OP_DUP): (1, 1, 1),
    int(OP.OP_NIP): (2, -1, -1),
    int(OP.OP_OVER): (2, 1, 1),
    int(OP.OP_PICK): (2, 0, 0),
    int(OP.OP_ROLL): (2, -1, -1),
    int(OP.OP_ROT): (3, 0, 0),
    int(OP.OP_SWAP): (2, 0, 0),
    int(OP.OP_TUCK): (2, 1, 1),
    int(OP.OP_SIZE): (1, 1, 1),
    int(OP.OP_EQUAL): (2, -1, -1),
    int(OP.OP_EQUALVERIFY): (2, -2, -2),
    int(OP.OP_1ADD): (1, 0, 0),
    int(OP.OP_1SUB): (1, 0, 0),
    int(OP.OP_NEGATE): (1, 0, 0),
    int(OP.OP_ABS): (1, 0, 0),
    int(OP.OP_NOT): (1, 0, 0),
    int(OP.OP_0NOTEQUAL): (1, 0, 0),
    int(OP.OP_ADD): (2, -1, -1),
    int(OP.OP_SUB): (2, -1, -1),
    int(OP.OP_BOOLAND): (2, -1, -1),
    int(OP.OP_BOOLOR): (2, -1, -1),
    int(OP.OP_NUMEQUAL): (2, -1, -1),
    int(OP.OP_NUMEQUALVERIFY): (2, -2, -2),
    int(OP.OP_NUMNOTEQUAL): (2, -1, -1),
    int(OP.OP_LESSTHAN): (2, -1, -1),
    int(OP.OP_GREATERTHAN): (2, -1, -1),
    int(OP.OP_LESSTHANOREQUAL): (2, -1, -1),
    int(OP.OP_GREATERTHANOREQUAL): (2, -1, -1),
    int(OP.OP_MIN): (2, -1, -1),
    int(OP.OP_MAX): (2, -1, -1),
    int(OP.OP_WITHIN): (3, -2, -2),
    int(OP.OP_RIPEMD160): (1, 0, 0),
    int(OP.OP_SHA256): (1, 0, 0),
    int(OP.OP_HASH160): (1, 0, 0),
    int(OP.OP_HASH256): (1, 0, 0),
    int(OP.OP_CHECKSIG): (2, -1, -1),
    int(OP.OP_CHECKSIGVERIFY): (2, -2, -2),
    # OP_CHECKMULTISIG minimally pops n, m, and the historical dummy;
    # at the 20-key/20-sig worst case it pops 43 and pushes 1.
    int(OP.OP_CHECKMULTISIG): (3, -42, -2),
    int(OP.OP_CHECKLOCKTIMEVERIFY): (1, 0, 0),  # BIP-65: peeks, never pops
    int(OP.OP_CHECKRSA512PAIR): (2, -1, -1),
}

# Opcodes whose true depth requirement depends on runtime data — the
# analyzer can only bound them, so a reachable underflow stays possible
# even when the static minimum is satisfied.
_DYNAMIC_DEPTH_OPS = frozenset({
    int(OP.OP_PICK), int(OP.OP_ROLL), int(OP.OP_CHECKMULTISIG),
})

_FLOW_OPS = frozenset({
    int(OP.OP_IF), int(OP.OP_NOTIF), int(OP.OP_ELSE), int(OP.OP_ENDIF),
})

#: Every integer element the interpreter can execute without raising
#: "unknown or disabled opcode".
KNOWN_OPCODES = frozenset(
    set(_EFFECTS) | _CONSTANT_PUSH_OPS | _FLOW_OPS
    | {int(OP.OP_RETURN), int(OP.OP_TOALTSTACK), int(OP.OP_FROMALTSTACK)}
)


@dataclass
class _State:
    """Abstract machine state: depth intervals for both stacks."""

    lo: int
    hi: int
    alo: int
    ahi: int
    dead: bool = False

    def copy(self) -> "_State":
        return _State(self.lo, self.hi, self.alo, self.ahi, self.dead)


@dataclass
class _Frame:
    """One open OP_IF: the entry state plus completed arm exits."""

    entry: _State
    arms: list[_State] = field(default_factory=list)
    else_count: int = 0
    widened: bool = False


def _join(states: list[_State]) -> _State:
    alive = [s for s in states if not s.dead]
    if not alive:
        return _State(0, 0, 0, 0, dead=True)
    return _State(
        lo=min(s.lo for s in alive),
        hi=max(s.hi for s in alive),
        alo=min(s.alo for s in alive),
        ahi=max(s.ahi for s in alive),
    )


class _Analyzer:
    """One analysis run; collects issues and walks the element stream."""

    def __init__(self, script: Script, initial: tuple[int, int],
                 unknown_input: bool) -> None:
        self.script = script
        self.unknown_input = unknown_input
        self.state = _State(lo=initial[0], hi=initial[1], alo=0, ahi=0)
        self.frames: list[_Frame] = []
        self.issues: list[ScriptIssue] = []
        self._seen: set[tuple[str, str]] = set()
        self.ops_min = 0
        self.ops_max = 0
        self.max_stack = self.state.hi
        self.push_count = 0

    # -- issue plumbing -----------------------------------------------------

    def note(self, code: str, message: str,
             severity: str = SEVERITY_INFO) -> None:
        if severity == SEVERITY_INFO and self.unknown_input and \
                code.startswith("possible-"):
            # With an unknown starting depth every op "possibly"
            # underflows; the hedged findings carry no signal.
            return
        key = (code, message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.issues.append(ScriptIssue(code=code, message=message,
                                       severity=severity))

    def kill(self, code: str, message: str) -> None:
        """The current path provably fails at this element.

        Outside any conditional that dooms the whole script (fatal);
        inside an arm it only dooms that arm, which dies and is excluded
        from the join — the other arm may still save the spend.
        """
        if self.frames:
            self.note(code, f"{message} (conditional arm always fails)",
                      SEVERITY_INFO)
        else:
            self.note(code, message, SEVERITY_FATAL)
        self.state.dead = True

    # -- stack-effect application -------------------------------------------

    def apply(self, op_name: str, needs: int, dlo: int, dhi: int,
              alt_needs: int = 0, alt_dlo: int = 0, alt_dhi: int = 0,
              dynamic: bool = False) -> None:
        state = self.state
        if state.dead:
            return
        if state.hi < needs:
            self.kill("stack-underflow",
                      f"stack underflow: {op_name} needs {needs}, "
                      f"at most {state.hi} available")
            return
        if state.ahi < alt_needs:
            self.kill("altstack-underflow",
                      f"altstack underflow: {op_name} needs {alt_needs}, "
                      f"at most {state.ahi} available")
            return
        if state.lo < needs:
            self.note("possible-underflow",
                      f"{op_name} may underflow: needs {needs}, "
                      f"as few as {state.lo} available")
            state.lo = needs
        if alt_needs and state.alo < alt_needs:
            self.note("possible-altstack-underflow",
                      f"{op_name} may underflow the altstack")
            state.alo = alt_needs
        if dynamic:
            self.note("dynamic-depth",
                      f"{op_name} consumes a data-dependent number of items")
        state.lo = max(state.lo + dlo, 0)
        state.hi += dhi
        state.alo = max(state.alo + alt_dlo, 0)
        state.ahi += alt_dhi
        combined_lo = state.lo + state.alo
        combined_hi = state.hi + state.ahi
        self.max_stack = max(self.max_stack, combined_hi)
        if combined_lo > MAX_STACK_SIZE:
            self.kill("stack-overflow",
                      f"stack overflow: at least {combined_lo} items, "
                      f"limit {MAX_STACK_SIZE}")
        elif combined_hi > MAX_STACK_SIZE:
            self.note("possible-stack-overflow",
                      f"stack may overflow: up to {combined_hi} items, "
                      f"limit {MAX_STACK_SIZE}")

    def bill_op(self, opcode: int) -> None:
        if opcode <= OP.OP_16:
            return
        self.ops_min += 1
        self.ops_max += 1
        if opcode == OP.OP_CHECKMULTISIG:
            # Executed multisigs bill one op per key: worst case 20.
            self.ops_max += 20
        if self.ops_min > MAX_OPS:
            self.note("op-limit",
                      f"too many opcodes: {self.ops_min} > {MAX_OPS}",
                      SEVERITY_FATAL)
        elif self.ops_max > MAX_OPS:
            self.note("possible-op-limit",
                      f"worst-case op count {self.ops_max} exceeds {MAX_OPS} "
                      f"(multisig key billing)")

    # -- CLTV operand audit --------------------------------------------------

    def audit_cltv_operand(self, prev: Optional[ScriptElement]) -> None:
        operand = _constant_value(prev) if prev is not None else None
        if operand is None:
            self.note("cltv-dynamic-operand",
                      "OP_CHECKLOCKTIMEVERIFY operand is not a static push; "
                      "locktime cannot be audited before execution")
            return
        try:
            value = decode_number(operand, max_size=5)
        except ScriptError:
            self.kill("cltv-bad-operand",
                      f"OP_CHECKLOCKTIMEVERIFY operand {operand.hex()} "
                      f"does not decode as a locktime")
            return
        if value < 0:
            self.kill("cltv-negative",
                      f"OP_CHECKLOCKTIMEVERIFY with negative locktime {value}")
            return
        if encode_number(value) != operand:
            # Executes fine (decode_number tolerates padding) but is
            # malleable: two encodings of one locktime hash differently.
            self.note("cltv-nonminimal",
                      f"OP_CHECKLOCKTIMEVERIFY operand {operand.hex()} is "
                      f"not minimally encoded for {value}",
                      SEVERITY_NONSTANDARD)

    # -- the walk ------------------------------------------------------------

    def run(self) -> ScriptAnalysis:
        prev: Optional[ScriptElement] = None
        for element in self.script.elements:
            if isinstance(element, bytes):
                self.push_count += 1
                self.apply(f"push of {len(element)} bytes", 0, 1, 1)
                prev = element
                continue

            opcode = int(element)
            self.bill_op(opcode)

            if opcode in (OP.OP_IF, OP.OP_NOTIF):
                if self.state.dead:
                    self.frames.append(_Frame(entry=self.state.copy()))
                else:
                    self.apply(opcode_name(opcode), 1, -1, -1)
                    self.frames.append(_Frame(entry=self.state.copy()))
            elif opcode == OP.OP_ELSE:
                if not self.frames:
                    self.note("else-without-if", "OP_ELSE without OP_IF",
                              SEVERITY_FATAL)
                    self.state.dead = True
                else:
                    frame = self.frames[-1]
                    frame.arms.append(self.state.copy())
                    frame.else_count += 1
                    if frame.else_count > 1 and not frame.widened:
                        frame.widened = True
                        self.note("multi-else",
                                  "multiple OP_ELSE in one conditional: "
                                  "arms may execute in combination",
                                  SEVERITY_NONSTANDARD)
                    self.state = frame.entry.copy()
            elif opcode == OP.OP_ENDIF:
                if not self.frames:
                    self.note("endif-without-if", "OP_ENDIF without OP_IF",
                              SEVERITY_FATAL)
                    self.state.dead = True
                else:
                    frame = self.frames.pop()
                    frame.arms.append(self.state.copy())
                    if frame.else_count == 0:
                        # No OP_ELSE: a false condition skips the arm.
                        frame.arms.append(frame.entry.copy())
                    if frame.widened:
                        # Toggled arms can run in combination; give up
                        # precision rather than mis-join.
                        self.state = _State(0, MAX_STACK_SIZE, 0,
                                            MAX_STACK_SIZE,
                                            dead=frame.entry.dead)
                    else:
                        joined = _join(frame.arms)
                        if joined.dead and not frame.entry.dead:
                            if self.frames:
                                self.note("all-arms-fail",
                                          "every arm of this conditional "
                                          "fails (nested)", SEVERITY_INFO)
                            else:
                                self.note("all-arms-fail",
                                          "every arm of the conditional "
                                          "provably fails", SEVERITY_FATAL)
                        self.state = joined
            elif opcode == OP.OP_RETURN:
                self.kill("unspendable",
                          "OP_RETURN aborts execution unconditionally"
                          if not self.frames else "OP_RETURN aborts execution")
            elif opcode == OP.OP_TOALTSTACK:
                self.apply("OP_TOALTSTACK", 1, -1, -1,
                           alt_dlo=1, alt_dhi=1)
            elif opcode == OP.OP_FROMALTSTACK:
                self.apply("OP_FROMALTSTACK", 0, 1, 1,
                           alt_needs=1, alt_dlo=-1, alt_dhi=-1)
            elif opcode in _CONSTANT_PUSH_OPS:
                self.apply(opcode_name(opcode), 0, 1, 1)
            elif opcode in _EFFECTS:
                if opcode == OP.OP_CHECKLOCKTIMEVERIFY and \
                        not self.state.dead:
                    self.audit_cltv_operand(prev)
                if not self.state.dead:
                    needs, dlo, dhi = _EFFECTS[opcode]
                    self.apply(opcode_name(opcode), needs, dlo, dhi,
                               dynamic=opcode in _DYNAMIC_DEPTH_OPS)
            else:
                self.kill("unknown-opcode",
                          f"unknown or disabled opcode {opcode_name(opcode)}")
            prev = element

        if self.frames:
            self.note("unbalanced-conditional", "unbalanced OP_IF/OP_ENDIF",
                      SEVERITY_FATAL)
        return ScriptAnalysis(
            issues=tuple(self.issues),
            op_count_min=self.ops_min,
            op_count_max=self.ops_max,
            max_stack=self.max_stack,
            final_lo=self.state.lo,
            final_hi=self.state.hi,
            push_count=self.push_count,
        )


def analyze(script: Script, initial: tuple[int, int] = (0, 0),
            assume_unknown_input: bool = False) -> ScriptAnalysis:
    """Statically analyze one script.

    :param initial: main-stack depth interval the script starts with —
        ``(0, 0)`` models standalone evaluation on an empty stack (an
        unlocking script); a locking script starts from the unlocking
        script's final interval.
    :param assume_unknown_input: analyze with a fully unknown starting
        depth (used when auditing a locking script at output-creation
        time, before any spender exists); suppresses the hedged
        ``possible-*`` findings that would otherwise fire on every op.
    """
    if assume_unknown_input:
        initial = (0, MAX_STACK_SIZE)
    return _Analyzer(script, initial, assume_unknown_input).run()


# -- the policy ---------------------------------------------------------------

@dataclass
class StandardnessStats:  # lint: allow(ad-hoc-telemetry) — script-layer; mirrored into the registry by DaemonStats
    """Counters of one policy instance (telemetry-facing)."""

    tx_checked: int = 0
    tx_rejected: int = 0
    spends_prechecked: int = 0
    fast_rejects: int = 0
    analyses: int = 0
    analysis_cache_hits: int = 0
    output_classes: dict[str, int] = field(default_factory=dict)

    def snapshot(self) -> "StandardnessStats":
        return StandardnessStats(
            tx_checked=self.tx_checked,
            tx_rejected=self.tx_rejected,
            spends_prechecked=self.spends_prechecked,
            fast_rejects=self.fast_rejects,
            analyses=self.analyses,
            analysis_cache_hits=self.analysis_cache_hits,
            output_classes=dict(self.output_classes),
        )


class StandardnessPolicy:
    """Pre-execution script vetting with a bounded verdict cache.

    Two distinct duties, with different authority:

    * :meth:`check_transaction` is **policy**: it may reject perfectly
      executable transactions (non-standard output shapes, non-push
      unlocking scripts, value burned into OP_RETURN).  Only the
      mempool calls it; blocks are exempt.
    * :meth:`precheck_spend` is **consensus-safe**: it only reports
      spends whose execution provably fails, so the validation engine
      may skip the interpreter for both mempool and block paths without
      changing any verdict.
    """

    def __init__(self, require_standard_outputs: bool = True,
                 max_cache_entries: int = 1 << 14) -> None:
        self.require_standard_outputs = require_standard_outputs
        self.max_cache_entries = max_cache_entries
        self._cache: dict[tuple[Script, int, int, bool], ScriptAnalysis] = {}
        self.stats = StandardnessStats()

    # -- cached analysis -----------------------------------------------------

    def analysis_for(self, script: Script,
                     initial: tuple[int, int] = (0, 0),
                     assume_unknown_input: bool = False) -> ScriptAnalysis:
        """The (cached) analysis of ``script`` from ``initial`` depth."""
        key = (script, initial[0], initial[1], assume_unknown_input)
        cached = self._cache.get(key)
        if cached is not None:
            self.stats.analysis_cache_hits += 1
            return cached
        self.stats.analyses += 1
        result = analyze(script, initial=initial,
                         assume_unknown_input=assume_unknown_input)
        if len(self._cache) >= self.max_cache_entries:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = result
        return result

    @property
    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- mempool policy ------------------------------------------------------

    def check_output(self, value: int, script_pubkey: Script) -> Optional[str]:
        """Vet one output; returns a rejection reason or ``None``."""
        cls = classify_output(script_pubkey)
        self.stats.output_classes[cls] = \
            self.stats.output_classes.get(cls, 0) + 1
        if cls == OUTPUT_OP_RETURN:
            if value != 0:
                return (f"OP_RETURN output burns {value} into a provably "
                        f"unspendable data carrier")
            return None
        if not self.require_standard_outputs:
            return None
        if cls not in STANDARD_OUTPUT_CLASSES:
            return (f"non-standard output class '{cls}': "
                    f"{script_pubkey.disassemble()[:96]}")
        issue = self.analysis_for(
            script_pubkey, assume_unknown_input=True).first_rejectable()
        if issue is not None:
            return (f"'{cls}' output fails static analysis: {issue.message}")
        return None

    def check_transaction(self, tx) -> Optional[str]:
        """The mempool's standardness pre-pass; returns a reason or None.

        Purely static — touches no chain state and executes no script,
        so it runs before input resolution and signature checks.
        """
        self.stats.tx_checked += 1
        reason = self._transaction_reason(tx)
        if reason is not None:
            self.stats.tx_rejected += 1
        return reason

    def _transaction_reason(self, tx) -> Optional[str]:
        if not tx.is_coinbase:
            for index, tx_input in enumerate(tx.inputs):
                script_sig = tx_input.script_sig
                if not is_push_only(script_sig):
                    return f"input {index} unlocking script is not push-only"
                issue = self.analysis_for(script_sig,
                                          initial=(0, 0)).first_fatal
                if issue is not None:
                    return (f"input {index} unlocking script provably "
                            f"fails: {issue.message}")
                # Canonical-signature policy (the BIP 62 half of it): a
                # high-S signature is the malleable twin of a low-S one
                # the signer could have produced instead.  Consensus
                # accepts both — this is standardness only, so the
                # mempool stops malleated relays at the door.
                for element in script_sig.elements:
                    if _is_high_s_signature(element):
                        return (f"input {index} carries a non-canonical "
                                f"high-S signature")
        for index, output in enumerate(tx.outputs):
            reason = self.check_output(output.value, output.script_pubkey)
            if reason is not None:
                return f"output {index}: {reason}"
        return None

    # -- consensus-safe fast-reject ------------------------------------------

    def precheck_spend(self, unlocking: Script,
                       locking: Script) -> Optional[str]:
        """Reject a spend without executing it, when failure is provable.

        Returns a reason only when *every* execution of the pair fails —
        the interpreter would reject too, so callers on consensus paths
        may skip it.  ``None`` means "must execute to decide".
        """
        self.stats.spends_prechecked += 1
        unlock_analysis = self.analysis_for(unlocking, initial=(0, 0))
        issue = unlock_analysis.first_fatal
        if issue is not None:
            return f"unlocking script provably fails: {issue.message}"
        lock_analysis = self.analysis_for(
            locking,
            initial=(unlock_analysis.final_lo, unlock_analysis.final_hi),
        )
        issue = lock_analysis.first_fatal
        if issue is not None:
            return f"locking script provably fails: {issue.message}"
        if lock_analysis.final_hi == 0:
            return "spend provably finishes with an empty stack"
        return None
