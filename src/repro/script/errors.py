"""Script-layer exceptions."""

from __future__ import annotations

__all__ = ["ScriptError", "SerializationError", "EvaluationError"]


class ScriptError(Exception):
    """Base class for script failures."""


class SerializationError(ScriptError):
    """A script could not be encoded or decoded."""


class EvaluationError(ScriptError):
    """Script execution aborted (bad opcode, stack underflow, VERIFY fail...)."""
