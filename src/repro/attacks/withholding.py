"""Withholding misbehaviour: the two halves of the fair-exchange dilemma.

Section 4.4 frames the problem: "(1) The gateway could receive the
payment but never deliver the data.  (2) The recipient could receive the
data but never send back the payment."  In BcWAN, both misbehaviours are
*loss-free* for the honest party:

* a gateway that never claims reveals nothing; after the script locktime
  the recipient's refund branch recovers the full payment;
* a recipient that never pays never learns ``eSk`` — the data it holds is
  double-encrypted and useless, and the gateway is only out the
  forwarding effort.

These are protocol-level facts; this module stages them concretely on a
real chain so the property-based tests and the security example have an
executable artifact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.blockchain.miner import Miner
from repro.blockchain.node import FullNode
from repro.blockchain.params import ChainParams
from repro.blockchain.wallet import Wallet
from repro.core.messages import open_message, seal_message
from repro.crypto import rsa
from repro.crypto.keys import KeyPair
from repro.errors import ProtocolError

__all__ = [
    "WithholdingOutcome",
    "run_gateway_withholds_claim",
    "run_recipient_withholds_payment",
]


@dataclass(frozen=True)
class WithholdingOutcome:
    """Who ends up with what after a withholding scenario."""

    scenario: str
    recipient_lost_funds: bool
    recipient_got_plaintext: bool
    gateway_got_payment: bool


def _fresh_chain(seed: int):
    rng = random.Random(seed)
    params = ChainParams(coinbase_maturity=1)
    node = FullNode(params, "node", verify_scripts=False)
    miner_wallet = Wallet(node.chain, KeyPair.generate(rng))
    miner_wallet.watch_chain()
    miner = Miner(chain=node.chain, mempool=node.mempool,
                  reward_pubkey_hash=miner_wallet.pubkey_hash)
    for _ in range(3):
        miner.mine_and_connect(0.0)
    return rng, node, miner, miner_wallet


def run_gateway_withholds_claim(seed: int = 0,
                                refund_delta: int = 5) -> WithholdingOutcome:
    """The gateway forwards data but never claims: recipient refunds."""
    rng, node, miner, miner_wallet = _fresh_chain(seed)
    recipient_wallet = Wallet(node.chain, KeyPair.generate(rng))
    recipient_wallet.watch_chain()
    gateway_wallet = Wallet(node.chain, KeyPair.generate(rng))
    gateway_wallet.watch_chain()

    funding = miner_wallet.create_payment(recipient_wallet.pubkey_hash, 10_000)
    assert node.submit_transaction(funding).accepted
    miner.mine_and_connect(1.0)

    ephemeral = rsa.generate_keypair(512, rng)
    offer = recipient_wallet.create_key_release_offer(
        ephemeral.public_key.to_bytes(), gateway_wallet.pubkey_hash,
        amount=100, refund_locktime=node.height + refund_delta,
    )
    assert node.submit_transaction(offer.transaction).accepted
    miner.mine_and_connect(2.0)
    balance_after_offer = recipient_wallet.balance

    # The gateway goes silent.  Mine past the locktime, then refund.
    while node.height < offer.refund_locktime:
        miner.mine_and_connect(3.0)
    refund = recipient_wallet.refund_key_release(offer)
    assert node.submit_transaction(refund).accepted
    miner.mine_and_connect(4.0)
    recipient_wallet.refresh_from_utxo_set()
    gateway_wallet.refresh_from_utxo_set()

    return WithholdingOutcome(
        scenario="gateway withholds claim",
        recipient_lost_funds=recipient_wallet.balance
        < balance_after_offer + 100,  # refund restores the locked 100
        recipient_got_plaintext=False,
        gateway_got_payment=gateway_wallet.balance > 0,
    )


def run_recipient_withholds_payment(seed: int = 0) -> WithholdingOutcome:
    """The recipient takes the delivery but never creates an offer.

    Without the claim transaction there is no ``eSk`` anywhere, and the
    double-encrypted message is undecryptable — confidentiality holds,
    the recipient gains nothing by stiffing the gateway.
    """
    rng = random.Random(seed)
    symmetric_key = bytes(rng.randrange(256) for _ in range(32))
    ephemeral = rsa.generate_keypair(512, rng)

    encrypted = seal_message(b"reading-42", symmetric_key,
                             ephemeral.public_key, rng=rng)

    # The recipient holds Em and K, but not eSk.  The only decryption
    # oracle it can build without eSk is a wrong key — which must fail.
    wrong_key = rsa.generate_keypair(512, rng)
    got_plaintext = False
    try:
        open_message(encrypted, symmetric_key, wrong_key)
        got_plaintext = True  # pragma: no cover - must not happen
    except ProtocolError:
        pass

    return WithholdingOutcome(
        scenario="recipient withholds payment",
        recipient_lost_funds=False,
        recipient_got_plaintext=got_plaintext,
        gateway_got_payment=False,
    )
