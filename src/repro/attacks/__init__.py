"""Threat models from the paper's discussion (§6).

* :mod:`repro.attacks.double_spend` — the zero-confirmation race a
  malicious recipient can win;
* :mod:`repro.attacks.withholding` — both halves of the fair-exchange
  dilemma, shown loss-free under BcWAN's script;
* :mod:`repro.attacks.bruteforce` — RSA-512 factoring economics
  (Valenta et al. anchor + GNFS scaling).
"""

from repro.attacks.bruteforce import (
    KeySizeEconomics,
    factoring_cost_usd,
    factoring_time_hours,
    gnfs_work,
    security_margin,
)
from repro.attacks.double_spend import DoubleSpendResult, run_double_spend
from repro.attacks.withholding import (
    WithholdingOutcome,
    run_gateway_withholds_claim,
    run_recipient_withholds_payment,
)

__all__ = [
    "DoubleSpendResult",
    "KeySizeEconomics",
    "WithholdingOutcome",
    "factoring_cost_usd",
    "factoring_time_hours",
    "gnfs_work",
    "run_double_spend",
    "run_gateway_withholds_claim",
    "run_recipient_withholds_payment",
    "security_margin",
]
