"""Man-in-the-middle gateways: why the node signs ``(Em ‖ ePk)``.

Section 5.1: "Using the shared asymmetric key with the recipient (Sk), we
insure to the recipient the authenticity of the message and that (ePk)
was the genuine ephemeral public key used in the process."

The attack the binding prevents: a malicious gateway hands the node one
key pair but presents a *different* public key to the recipient — hoping
to get paid for revealing a key that never protected anything, or to
re-wrap the data under a key it controls and sell it twice.  Because the
node's RSA signature covers both ``Em`` and the exact ``ePk`` bytes, any
substitution invalidates the signature and the recipient refuses before
locking a single unit.

:class:`MaliciousGatewayAgent` implements the substitution; the test
suite and the security example run it inside a real federation.
"""

from __future__ import annotations

from repro.core.gateway_agent import GatewayAgent
from repro.crypto import rsa
from repro.lora.frames import DataFrame
from repro.p2p.message import DeliveryMessage

__all__ = ["MaliciousGatewayAgent"]


class MaliciousGatewayAgent(GatewayAgent):
    """A gateway that substitutes its own ``ePk`` in the delivery.

    Everything up to the delivery push is honest — the node is served a
    genuine ephemeral key and encrypts against it.  At step 7 the
    gateway swaps in a *second* key pair it generated on the side,
    betting the recipient won't notice.  (It will: the signature check
    of step 8 covers the key bytes.)
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.substitutions_attempted = 0

    def _forward(self, frame: DataFrame):
        record = self.tracker.get(frame.nonce)
        if record is not None:
            record.t_data_received = self.sim.now
        pending = self._ephemeral.get(frame.nonce)
        if pending is None:
            if record is not None:
                record.status = "failed"
                record.failure_reason = "gateway lost ephemeral key state"
            return
        yield self.sim.timeout(self.cost_model.sample(
            self.cost_model.gateway_frame_handling, self.rng,
        ))
        announcement = yield self.daemon.lookup(
            lambda: self.directory.lookup(frame.recipient_address)
        )
        if announcement is None:
            if record is not None:
                record.status = "failed"
                record.failure_reason = (
                    f"no directory entry for {frame.recipient_address}"
                )
            self._ephemeral.pop(frame.nonce, None)
            return

        # The attack: generate a fresh pair and present ITS public key.
        substitute = rsa.generate_keypair(self.rsa_bits, self.rng)
        pending.ephemeral_key = substitute  # claim with the swapped key
        pending.recipient_endpoint = announcement.endpoint
        pending.quoted_price = self.pricing.quote(
            frame.recipient_address, self.daemon.queue_length,
        )
        self.substitutions_attempted += 1
        self.deliveries_forwarded += 1
        self.wan.send(self.name, announcement.endpoint, DeliveryMessage(
            delivery_id=frame.nonce,
            encrypted_message=frame.encrypted_message,
            ephemeral_pubkey=substitute.public_key.to_bytes(),
            signature=frame.signature,
            node_id=frame.sender,
            gateway_pubkey_hash=self.wallet.pubkey_hash,
            price=pending.quoted_price,
        ))
