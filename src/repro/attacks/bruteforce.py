"""RSA key-size economics (the paper's §6 trade-off, made quantitative).

"We chose RSA-512 ... This lowers the security as RSA-512 can be
brute-forced but the amount to spend in order to decrypt the data is
(nowadays) much more than the value that the foreign gateway is asking to
reveal the ephemeral private key."

The cost model anchors on the paper's own citation, *Factoring as a
Service* (Valenta et al., FC'16): RSA-512 factored for ~$75 in ~4 hours
on EC2.  Larger moduli scale by the General Number Field Sieve complexity

    L(n) = exp((64/9)^(1/3) * (ln n)^(1/3) * (ln ln n)^(2/3)).

The security margin of an exchange is then the ratio of factoring cost to
the value protected — a message worth a 100-unit micropayment is safe
behind RSA-512 exactly as the paper argues, while the same key size would
be reckless for high-value payloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "gnfs_work",
    "factoring_cost_usd",
    "factoring_time_hours",
    "security_margin",
    "KeySizeEconomics",
]

# Calibration anchors from Valenta et al. (FC'16).
_ANCHOR_BITS = 512
_ANCHOR_COST_USD = 75.0
_ANCHOR_HOURS = 4.0


def gnfs_work(bits: int) -> float:
    """GNFS heuristic complexity for factoring a ``bits``-bit modulus."""
    if bits < 128:
        raise ConfigurationError(f"modulus too small to model: {bits} bits")
    ln_n = bits * math.log(2)
    ln_ln_n = math.log(ln_n)
    return math.exp(
        (64.0 / 9.0) ** (1.0 / 3.0) * ln_n ** (1.0 / 3.0) * ln_ln_n ** (2.0 / 3.0)
    )


def factoring_cost_usd(bits: int) -> float:
    """Estimated cloud cost (USD) to factor a ``bits``-bit RSA modulus."""
    return _ANCHOR_COST_USD * gnfs_work(bits) / gnfs_work(_ANCHOR_BITS)


def factoring_time_hours(bits: int, parallelism: float = 1.0) -> float:
    """Estimated wall time at the anchor's fleet size, scaled by GNFS."""
    if parallelism <= 0:
        raise ConfigurationError(f"parallelism must be positive: {parallelism}")
    return (_ANCHOR_HOURS * gnfs_work(bits)
            / gnfs_work(_ANCHOR_BITS) / parallelism)


def security_margin(bits: int, protected_value_usd: float) -> float:
    """Ratio of attack cost to protected value (> 1 means uneconomical)."""
    if protected_value_usd <= 0:
        raise ConfigurationError(
            f"protected value must be positive: {protected_value_usd}"
        )
    return factoring_cost_usd(bits) / protected_value_usd


@dataclass(frozen=True)
class KeySizeEconomics:
    """One row of the key-size ablation: cost, payload, airtime."""

    bits: int
    factoring_cost_usd: float
    lora_payload_bytes: int
    economical_to_attack_at_usd: float

    @classmethod
    def for_bits(cls, bits: int) -> "KeySizeEconomics":
        """Summarize one RSA modulus size.

        ``lora_payload_bytes`` is the BcWAN data-frame payload: one RSA
        block of wrapped ciphertext plus one RSA block of signature plus
        the 4-byte header (the paper's 128 + 4 at 512 bits).
        """
        block = (bits + 7) // 8
        return cls(
            bits=bits,
            factoring_cost_usd=factoring_cost_usd(bits),
            lora_payload_bytes=2 * block + 4,
            economical_to_attack_at_usd=factoring_cost_usd(bits),
        )
