"""The double-spend attack of the paper's discussion (§6).

"In BcWAN we chose to allow the foreign gateway to not wait for
confirmation of the recipient transaction before providing the ephemeral
private key.  This can be a security threat as a malicious user could
double spend this transaction. ... the recipient can retrieve the
ephemeral private key necessary to decipher the encrypted data without
rewarding the foreign gateway."

:func:`run_double_spend` stages exactly that race at the blockchain
level: a malicious recipient broadcasts the key-release offer to the
gateway while racing a conflicting spend of the same coin to the miner.
If the gateway claims at zero confirmations, its claim dies with the
offer when the conflicting transaction is mined — but its claim already
published ``eSk``.  With ``confirmations_required >= 1`` the gateway only
reveals after the offer is buried, and the attack fails.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.blockchain.miner import Miner
from repro.blockchain.node import FullNode
from repro.blockchain.params import ChainParams
from repro.blockchain.wallet import Wallet
from repro.crypto import rsa
from repro.crypto.keys import KeyPair

__all__ = ["DoubleSpendResult", "run_double_spend"]


@dataclass(frozen=True)
class DoubleSpendResult:
    """Outcome of one staged double-spend race."""

    confirmations_required: int
    key_revealed: bool       # did the gateway publish eSk?
    gateway_paid: bool       # does the gateway end up owning the reward?
    attacker_got_data: bool  # key revealed AND payment clawed back
    offer_confirmed: bool    # did the offer survive on the final chain?

    @property
    def attack_succeeded(self) -> bool:
        return self.attacker_got_data


def run_double_spend(confirmations_required: int = 0,
                     seed: int = 0) -> DoubleSpendResult:
    """Stage the §6 race under a given gateway confirmation policy.

    The attacker (a malicious recipient) holds a miner's ear: their
    conflicting transaction reaches the miner before the honest offer
    does — the standard race-attack assumption.
    """
    rng = random.Random(seed)
    params = ChainParams(coinbase_maturity=1)

    # One miner node (the attacker-friendly view) and one gateway node.
    miner_node = FullNode(params, "miner", verify_scripts=False)
    gateway_node = FullNode(params, "gateway", verify_scripts=False)

    miner_wallet = Wallet(miner_node.chain, KeyPair.generate(rng))
    miner_wallet.watch_chain()
    miner = Miner(chain=miner_node.chain, mempool=miner_node.mempool,
                  reward_pubkey_hash=miner_wallet.pubkey_hash)

    def sync_gateway() -> None:
        for _height, block in miner_node.chain.iter_active_blocks(1):
            if not gateway_node.chain.contains(block.hash):
                gateway_node.submit_block(block)

    # Fund the attacker (the malicious recipient).
    attacker_key = KeyPair.generate(rng)
    for _ in range(3):
        miner.mine_and_connect(0.0)
    funding = miner_wallet.create_payment(attacker_key.pubkey_hash, 10_000)
    assert miner_node.submit_transaction(funding).accepted
    miner.mine_and_connect(1.0)
    sync_gateway()

    attacker_wallet = Wallet(miner_node.chain, attacker_key)
    attacker_wallet.refresh_from_utxo_set()
    gateway_wallet = Wallet(gateway_node.chain, KeyPair.generate(rng))
    gateway_wallet.watch_chain()

    # The gateway's ephemeral pair for the message in flight.
    ephemeral = rsa.generate_keypair(512, rng)

    # Step 9: the attacker crafts the offer... and a conflicting respend
    # of the same coin back to themself.
    offer = attacker_wallet.create_key_release_offer(
        ephemeral.public_key.to_bytes(), gateway_wallet.pubkey_hash,
        amount=100,
    )
    attacker_wallet.release_pending(offer.transaction)  # free the coin
    conflicting = attacker_wallet.create_payment(attacker_key.pubkey_hash,
                                                 9_000)
    # Speculative double-spend probe: apply the conflicting spend to a
    # copy-on-write overlay and check the offer dies with it — the coin
    # can only fund one of the two, and the live UTXO set is untouched.
    assert miner_node.engine.conflicts(
        conflicting, offer.transaction, miner_node.chain.utxos,
        miner_node.chain.height + 1,
    ), "attack needs the two transactions to conflict"

    # The race: the conflicting spend reaches the miner; the offer reaches
    # the gateway.  Each node accepts the first version it sees.
    assert miner_node.submit_transaction(conflicting).accepted
    assert gateway_node.submit_transaction(offer.transaction).accepted
    assert not miner_node.submit_transaction(offer.transaction).accepted

    key_revealed = False
    claim_tx = None
    if confirmations_required == 0:
        # Paper default: claim immediately at zero confirmations.  The
        # claim transaction *is* the revelation — once broadcast, the
        # attacker reads eSk from it regardless of what gets mined.
        claim_tx = gateway_wallet.claim_key_release(offer, ephemeral.to_bytes())
        assert gateway_node.submit_transaction(claim_tx).accepted
        key_revealed = True

    # The miner mines the block containing the conflicting transaction.
    block = miner.mine_and_connect(2.0)
    gateway_node.submit_block(block)

    offer_confirmed = bool(miner_node.chain.confirmations(
        offer.transaction.txid
    ))
    if confirmations_required > 0:
        # The cautious gateway checks before revealing: the offer never
        # confirms (its coin is gone), so eSk stays secret.
        for _ in range(confirmations_required):
            block = miner.mine_and_connect(3.0)
            gateway_node.submit_block(block)
        offer_confirmed = bool(gateway_node.chain.confirmations(
            offer.transaction.txid
        ))
        if offer_confirmed:  # pragma: no cover - honest path
            claim_tx = gateway_wallet.claim_key_release(
                offer, ephemeral.to_bytes()
            )
            gateway_node.submit_transaction(claim_tx)
            key_revealed = True

    # Settle: mine a couple of blocks and see who owns what.
    for _ in range(2):
        block = miner.mine_and_connect(4.0)
        gateway_node.submit_block(block)
    gateway_wallet.refresh_from_utxo_set()
    gateway_paid = gateway_wallet.balance >= 100

    return DoubleSpendResult(
        confirmations_required=confirmations_required,
        key_revealed=key_revealed,
        gateway_paid=gateway_paid,
        attacker_got_data=key_revealed and not gateway_paid,
        offer_confirmed=offer_confirmed,
    )
