"""Deterministic discrete-event simulation substrate.

* :mod:`repro.sim.core` — the event loop, processes (generators), timeouts;
* :mod:`repro.sim.rng` — named seeded random streams;
* :mod:`repro.sim.latency` — wide-area latency models (PlanetLab-like);
The statistics helpers (``Summary``, ``histogram``) and the
``MetricsRecorder`` moved to :mod:`repro.obs`; they are re-exported here
for compatibility.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    PlanetLabLatencyMatrix,
)
from repro.sim.rng import RngRegistry
from repro.obs.stats import Summary, histogram
from repro.obs.telemetry import MetricsRecorder

__all__ = [
    "AllOf",
    "AnyOf",
    "ConstantLatency",
    "Event",
    "Interrupt",
    "LatencyModel",
    "LogNormalLatency",
    "MetricsRecorder",
    "PlanetLabLatencyMatrix",
    "Process",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Summary",
    "Timeout",
    "histogram",
]
