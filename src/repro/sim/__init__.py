"""Deterministic discrete-event simulation substrate.

* :mod:`repro.sim.core` — the event loop, processes (generators), timeouts;
* :mod:`repro.sim.rng` — named seeded random streams;
* :mod:`repro.sim.latency` — wide-area latency models (PlanetLab-like);
* :mod:`repro.sim.trace` — metric recording and summaries.
"""

from repro.sim.core import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    PlanetLabLatencyMatrix,
)
from repro.sim.rng import RngRegistry
from repro.sim.trace import MetricsRecorder, Summary, histogram

__all__ = [
    "AllOf",
    "AnyOf",
    "ConstantLatency",
    "Event",
    "Interrupt",
    "LatencyModel",
    "LogNormalLatency",
    "MetricsRecorder",
    "PlanetLabLatencyMatrix",
    "Process",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "Summary",
    "Timeout",
    "histogram",
]
