"""A deterministic discrete-event simulation kernel.

This is the testbed substrate: the paper measured on PlanetLab + AWS; we
reproduce the same message sequences over simulated time.  The kernel is a
small simpy-style engine — processes are Python generators that ``yield``
events; :class:`Simulator` owns the clock and the event queue.

Determinism rules: ties in the event queue break by insertion order, and
all randomness must flow through :mod:`repro.sim.rng` streams, so a run is
a pure function of its seed.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Simulator",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Kernel-level misuse (double-trigger, yielding a foreign event...)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence processes can wait on.

    Events move through three states: pending → triggered (scheduled to
    fire) → processed (callbacks run).  ``succeed``/``fail`` trigger the
    event; the simulator runs callbacks when the clock reaches it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state", "_cancelled")

    _PENDING, _TRIGGERED, _PROCESSED = range(3)

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._state = Event._PENDING
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        return self._state >= Event._TRIGGERED

    @property
    def processed(self) -> bool:
        return self._state == Event._PROCESSED

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger successfully; callbacks fire after ``delay``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self._state = Event._TRIGGERED
        self.sim._schedule_event(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger with an exception that propagates into waiting processes."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self._state = Event._TRIGGERED
        self.sim._schedule_event(self, delay)
        return self

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> "Event":
        """Lazily cancel: the queue keeps its entry but skips it on pop.

        A cancelled event never runs its callbacks and never counts toward
        ``events_processed``.  Cancelling is idempotent; cancelling an
        already-processed event is a misuse error.  This replaces
        re-heapifying the queue to excise entries — O(1) instead of O(n).
        """
        if self._state == Event._PROCESSED:
            raise SimulationError("cannot cancel a processed event")
        self._cancelled = True
        return self

    def _process(self) -> None:
        self._state = Event._PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)


class Timeout(Event):
    """An event that fires ``delay`` seconds after creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        self._state = Event._TRIGGERED
        sim._schedule_event(self, delay)


class Process(Event):
    """Drives a generator; the process *is* an event that fires on return.

    The generator yields :class:`Event` instances; the process resumes with
    the event's value (or the event's exception is thrown in).
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any]) -> None:
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        bootstrap = Timeout(sim, 0.0)
        bootstrap.callbacks.append(self._resume)
        self._waiting_on = bootstrap

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            return
        waiting = self._waiting_on
        if waiting is not None and not waiting.processed:
            try:
                waiting.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wakeup = Timeout(self.sim, 0.0, value=Interrupt(cause))
        wakeup.callbacks.append(self._resume_with_interrupt)

    def _resume_with_interrupt(self, event: Event) -> None:
        self._step(lambda: self._generator.throw(event.value))

    def _resume(self, event: Event) -> None:
        if event.ok:
            self._step(lambda: self._generator.send(event.value))
        else:
            self._step(lambda: self._generator.throw(event.value))

    def _step(self, advance: Callable[[], Event]) -> None:
        self._waiting_on = None
        try:
            target = advance()
        except StopIteration as stop:
            if not self.triggered:
                self.succeed(stop.value)
            return
        except Interrupt:
            # Interrupt escaped the generator: treat as silent termination.
            if not self.triggered:
                self.succeed(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}, expected Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("process yielded an event from another simulator")
        self._waiting_on = target
        if target.processed:
            # Already fired: resume on the next tick with its value.
            immediate = Timeout(self.sim, 0.0, value=target.value)
            if target.ok:
                immediate.callbacks.append(self._resume)
            else:
                immediate._ok = False
                immediate.callbacks.append(self._resume)
        else:
            target.callbacks.append(self._resume)


class AllOf(Event):
    """Fires when every child event has fired (fails fast on any failure)."""

    __slots__ = ("_remaining",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        children = list(events)
        self._remaining = len(children)
        if not children:
            self.succeed([])
            return
        for child in children:
            child.callbacks.append(lambda event, c=children: self._on_child(event, c))
            if child.processed:
                self._on_child(child, children)

    def _on_child(self, event: Event, children: list[Event]) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child.value for child in children])


class AnyOf(Event):
    """Fires when the first child event fires.

    Once the winner fires, the composite detaches its callback from every
    losing child, so slow or never-firing events don't retain a reference
    to a long-completed composite (and its captured state).
    """

    __slots__ = ("_children",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        children = list(events)
        if not children:
            raise SimulationError("AnyOf needs at least one event")
        self._children: tuple[Event, ...] = tuple(children)
        for child in children:
            child.callbacks.append(self._on_child)
            if child.processed:
                self._on_child(child)
                break

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        for child in self._children:
            if child is event:
                continue
            try:
                child.callbacks.remove(self._on_child)
            except ValueError:
                pass
        self._children = ()
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)


class Lock:
    """A FIFO mutex for processes sharing a physical resource.

    Usage inside a process::

        yield lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    def __init__(self, sim: "Simulator") -> None:
        self._sim = sim
        self._locked = False
        # deque: release() hands off to the oldest waiter in O(1);
        # a list's pop(0) is O(n) under contention.
        self._waiters: deque[Event] = deque()

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Event:
        event = self._sim.event()
        if not self._locked:
            self._locked = True
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if not self._locked:
            raise SimulationError("release() of an unlocked Lock")
        if self._waiters:
            self._waiters.popleft().succeed()
        else:
            self._locked = False


class Simulator:
    """The event loop: a clock plus a priority queue of triggered events.

    Queue entries are mutable ``[time, seq, event]`` lists recycled through
    a bounded free-list (``_spares``), so steady-state scheduling allocates
    nothing.  ``run()`` drains all entries sharing one timestamp in a tight
    inner loop, re-checking ``until`` only when the clock advances.  Both
    are pure mechanics: pops still come out in strict ``(time, seq)`` order,
    so the seed kernel's equal-time insertion-order tie-break is preserved
    exactly (pinned by ``tests/sim/test_event_order_determinism.py``).

    Set ``obs`` to a :class:`repro.obs.profile.HotPathProfiler` to account
    wall-clock time under the ``sim.run`` site; disabled cost is one
    attribute load and a branch.
    """

    # Free-list cap: big enough to absorb a gossip burst's entries, small
    # enough that a transient spike doesn't pin memory forever.
    _SPARES_MAX = 1024

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[list] = []
        self._counter = itertools.count()
        self._spares: list[list] = []
        self.events_processed = 0
        self.obs = None  # optional HotPathProfiler

    # -- event factories -----------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def lock(self) -> Lock:
        return Lock(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past: {time} < {self.now}")
        event = self.timeout(time - self.now)
        event.callbacks.append(lambda _event: callback())
        return event

    def call_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` seconds."""
        event = self.timeout(delay)
        event.callbacks.append(lambda _event: callback())
        return event

    # -- scheduling ------------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        spares = self._spares
        if spares:
            entry = spares.pop()
            entry[0] = self.now + delay
            entry[1] = next(self._counter)
            entry[2] = event
        else:
            entry = [self.now + delay, next(self._counter), event]
        heapq.heappush(self._queue, entry)

    def _recycle(self, entry: list) -> None:
        entry[2] = None  # drop the Event reference immediately
        if len(self._spares) < Simulator._SPARES_MAX:
            self._spares.append(entry)

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if the queue is empty.

        Cancelled heads are discarded here so the reported time is one an
        actual event will fire at.
        """
        queue = self._queue
        while queue and queue[0][2]._cancelled:
            self._recycle(heapq.heappop(queue))
        return queue[0][0] if queue else float("inf")

    def step(self) -> None:
        """Process exactly one live event (cancelled entries are skipped)."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            time, event = entry[0], entry[2]
            self._recycle(entry)
            if event._cancelled:
                continue
            self.now = time
            self.events_processed += 1
            event._process()
            return
        raise SimulationError("step() on an empty event queue")

    def run(self, until: Optional[float] = None,
            max_events: int = 50_000_000) -> None:
        """Run until the queue drains or the clock passes ``until``."""
        obs = self.obs
        if obs is None:
            self._run(until, max_events)
            return
        t0 = obs.clock()
        try:
            self._run(until, max_events)
        finally:
            obs.observe("sim.run", obs.clock() - t0)

    def _run(self, until: Optional[float], max_events: int) -> None:
        queue = self._queue
        pop = heapq.heappop
        recycle = self._recycle
        remaining = max_events
        while queue:
            head = queue[0]
            if head[2]._cancelled:
                # Dead head: discard without advancing the clock, so a
                # timestamp holding only cancelled entries is invisible.
                recycle(pop(queue))
                continue
            time = head[0]
            if until is not None and time > until:
                self.now = until
                return
            self.now = time
            # Batched same-sim-time delivery: drain every entry stamped
            # `time` without touching `until`/`now` again.  Events scheduled
            # *during* the drain at this same timestamp carry later seqs, so
            # the heap hands them back within this inner loop in exactly the
            # order the seed kernel would have.
            while queue and queue[0][0] == time:
                entry = pop(queue)
                event = entry[2]
                recycle(entry)
                if event._cancelled:
                    continue
                self.events_processed += 1
                event._process()
                remaining -= 1
                if remaining <= 0:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway simulation?"
                    )
        if until is not None:
            self.now = max(self.now, until)
