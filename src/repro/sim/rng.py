"""Named, seeded random streams.

Every source of randomness in a simulation draws from its own named
stream, all derived from one master seed.  This keeps runs reproducible
*and* decoupled: adding draws to the "lora" stream cannot perturb the
"network" stream.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry"]


class RngRegistry:
    """A factory of independent ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        digest = hashlib.sha256(
            f"{self.master_seed}:{name}".encode("utf-8")
        ).digest()
        stream = random.Random(int.from_bytes(digest[:8], "big"))
        self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of this one's."""
        digest = hashlib.sha256(
            f"{self.master_seed}/fork:{name}".encode("utf-8")
        ).digest()
        return RngRegistry(master_seed=int.from_bytes(digest[:8], "big"))
