"""Deprecated re-export shim — the real home is :mod:`repro.obs`.

:class:`Summary` and :func:`histogram` live in :mod:`repro.obs.stats`;
``MetricsRecorder`` lives in :mod:`repro.obs.telemetry`.  This module
only keeps the historical ``repro.sim.trace`` import path importable;
the ``deprecated-shim`` lint rule forbids new in-repo imports of it.
"""

from __future__ import annotations

from repro.obs.stats import Summary, histogram

__all__ = ["MetricsRecorder", "Summary", "histogram"]


def __getattr__(name: str):
    # Resolved lazily (PEP 562) to avoid importing the full telemetry
    # surface just to touch the statistics helpers.
    if name == "MetricsRecorder":
        from repro.obs.telemetry import MetricsRecorder
        return MetricsRecorder
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
