"""Wide-area link latency models.

The paper ran its gateways on five PlanetLab nodes and a master on AWS
EC2; inter-site latency dominates the no-verification exchange time.
PlanetLab RTTs are famously heavy-tailed, which the lognormal model here
captures; the latency matrix assigns each site pair its own distribution,
seeded deterministically.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Protocol

from repro.errors import ConfigurationError

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "LogNormalLatency",
    "PlanetLabLatencyMatrix",
]


class LatencyModel(Protocol):
    """One-way delay, in seconds, for a message between two endpoints."""

    def sample(self, source: str, destination: str,
               rng: random.Random) -> float:
        ...


@dataclass(frozen=True)
class ConstantLatency:
    """Fixed one-way delay (useful in tests)."""

    delay: float = 0.05

    def sample(self, source: str, destination: str,
               rng: random.Random) -> float:
        return 0.0 if source == destination else self.delay


@dataclass(frozen=True)
class LogNormalLatency:
    """Lognormal one-way delay with a propagation floor.

    :param median: median one-way delay in seconds.
    :param sigma: lognormal shape (0.3-0.6 matches wide-area measurements).
    :param floor: minimum physically-possible delay.
    """

    median: float = 0.040
    sigma: float = 0.45
    floor: float = 0.004

    def __post_init__(self) -> None:
        if self.median <= 0 or self.sigma < 0 or self.floor < 0:
            raise ConfigurationError(
                f"invalid lognormal latency: median={self.median}, "
                f"sigma={self.sigma}, floor={self.floor}"
            )

    def sample(self, source: str, destination: str,
               rng: random.Random) -> float:
        if source == destination:
            return 0.0
        mu = math.log(self.median)
        return max(self.floor, rng.lognormvariate(mu, self.sigma))


class PlanetLabLatencyMatrix:
    """Per-pair lognormal delays over a set of named sites.

    Each unordered site pair gets a median drawn once (deterministically
    from ``seed``) from ``median_range``, then per-message jitter is
    lognormal around that median — approximating the stable-but-distinct
    RTTs between PlanetLab sites.
    """

    def __init__(self, sites: list[str], seed: int = 0,
                 median_range: tuple[float, float] = (0.020, 0.120),
                 sigma: float = 0.35, floor: float = 0.004) -> None:
        if median_range[0] <= 0 or median_range[0] > median_range[1]:
            raise ConfigurationError(f"bad median range: {median_range}")
        self.sites = list(sites)
        self.sigma = sigma
        self.floor = floor
        seeder = random.Random(seed)
        self._medians: dict[frozenset[str], float] = {}
        for i, a in enumerate(self.sites):
            for b in self.sites[i + 1:]:
                self._medians[frozenset((a, b))] = seeder.uniform(*median_range)
        self._default_range = median_range
        self._seeder = seeder

    def median_for(self, source: str, destination: str) -> float:
        """The stable median delay between two sites (creating if new)."""
        key = frozenset((source, destination))
        median = self._medians.get(key)
        if median is None:
            median = self._seeder.uniform(*self._default_range)
            self._medians[key] = median
        return median

    def sample(self, source: str, destination: str,
               rng: random.Random) -> float:
        if source == destination:
            return 0.0
        median = self.median_for(source, destination)
        return max(self.floor, rng.lognormvariate(math.log(median), self.sigma))
