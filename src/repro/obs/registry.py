"""The central metrics store: labeled counters, gauges and histograms.

One :class:`MetricsRegistry` per scenario.  Instruments are registered
by name; labeled instruments fan out into children keyed by their label
values, with a hard cardinality bound per instrument — past the bound,
further label sets collapse into a reserved ``__overflow__`` child so a
buggy label (say, a txid) can never grow the registry without bound.

``snapshot()`` is the single canonical read shape: a plain dict of
sorted ``name{k=v,...}`` series, suitable both for tests and for the
deterministic JSONL export.  :class:`StatsView` wraps one subset of the
snapshot behind a read-only mapping for the uniform ``stats()``
accessors on daemons, sync agents, gossip nodes and the chaos injector.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Mapping
from typing import Optional

from repro.errors import ConfigurationError

__all__ = ["Instrument", "MetricsRegistry", "StatsView"]

_KINDS = ("counter", "gauge", "histogram")
_OVERFLOW = "__overflow__"


class _Cell:
    """One concrete time series: an instrument at one label set."""

    __slots__ = ("kind", "_value", "_count", "_sum", "_min", "_max")

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._value = 0.0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def inc(self, amount: float = 1.0) -> None:
        if self.kind not in ("counter", "gauge"):
            raise ConfigurationError("inc() is for counters and gauges")
        self._value += amount

    def set(self, value: float) -> None:
        if self.kind != "gauge":
            raise ConfigurationError("set() is for gauges")
        self._value = value

    def observe(self, value: float) -> None:
        if self.kind != "histogram":
            raise ConfigurationError("observe() is for histograms")
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    @property
    def value(self) -> float:
        if self.kind == "histogram":
            raise ConfigurationError("histograms have no scalar value; "
                                     "use summary()")
        return self._value

    def summary(self) -> dict[str, float]:
        if self.kind != "histogram":
            raise ConfigurationError("summary() is for histograms")
        if self._count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0,
                    "max": 0.0, "mean": 0.0}
        return {"count": self._count, "sum": self._sum,
                "min": self._min, "max": self._max,
                "mean": self._sum / self._count}


class Instrument:
    """A named metric; labeled instruments hold one child per label set."""

    __slots__ = ("name", "kind", "labelnames", "_registry", "_children")

    def __init__(self, name: str, kind: str,
                 labelnames: tuple[str, ...],
                 registry: "MetricsRegistry") -> None:
        self.name = name
        self.kind = kind
        self.labelnames = labelnames
        self._registry = registry
        self._children: dict[tuple[str, ...], _Cell] = {}
        if not labelnames:
            self._children[()] = _Cell(kind)

    def labels(self, **label_values: object) -> _Cell:
        if tuple(sorted(label_values)) != tuple(sorted(self.labelnames)):
            raise ConfigurationError(
                f"instrument {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(label_values))}")
        key = tuple(str(label_values[name]) for name in self.labelnames)
        cell = self._children.get(key)
        if cell is None:
            if len(self._children) >= self._registry.max_label_sets:
                self._registry.label_overflows += 1
                key = tuple(_OVERFLOW for _ in self.labelnames)
                cell = self._children.get(key)
                if cell is None:
                    cell = self._children[key] = _Cell(self.kind)
                return cell
            cell = self._children[key] = _Cell(self.kind)
        return cell

    # Unlabeled instruments act directly as their single cell.

    def _sole(self) -> _Cell:
        if self.labelnames:
            raise ConfigurationError(
                f"instrument {self.name!r} is labeled; call .labels() first")
        return self._children[()]

    def inc(self, amount: float = 1.0) -> None:
        self._sole().inc(amount)

    def set(self, value: float) -> None:
        self._sole().set(value)

    def observe(self, value: float) -> None:
        self._sole().observe(value)

    @property
    def value(self) -> float:
        return self._sole().value

    def summary(self) -> dict[str, float]:
        return self._sole().summary()

    def series(self) -> Iterator[tuple[str, _Cell]]:
        for key in sorted(self._children):
            if self.labelnames:
                labels = ",".join(f"{name}={value}" for name, value
                                  in zip(self.labelnames, key))
                yield f"{self.name}{{{labels}}}", self._children[key]
            else:
                yield self.name, self._children[key]


def _number(value: float) -> float | int:
    """Collapse integral floats so snapshots render as ints."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


class MetricsRegistry:
    """All instruments of one scenario, under one cardinality budget."""

    def __init__(self, max_label_sets: int = 64) -> None:
        self.max_label_sets = max_label_sets
        self.label_overflows = 0
        self._instruments: dict[str, Instrument] = {}

    def _instrument(self, name: str, kind: str,
                    labelnames: tuple[str, ...]) -> Instrument:
        if kind not in _KINDS:
            raise ConfigurationError(f"unknown instrument kind {kind!r}")
        existing = self._instruments.get(name)
        if existing is not None:
            if existing.kind != kind or existing.labelnames != labelnames:
                raise ConfigurationError(
                    f"instrument {name!r} already registered as "
                    f"{existing.kind}{existing.labelnames}, "
                    f"not {kind}{labelnames}")
            return existing
        instrument = Instrument(name, kind, labelnames, self)
        self._instruments[name] = instrument
        return instrument

    def counter(self, name: str, *labelnames: str) -> Instrument:
        return self._instrument(name, "counter", labelnames)

    def gauge(self, name: str, *labelnames: str) -> Instrument:
        return self._instrument(name, "gauge", labelnames)

    def histogram(self, name: str, *labelnames: str) -> Instrument:
        return self._instrument(name, "histogram", labelnames)

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def snapshot(self) -> dict[str, dict[str, object]]:
        """The canonical read shape, fully sorted for determinism."""
        counters: dict[str, object] = {}
        gauges: dict[str, object] = {}
        histograms: dict[str, object] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            for series, cell in instrument.series():
                if instrument.kind == "counter":
                    counters[series] = _number(cell.value)
                elif instrument.kind == "gauge":
                    gauges[series] = _number(cell.value)
                else:
                    histograms[series] = {k: _number(v) for k, v
                                          in cell.summary().items()}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


class StatsView(Mapping):
    """A read-only, sorted view of one component's stats.

    The uniform return type of every ``stats()`` accessor: behaves as a
    mapping, renders as an aligned table via :meth:`format`.
    """

    def __init__(self, values: Mapping[str, object]) -> None:
        self._values = {key: values[key] for key in sorted(values)}

    def __getitem__(self, key: str) -> object:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return f"StatsView({self._values!r})"

    def as_dict(self) -> dict[str, object]:
        return dict(self._values)

    def format(self) -> str:
        if not self._values:
            return "(no stats)"
        width = max(len(key) for key in self._values)
        lines = []
        for key, value in self._values.items():
            if isinstance(value, float):
                rendered = f"{value:.6g}"
            else:
                rendered = str(value)
            lines.append(f"{key:<{width}}  {rendered}")
        return "\n".join(lines)
