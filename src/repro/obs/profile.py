"""Wall-clock hot-path profiling, kept apart from sim-time tracing.

The tracer measures *simulated* seconds; this module measures *host*
nanoseconds spent inside the repo's hot paths (script verification,
interpreter execution, mempool accept, sync batch apply).  The two must
never mix: host timings differ between machines and runs, so they are
excluded from the deterministic JSONL export by construction — nothing
in :mod:`repro.obs.export` reads a profiler.

The cost contract is that a *disabled* hot path pays one attribute load
and one branch (``if self.obs is None``) — the callers keep their PR 1
bodies verbatim behind that guard, and the microbench guard in
``benchmarks/test_obs_overhead.py`` pins it.
"""

from __future__ import annotations

import time

__all__ = ["HotPathProfiler"]


class _Acc:
    __slots__ = ("calls", "total_ns", "min_ns", "max_ns")

    def __init__(self) -> None:
        self.calls = 0
        self.total_ns = 0
        self.min_ns: int | None = None
        self.max_ns = 0

    def add(self, elapsed_ns: int) -> None:
        self.calls += 1
        self.total_ns += elapsed_ns
        if self.min_ns is None or elapsed_ns < self.min_ns:
            self.min_ns = elapsed_ns
        if elapsed_ns > self.max_ns:
            self.max_ns = elapsed_ns


class HotPathProfiler:
    """Accumulates per-site wall-clock timings.

    Usage at an instrumented site::

        t0 = profiler.clock()
        ...  # the hot body
        profiler.observe("engine.verify_input_script", profiler.clock() - t0)
    """

    def __init__(self) -> None:
        self._sites: dict[str, _Acc] = {}

    @staticmethod
    def clock() -> int:
        return time.perf_counter_ns()

    def observe(self, name: str, elapsed_ns: int) -> None:
        acc = self._sites.get(name)
        if acc is None:
            acc = self._sites[name] = _Acc()
        acc.add(elapsed_ns)

    def snapshot(self) -> dict[str, dict[str, float]]:
        out: dict[str, dict[str, float]] = {}
        for name in sorted(self._sites):
            acc = self._sites[name]
            out[name] = {
                "calls": acc.calls,
                "total_us": acc.total_ns / 1e3,
                "mean_us": (acc.total_ns / acc.calls / 1e3
                            if acc.calls else 0.0),
                "min_us": (acc.min_ns or 0) / 1e3,
                "max_us": acc.max_ns / 1e3,
            }
        return out

    def format(self) -> str:
        snap = self.snapshot()
        if not snap:
            return "(no hot-path samples)"
        width = max(len(name) for name in snap)
        lines = [f"{'site':<{width}}  {'calls':>8}  {'mean us':>10}  "
                 f"{'total us':>12}"]
        for name, row in snap.items():
            lines.append(f"{name:<{width}}  {row['calls']:>8.0f}  "
                         f"{row['mean_us']:>10.2f}  {row['total_us']:>12.1f}")
        return "\n".join(lines)
