"""Per-exchange instrumentation.

An :class:`ExchangeRecord` tracks one Fig. 3 exchange through every leg;
the :class:`ExchangeTracker` is the shared registry agents stamp as the
protocol progresses.  The paper's headline metric is
``t_decrypted - t_epk_sent`` — "from the first message from the gateway to
the decryption of the message by the recipient" (section 5.2).

When the tracker is given a :class:`~repro.obs.tracing.Tracer`, each
exchange also becomes one *trace*: a root ``exchange`` span plus four
contiguous ``leg.*`` child spans (uplink / publication / payment /
decryption) that the breakdown in :mod:`repro.obs.export` summarises.

Historically this lived in ``repro.core.metrics``; that shim has been
removed and the observability layer is the one home.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.stats import Summary
from repro.obs.tracing import NULL_TRACER, Span, Tracer

__all__ = ["ExchangeRecord", "ExchangeTracker"]


@dataclass
class ExchangeRecord:
    """Timestamps (simulation seconds) for one exchange; None = not reached."""

    exchange_id: int
    node_id: str
    gateway: str = ""
    recipient: str = ""
    plaintext: bytes = b""

    t_request: Optional[float] = None        # node uplinks the key request
    t_keygen_done: Optional[float] = None    # gateway has the ephemeral pair
    t_epk_sent: Optional[float] = None       # gateway starts the ePk downlink
    t_epk_received: Optional[float] = None   # node has ePk
    t_data_sent: Optional[float] = None      # node finishes the data uplink
    t_data_received: Optional[float] = None  # gateway has (Em, Sig, @R)
    t_delivered: Optional[float] = None      # recipient got the TCP delivery
    t_offer_sent: Optional[float] = None     # offer tx broadcast (step 9)
    t_claim_seen: Optional[float] = None     # recipient saw the claim tx
    t_decrypted: Optional[float] = None      # plaintext recovered (end)

    status: str = "pending"                  # pending/completed/failed
    failure_reason: str = ""
    price: int = 0
    decrypted: bytes = b""

    # Tracing context: the root span of this exchange's trace and the
    # currently-open leg spans by name.  Excluded from comparisons.
    trace: Any = field(default=None, repr=False, compare=False)
    legs: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def completed(self) -> bool:
        return self.status == "completed"

    @property
    def latency(self) -> Optional[float]:
        """The paper's metric: first gateway message → recipient decryption."""
        if self.t_epk_sent is None or self.t_decrypted is None:
            return None
        return self.t_decrypted - self.t_epk_sent

    @property
    def radio_time(self) -> Optional[float]:
        if self.t_epk_sent is None or self.t_data_received is None:
            return None
        return self.t_data_received - self.t_epk_sent

    @property
    def settlement_time(self) -> Optional[float]:
        """Delivery → decryption: the blockchain fair-exchange leg."""
        if self.t_delivered is None or self.t_decrypted is None:
            return None
        return self.t_decrypted - self.t_delivered


class ExchangeTracker:
    """Registry of all exchanges in a run.

    With a tracer attached, the tracker doubles as the span lifecycle
    owner for exchange traces: agents call :meth:`begin_leg` /
    :meth:`end_leg` at the protocol steps, and :meth:`complete` /
    :meth:`fail` guarantee no leg span outlives its exchange — a failed
    exchange closes its open legs with ``status="lost"``.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self._records: dict[int, ExchangeRecord] = {}
        self._ids = itertools.count(1)
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def new_exchange(self, node_id: str, plaintext: bytes) -> ExchangeRecord:
        record = ExchangeRecord(
            exchange_id=next(self._ids), node_id=node_id, plaintext=plaintext,
        )
        record.trace = self.tracer.span(
            "exchange", exchange_id=record.exchange_id, node=node_id)
        self._records[record.exchange_id] = record
        return record

    # -- span lifecycle ----------------------------------------------------------

    def begin_leg(self, record: ExchangeRecord, leg: str,
                  start: Optional[float] = None, **attrs: Any) -> Span:
        """Open ``leg.<leg>`` under the exchange's root span.  Idempotent:
        a duplicate frame re-entering a step reuses the open span."""
        existing = record.legs.get(leg)
        if existing is not None:
            return existing
        span = self.tracer.span(f"leg.{leg}", parent=record.trace,
                                start=start, **attrs)
        record.legs[leg] = span
        return span

    def end_leg(self, record: ExchangeRecord, leg: str,
                status: str = "ok", at: Optional[float] = None,
                **attrs: Any) -> None:
        span = record.legs.pop(leg, None)
        if span is not None:
            span.end(status, at=at, **attrs)

    def leg(self, record: ExchangeRecord, leg: str) -> Optional[Span]:
        return record.legs.get(leg)

    def complete(self, record: ExchangeRecord) -> None:
        record.status = "completed"
        self._close(record, leg_status="ok", root_status="ok")

    def fail(self, record: ExchangeRecord, reason: str) -> None:
        """Mark failed; any leg still in flight is closed ``lost``."""
        record.status = "failed"
        record.failure_reason = reason
        self._close(record, leg_status="lost", root_status="failed",
                    reason=reason)

    def _close(self, record: ExchangeRecord, leg_status: str,
               root_status: str, **attrs: Any) -> None:
        for leg in list(record.legs):
            self.end_leg(record, leg, status=leg_status, **attrs)
        if record.trace is not None:
            record.trace.end(root_status, **attrs)

    # -- queries -----------------------------------------------------------------

    def get(self, exchange_id: int) -> Optional[ExchangeRecord]:
        return self._records.get(exchange_id)

    def records(self) -> list[ExchangeRecord]:
        return list(self._records.values())

    def completed(self) -> list[ExchangeRecord]:
        return [r for r in self._records.values() if r.completed]

    def failed(self) -> list[ExchangeRecord]:
        return [r for r in self._records.values() if r.status == "failed"]

    def latencies(self) -> list[float]:
        return [r.latency for r in self.completed() if r.latency is not None]

    def latency_summary(self) -> Summary:
        """Latency statistics; the zero-exchange case yields the
        well-defined empty :class:`Summary` (count 0, NaN-free) so a run
        that completes nothing still reports instead of crashing."""
        return Summary.of(self.latencies())

    def completion_rate(self) -> float:
        total = len(self._records)
        return len(self.completed()) / total if total else 0.0
