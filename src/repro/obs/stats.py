"""Descriptive statistics over metric samples.

:class:`Summary` computes the statistics the benchmark harness prints
(mean, percentiles, histogram) — the numbers behind the paper's Figs. 5/6.
Historically these lived in ``repro.sim.trace``; that shim has been
removed and the observability layer is the one home.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["Summary", "histogram"]


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics over one metric's samples."""

    count: int
    mean: float
    stdev: float
    minimum: float
    p25: float
    median: float
    p75: float
    p95: float
    p99: float
    maximum: float

    @classmethod
    def empty(cls) -> "Summary":
        """The zero-sample summary: count 0, every statistic 0.0.

        A run with no completed exchanges is a legitimate outcome (e.g. a
        fully partitioned network ablation); reports must render it as a
        0% completion rate, not crash.
        """
        return cls(count=0, mean=0.0, stdev=0.0, minimum=0.0, p25=0.0,
                   median=0.0, p75=0.0, p95=0.0, p99=0.0, maximum=0.0)

    @classmethod
    def of(cls, samples: list[float]) -> "Summary":
        if not samples:
            return cls.empty()
        ordered = sorted(samples)
        n = len(ordered)
        mean = sum(ordered) / n
        variance = sum((x - mean) ** 2 for x in ordered) / n if n > 1 else 0.0
        return cls(
            count=n,
            mean=mean,
            stdev=math.sqrt(variance),
            minimum=ordered[0],
            p25=_quantile(ordered, 0.25),
            median=_quantile(ordered, 0.50),
            p75=_quantile(ordered, 0.75),
            p95=_quantile(ordered, 0.95),
            p99=_quantile(ordered, 0.99),
            maximum=ordered[-1],
        )

    def to_dict(self) -> dict[str, float]:
        """A JSON-safe mapping of every statistic.

        The contract the sweep runner relies on: values are always finite
        (``json.dumps(..., allow_nan=False)`` never raises), and the
        zero-sample summary serializes as explicit ``count: 0`` zeros
        rather than NaN.
        """
        row = {
            "count": self.count, "mean": self.mean, "stdev": self.stdev,
            "min": self.minimum, "p25": self.p25, "median": self.median,
            "p75": self.p75, "p95": self.p95, "p99": self.p99,
            "max": self.maximum,
        }
        for key, value in row.items():
            if not math.isfinite(value):
                raise ValueError(f"non-finite summary statistic {key}={value}")
        return row

    def format(self, unit: str = "s") -> str:
        if self.count == 0:
            return "n=0 (no samples)"
        return (
            f"n={self.count} mean={self.mean:.3f}{unit} "
            f"median={self.median:.3f}{unit} p95={self.p95:.3f}{unit} "
            f"p99={self.p99:.3f}{unit} max={self.maximum:.3f}{unit}"
        )


def _quantile(ordered: list[float], q: float) -> float:
    """Linear-interpolation quantile of pre-sorted data."""
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1 - weight) + ordered[upper] * weight


def histogram(samples: list[float], bins: int = 20,
              lo: Optional[float] = None,
              hi: Optional[float] = None) -> list[tuple[float, float, int]]:
    """Fixed-width histogram as ``(bin_lo, bin_hi, count)`` triples."""
    if not samples:
        return []
    lo = min(samples) if lo is None else lo
    hi = max(samples) if hi is None else hi
    if hi <= lo:
        return [(lo, hi, len(samples))]
    width = (hi - lo) / bins
    counts = [0] * bins
    for sample in samples:
        index = int((sample - lo) / width)
        counts[min(max(index, 0), bins - 1)] += 1
    return [(lo + i * width, lo + (i + 1) * width, counts[i]) for i in range(bins)]
