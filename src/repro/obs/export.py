"""Deterministic trace export and the Fig. 5/6 per-leg breakdown.

``export_trace_jsonl`` renders every span (in creation order — itself
deterministic) and, optionally, a registry snapshot, as canonical JSON
lines: sorted keys, no whitespace, floats straight from the sim clock.
Two runs of the same seed produce **byte-identical** output; a test
pins that.  Wall-clock profiler data is deliberately unexportable here.

``leg_breakdown`` recovers the paper's latency decomposition from the
span tree alone: the four contiguous legs of one fair exchange —

* ``leg.uplink``      — ePk downlink sent → data frame at the gateway
* ``leg.publication`` — gateway forward → recipient delivery
* ``leg.payment``     — delivery → gateway's claim tx seen on chain
* ``leg.decryption``  — claim seen → plaintext recovered

which sum, per trace, to the paper's end-to-end latency ("first message
from the gateway to the decryption of the message by the recipient",
§5.2).
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.obs.stats import Summary

__all__ = ["LEGS", "export_trace_jsonl", "format_breakdown",
           "leg_breakdown"]

LEGS = ("uplink", "publication", "payment", "decryption")


def _clean(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (list, tuple)):
        return [_clean(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _clean(item) for key, item in value.items()}
    return str(value)


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def export_trace_jsonl(tracer: Tracer,
                       registry: Optional[MetricsRegistry] = None) -> str:
    """All spans (creation order) then the metrics snapshot, as JSONL."""
    lines = []
    for span in tracer.spans:
        lines.append(_dumps({
            "kind": "span",
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "start": span.start,
            "end": span.end_time,
            "status": span.status,
            "attrs": _clean(span.attrs),
        }))
    if registry is not None:
        snapshot = registry.snapshot()
        for family in ("counters", "gauges", "histograms"):
            for series, value in snapshot[family].items():
                lines.append(_dumps({
                    "kind": "metric",
                    "family": family[:-1],
                    "series": series,
                    "value": value,
                }))
    return "\n".join(lines) + ("\n" if lines else "")


def leg_breakdown(tracer: Tracer) -> dict[str, Summary]:
    """Per-leg latency summaries from ``leg.*`` spans.

    ``total`` summarises, per trace, the sum of its four legs — only
    over traces where **all** legs closed ``ok`` (an exchange that lost
    a frame mid-flight has no well-defined end-to-end latency).
    """
    per_leg: dict[str, list[float]] = {leg: [] for leg in LEGS}
    per_trace: dict[int, dict[str, float]] = {}
    for span in tracer.spans:
        if not span.name.startswith("leg."):
            continue
        leg = span.name[len("leg."):]
        if leg not in per_leg or span.status != "ok":
            continue
        duration = span.duration
        if duration is None:
            continue
        per_leg[leg].append(duration)
        per_trace.setdefault(span.trace_id, {})[leg] = duration
    totals = [sum(legs.values()) for legs in per_trace.values()
              if len(legs) == len(LEGS)]
    out = {leg: Summary.of(samples) for leg, samples in per_leg.items()}
    out["total"] = Summary.of(totals)
    return out


def format_breakdown(tracer: Tracer) -> str:
    """The Fig. 5/6-style table, sourced entirely from spans."""
    breakdown = leg_breakdown(tracer)
    lines = [f"{'leg':<12} {'n':>5} {'mean s':>9} {'median s':>9} "
             f"{'p95 s':>9} {'max s':>9}"]
    for leg in (*LEGS, "total"):
        summary = breakdown[leg]
        lines.append(f"{leg:<12} {summary.count:>5} {summary.mean:>9.3f} "
                     f"{summary.median:>9.3f} {summary.p95:>9.3f} "
                     f"{summary.maximum:>9.3f}")
    return "\n".join(lines)
