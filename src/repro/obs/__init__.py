"""Unified observability: sim-time tracing, metrics, export, profiling.

The observability layer has four deliberately separate concerns:

* :mod:`repro.obs.registry` — a central :class:`MetricsRegistry` of
  labeled counters, gauges and histograms with one ``snapshot()`` shape.
  Every telemetry surface in the repo stores its numbers here.
* :mod:`repro.obs.tracing` — a sim-clock :class:`Tracer` producing
  nested spans with deterministic ids, used to follow one fair exchange
  (Fig. 3) or one block's life across daemons and the WAN.
* :mod:`repro.obs.export` — deterministic JSONL export (byte-identical
  for the same seed) plus the human-readable per-leg latency breakdown
  mirroring the paper's Figs. 5/6.
* :mod:`repro.obs.profile` — *wall-clock* hot-path timing hooks.  These
  are host-machine measurements and are therefore never part of the
  deterministic export.

Determinism contract: everything reachable from the JSONL export — span
ids, trace ids, sim timestamps, metric values — is a pure function of
the scenario seed.  In particular spans never record process-global
identifiers such as ``Envelope.message_id``.
"""

from repro.obs.exchange import ExchangeRecord, ExchangeTracker
from repro.obs.export import (export_trace_jsonl, format_breakdown,
                              leg_breakdown)
from repro.obs.profile import HotPathProfiler
from repro.obs.registry import Instrument, MetricsRegistry, StatsView
from repro.obs.stats import Summary, histogram
from repro.obs.telemetry import (ChaosTelemetry, DaemonStats,
                                 MetricsRecorder, ValidationTelemetry)
from repro.obs.tracing import NULL_SPAN, NULL_TRACER, Span, Tracer

__all__ = [
    "ChaosTelemetry",
    "DaemonStats",
    "ExchangeRecord",
    "ExchangeTracker",
    "HotPathProfiler",
    "Instrument",
    "MetricsRecorder",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "StatsView",
    "Summary",
    "Tracer",
    "ValidationTelemetry",
    "export_trace_jsonl",
    "format_breakdown",
    "histogram",
    "leg_breakdown",
]
