"""Sim-clock structured tracing: nested spans with deterministic ids.

A :class:`Span` records a named interval of *simulated* time with a
trace id (shared by every span of one logical operation — one fair
exchange, one block's life) and a parent pointer forming a tree.  Ids
come from per-tracer ``itertools.count`` streams, so they are a pure
function of span-creation order — which the simulator makes
deterministic — never of process-global state.

Spans are cheap by construction: when the tracer is disabled (or the
:data:`NULL_TRACER` is wired in), ``span()`` hands back the shared
:data:`NULL_SPAN` whose every method is a no-op, so instrumented code
needs no ``if tracing:`` guards of its own.

A span left open at the end of a run is a bug in the instrumentation
(the chaos tests pin this): whoever owns a span must end it, with
``status="lost"`` when the work it covers was dropped by the network,
a crash, or a stale daemon epoch.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

__all__ = ["NULL_SPAN", "NULL_TRACER", "Span", "Tracer"]


class Span:
    """One named interval of sim time inside a trace tree."""

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "start", "end_time", "status", "attrs")

    def __init__(self, tracer: "Tracer", trace_id: int, span_id: int,
                 parent_id: int, name: str, start: float,
                 attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end_time: Optional[float] = None
        self.status = "open"
        self.attrs = attrs

    def annotate(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def end(self, status: str = "ok", at: Optional[float] = None,
            **attrs: Any) -> None:
        """Close the span.  Idempotent: the first ``end()`` wins."""
        if self.end_time is not None:
            return
        self.attrs.update(attrs)
        self.status = status
        self.end_time = at if at is not None else self.tracer.now()
        if self.end_time < self.start:
            self.end_time = self.start

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"span={self.span_id}, status={self.status!r})")


class _NullSpan:
    """The do-nothing span handed out by disabled tracers."""

    __slots__ = ()
    trace_id = 0
    span_id = 0
    parent_id = 0
    name = ""
    start = 0.0
    end_time = 0.0
    status = "disabled"
    duration = 0.0

    @property
    def attrs(self) -> dict[str, Any]:
        return {}

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def end(self, status: str = "ok", at: Optional[float] = None,
            **attrs: Any) -> None:
        return None

    def __repr__(self) -> str:
        return "NULL_SPAN"

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Mints spans stamped with the simulator's clock.

    ``sim`` may be ``None`` for clock-less unit tests (spans start at
    0.0 unless given an explicit ``start``).  A disabled tracer mints
    only :data:`NULL_SPAN`, making instrumentation free when off.
    """

    def __init__(self, sim: Any = None, enabled: bool = True) -> None:
        self.sim = sim
        self.enabled = enabled
        self.spans: list[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    def now(self) -> float:
        return self.sim.now if self.sim is not None else 0.0

    def span(self, name: str, parent: Optional[Any] = None,
             start: Optional[float] = None, **attrs: Any) -> Any:
        """Open a span.  ``parent=None`` roots a fresh trace."""
        if not self.enabled:
            return NULL_SPAN
        if parent is None or parent is NULL_SPAN:
            trace_id = next(self._trace_ids)
            parent_id = 0
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(self, trace_id, next(self._span_ids), parent_id,
                    name, start if start is not None else self.now(), attrs)
        self.spans.append(span)
        return span

    def open_spans(self) -> list[Span]:
        return [span for span in self.spans if span.end_time is None]

    def by_name(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]


NULL_TRACER = Tracer(enabled=False)
