"""Registry-backed telemetry surfaces behind their historical APIs.

``DaemonStats``, ``ChaosTelemetry``, ``ValidationTelemetry`` and
``MetricsRecorder`` predate the observability layer; their attribute
APIs are load-bearing across the test suite and the experiment CLI.
This module keeps those APIs intact while moving the *storage* onto a
:class:`~repro.obs.registry.MetricsRegistry`: every counter read or
``+=`` resolves to a registry cell, so one ``registry.snapshot()`` sees
the whole scenario.

Each surface also grows the uniform ``stats()`` accessor returning a
:class:`~repro.obs.registry.StatsView` — the one blessed read path for
examples and tooling.

The old import homes (``repro.core.metrics``, ``repro.sim.trace``) have
been removed outright — the ``tools/checks`` lint hard-fails any import
of them — and the same lint forbids *new* ad-hoc counter dataclasses
outside ``repro.obs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.obs.registry import MetricsRegistry, StatsView
from repro.obs.stats import Summary

__all__ = ["ChaosTelemetry", "DaemonStats", "MetricsRecorder",
           "ValidationTelemetry"]


class _RegistryCounters:
    """Base for counter bags whose fields live in a registry.

    Subclasses declare ``_prefix``, ``_counters`` and ``_gauges``
    (tuples of field names).  Each field becomes a property reading and
    writing one registry cell, so both ``stats.x += 1`` and the
    assignment style ``stats.x = engine_value`` keep working.  When no
    registry is supplied the instance creates a private one, preserving
    the historical "independent bag of zeros" construction.
    """

    _prefix = ""
    _counters: tuple[str, ...] = ()
    _gauges: tuple[str, ...] = ()
    _labelnames: tuple[str, ...] = ()

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 **label_values: str) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._labels = {name: label_values.get(name, "")
                        for name in self._labelnames}
        self._cells: dict[str, Any] = {}
        for name in self._counters:
            self._cells[name] = self._cell("counter", name)
        for name in self._gauges:
            self._cells[name] = self._cell("gauge", name)

    def _cell(self, kind: str, name: str) -> Any:
        metric = f"{self._prefix}.{name}"
        if kind == "counter":
            instrument = self.registry.counter(metric, *self._labelnames)
        else:
            instrument = self.registry.gauge(metric, *self._labelnames)
        if self._labelnames:
            return instrument.labels(**self._labels)
        return instrument

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)

        def make_property(field_name: str, kind: str):
            def getter(self: "_RegistryCounters") -> float:
                value = self._cells[field_name].value
                if kind == "counter" or float(value).is_integer():
                    return int(value)
                return value

            def setter(self: "_RegistryCounters", value: float) -> None:
                cell = self._cells[field_name]
                if kind == "counter":
                    # Counters in the old dataclasses were assigned to
                    # directly (daemon mirrors engine numbers by ``=``),
                    # so emulate assignment with a delta.
                    cell.inc(value - cell.value)
                else:
                    cell.set(value)

            return property(getter, setter)

        for name in cls._counters:
            setattr(cls, name, make_property(name, "counter"))
        for name in cls._gauges:
            setattr(cls, name, make_property(name, "gauge"))

    def _numbers(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for name in (*self._counters, *self._gauges):
            out[name] = getattr(self, name)
        return out


class DaemonStats(_RegistryCounters):
    """Telemetry for one :class:`~repro.core.daemon.BlockchainDaemon`.

    Kept attribute-compatible with the old dataclass; additionally
    callable — ``daemon.stats()`` — returning a :class:`StatsView`, the
    uniform accessor shared with sync, gossip and chaos.
    """

    _prefix = "daemon"
    _labelnames = ("host",)
    _counters = (
        "jobs_served",
        "blocks_verified",
        "script_cache_hits",
        "script_cache_misses",
        "standardness_rejects",
        "script_fast_rejects",
        "crashes",
        "restarts",
        "jobs_lost_to_crash",
        "messages_refused_offline",
        "sync_timeouts",
        "sync_retries",
        "sync_backoff_resets",
        "max_queue_length",
    )
    _gauges = (
        "busy_time",
        "stall_time",
        "queue_wait_total",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 host: str = "") -> None:
        super().__init__(registry, host=host)
        self.chaos: Optional["ChaosTelemetry"] = None

    def mean_wait(self) -> float:
        """Mean queue wait; 0.0 on no jobs (``Summary.of([])`` style)."""
        if self.jobs_served == 0:
            return 0.0
        return self.queue_wait_total / self.jobs_served

    def __call__(self) -> StatsView:
        values: dict[str, object] = dict(self._numbers())
        values["mean_wait"] = self.mean_wait()
        return StatsView(values)


class ChaosTelemetry(_RegistryCounters):
    """Everything the chaos injector did to a run, plus the outcome.

    ``fault_log`` keeps its historical deterministic format: one
    ``t=<sim time> <kind> <detail>`` line per injected fault,
    byte-identical across same-seed runs (tests pin that).
    """

    _prefix = "chaos"
    _counters = (
        "messages_dropped",
        "messages_corrupted",
        "messages_duplicated",
        "messages_delayed",
        "partition_drops",
        "partitions_started",
        "partitions_healed",
        "crashes",
        "restarts",
        "sync_timeouts",
        "sync_retries",
        "backoff_resets",
    )

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        super().__init__(registry)
        self._faults = self.registry.counter("chaos.faults_injected", "kind")
        self.fault_log: list[str] = []
        self.reconvergence_time: Optional[float] = None

    @property
    def faults_injected(self) -> dict[str, int]:
        """Per-kind injected fault counts (a snapshot dict)."""
        out: dict[str, int] = {}
        for series, cell in self._faults.series():
            kind = series[len("chaos.faults_injected{kind="):-1]
            out[kind] = int(cell.value)
        return out

    def record_fault(self, kind: str, detail: str, now: float) -> None:
        self._faults.labels(kind=kind).inc()
        self.fault_log.append(f"t={now:.6f} {kind} {detail}")

    @property
    def total_faults(self) -> int:
        return sum(self.faults_injected.values())

    def __call__(self) -> StatsView:
        values: dict[str, object] = dict(self._numbers())
        values["total_faults"] = self.total_faults
        for kind, count in self.faults_injected.items():
            values[f"faults_injected.{kind}"] = count
        if self.reconvergence_time is not None:
            values["reconvergence_time"] = self.reconvergence_time
        return StatsView(values)

    stats = __call__


@dataclass(frozen=True)
class ValidationTelemetry:  # lint: allow(ad-hoc-telemetry) — frozen snapshot, not a live counter bag
    """A frozen snapshot of one engine's validation counters."""

    script_cache_hits: int = 0
    script_cache_misses: int = 0
    script_cache_evictions: int = 0
    standardness_tx_checked: int = 0
    standardness_tx_rejected: int = 0
    spends_prechecked: int = 0
    script_fast_rejects: int = 0
    analyses: int = 0
    analysis_cache_hits: int = 0
    output_classes: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_engine(cls, engine: Any) -> "ValidationTelemetry":
        cache = engine.cache_stats
        policy = engine.policy.stats
        return cls(
            script_cache_hits=cache.hits,
            script_cache_misses=cache.misses,
            script_cache_evictions=cache.evictions,
            standardness_tx_checked=policy.tx_checked,
            standardness_tx_rejected=policy.tx_rejected,
            spends_prechecked=policy.spends_prechecked,
            script_fast_rejects=policy.fast_rejects,
            analyses=policy.analyses,
            analysis_cache_hits=policy.analysis_cache_hits,
            output_classes=dict(policy.output_classes),
        )

    @property
    def executions_avoided(self) -> int:
        return self.script_cache_hits + self.script_fast_rejects

    def record_to(self, registry: MetricsRegistry, host: str = "") -> None:
        """Mirror this snapshot into ``registry`` gauges."""
        for name in ("script_cache_hits", "script_cache_misses",
                     "script_cache_evictions", "standardness_tx_checked",
                     "standardness_tx_rejected", "spends_prechecked",
                     "script_fast_rejects", "analyses",
                     "analysis_cache_hits"):
            gauge = registry.gauge(f"validation.{name}", "host")
            gauge.labels(host=host).set(getattr(self, name))
        classes = registry.gauge("validation.output_classes",
                                 "host", "klass")
        for klass, count in self.output_classes.items():
            classes.labels(host=host, klass=klass).set(count)

    def stats(self) -> StatsView:
        values: dict[str, object] = {
            name: getattr(self, name)
            for name in ("script_cache_hits", "script_cache_misses",
                         "script_cache_evictions", "standardness_tx_checked",
                         "standardness_tx_rejected", "spends_prechecked",
                         "script_fast_rejects", "analyses",
                         "analysis_cache_hits")
        }
        values["executions_avoided"] = self.executions_avoided
        for klass, count in self.output_classes.items():
            values[f"output_classes.{klass}"] = count
        return StatsView(values)


class MetricsRecorder:
    """Free-form experiment metrics, now stored in a registry.

    The historical API — ``record``/``mark``/``count``/``summary`` —
    is preserved; samples additionally feed registry histograms and
    counts feed registry counters, so ad-hoc experiment numbers appear
    in the same ``snapshot()`` as everything else.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.samples: dict[str, list[float]] = {}
        self.events: list[tuple[float, str, dict]] = []
        self.counters: dict[str, int] = {}

    def record(self, metric: str, value: float) -> None:
        self.samples.setdefault(metric, []).append(value)
        self.registry.histogram(f"recorder.{metric}").observe(value)

    def mark(self, time: float, label: str, **details: Any) -> None:
        self.events.append((time, label, details))

    def count(self, counter: str, delta: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + delta
        self.registry.counter(f"recorder.{counter}").inc(delta)

    def summary(self, metric: str) -> Summary:
        series = self.samples.get(metric)
        if not series:
            raise KeyError(f"no samples recorded for metric {metric!r}")
        return Summary.of(series)

    def has(self, metric: str) -> bool:
        return bool(self.samples.get(metric))

    def stats(self) -> StatsView:
        values: dict[str, object] = dict(self.counters)
        for name, samples in self.samples.items():
            values[f"{name}.count"] = len(samples)
            values[f"{name}.mean"] = Summary.of(samples).mean
        return StatsView(values)
