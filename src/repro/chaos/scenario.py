"""Canned federation scenarios for chaos runs.

:func:`build_federation` assembles the standard test mesh — N gateway
daemons on one WAN, fully connected gossip, a :class:`SyncAgent` each —
from a single seed, so chaos tests and benchmarks share one deterministic
construction instead of re-wiring daemons by hand.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.blockchain.miner import Miner
from repro.blockchain.node import FullNode
from repro.blockchain.params import ChainParams
from repro.blockchain.wallet import Wallet
from repro.chaos.faults import FaultPlan
from repro.chaos.injector import ChaosInjector
from repro.core.costmodel import CostModel
from repro.core.daemon import BlockchainDaemon
from repro.crypto.keys import KeyPair
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.p2p.network import WANetwork
from repro.p2p.sync import SyncAgent
from repro.sim.core import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.rng import RngRegistry

__all__ = ["Federation", "build_federation", "topology_mesh"]


@dataclass
class Federation:
    """One assembled gateway mesh plus its (optional) chaos injector."""

    sim: Simulator
    rngs: RngRegistry
    wan: WANetwork
    params: ChainParams
    names: list[str]
    daemons: dict[str, BlockchainDaemon]
    agents: dict[str, SyncAgent]
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    tracer: Tracer = field(default_factory=lambda: Tracer(enabled=False))
    injector: Optional[ChaosInjector] = None
    _wallets: dict[str, Wallet] = field(default_factory=dict)

    def daemon(self, name: str) -> BlockchainDaemon:
        return self.daemons[name]

    def make_miner(self, name: str, key_seed: int) -> Miner:
        """A miner on ``name``'s chain with its own reward key.

        Distinct ``key_seed`` values give distinct coinbase reward keys,
        so two partition sides mining at the same heights produce
        *different* block hashes — a genuine fork, not a coincidence.
        """
        daemon = self.daemons[name]
        wallet = Wallet(daemon.node.chain,
                        KeyPair.generate(random.Random(key_seed)))
        wallet.watch_chain()
        self._wallets[name] = wallet
        return Miner(chain=daemon.node.chain, mempool=daemon.node.mempool,
                     reward_pubkey_hash=wallet.pubkey_hash)

    def wallet(self, name: str) -> Wallet:
        return self._wallets[name]

    def run_plan(self, plan: FaultPlan,
                 watch_reconvergence: bool = True) -> ChaosInjector:
        """Install ``plan`` over this federation (before ``sim.run``)."""
        injector = ChaosInjector(self.sim, self.wan, plan,
                                 daemons=self.daemons,
                                 registry=self.registry)
        injector.install()
        if watch_reconvergence:
            injector.watch_reconvergence()
        self.injector = injector
        return injector


def build_federation(size: int = 6, seed: int = 0,
                     latency: float = 0.05,
                     loss_rate: float = 0.0,
                     sync_interval: float = 5.0,
                     params: Optional[ChainParams] = None,
                     verify_blocks: bool = False,
                     verify_scripts: bool = False,
                     tracing: bool = False,
                     regions: int = 1,
                     border_peers: int = 1) -> Federation:
    """A ``size``-gateway mesh named ``gw-0`` .. ``gw-{size-1}``.

    Defaults favour chaos testing: cheap validation (the faults under
    test are network/process faults, not script faults), deterministic
    constant latency, short sync interval so recovery happens within
    small simulated horizons.  ``tracing=True`` attaches a sim-time
    :class:`~repro.obs.tracing.Tracer` to the WAN, so envelope transits
    and per-daemon block validation produce spans.

    ``regions=1`` (the default) keeps the historical O(n²) full mesh.
    With more regions the mesh becomes topology-aware: gateways are split
    into ``regions`` contiguous groups, each group fully meshed
    internally, and each region *pair* is bridged by ``border_peers``
    designated gateways per side — so gossip degree grows with the region
    size, not the federation size.
    """
    if size < 2:
        raise ConfigurationError("a federation needs at least two gateways")
    if regions < 1:
        raise ConfigurationError(f"need at least one region, got {regions}")
    if size % regions != 0:
        raise ConfigurationError(
            f"{size} gateways do not divide evenly into {regions} regions")
    per_region = size // regions
    if regions > 1 and border_peers > per_region:
        raise ConfigurationError(
            f"{border_peers} border peers exceed the region size "
            f"{per_region}")
    sim = Simulator()
    rngs = RngRegistry(seed)
    registry = MetricsRegistry()
    tracer = Tracer(sim, enabled=tracing)
    wan = WANetwork(sim, rngs.stream("wan"),
                    latency=ConstantLatency(delay=latency),
                    loss_rate=loss_rate)
    wan.tracer = tracer
    chain_params = params or ChainParams(coinbase_maturity=1)
    cost = CostModel(jitter_sigma=0.0)
    names = [f"gw-{i}" for i in range(size)]
    daemons: dict[str, BlockchainDaemon] = {}
    agents: dict[str, SyncAgent] = {}
    for name in names:
        node = FullNode(chain_params, name, verify_scripts=verify_scripts)
        daemons[name] = BlockchainDaemon(
            sim, name, wan, node, cost, rngs.stream(f"daemon-{name}"),
            verify_blocks=verify_blocks, registry=registry)
    if regions == 1:
        # Flat: the historical full mesh, preserved exactly.
        for name in names:
            for peer in names:
                if peer != name:
                    daemons[name].gossip.connect(peer)
    else:
        for name, peer in topology_mesh(names, regions, border_peers):
            daemons[name].gossip.connect(peer)
    for name in names:
        agents[name] = SyncAgent(sim, daemons[name], interval=sync_interval)
    return Federation(sim=sim, rngs=rngs, wan=wan, params=chain_params,
                      names=names, daemons=daemons, agents=agents,
                      registry=registry, tracer=tracer)


def topology_mesh(names: list[str], regions: int,
                  border_peers: int = 1) -> list[tuple[str, str]]:
    """The directed edge list of a region-aware gossip mesh.

    Gateways are split into ``regions`` contiguous groups: full mesh
    within each group, and for every pair of regions the first
    ``border_peers`` gateways of each side are cross-connected (the
    designated border gateways).  All edges are emitted in both
    directions, deterministically ordered.
    """
    per_region = len(names) // regions
    edges: list[tuple[str, str]] = []
    for r in range(regions):
        members = names[r * per_region:(r + 1) * per_region]
        for name in members:
            for peer in members:
                if peer != name:
                    edges.append((name, peer))
    for a in range(regions):
        for b in range(a + 1, regions):
            for k in range(border_peers):
                left = names[a * per_region + k]
                right = names[b * per_region + k]
                edges.append((left, right))
                edges.append((right, left))
    return edges
