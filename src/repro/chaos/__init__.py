"""Deterministic chaos engineering for the gateway mesh.

The federation of BcWAN gateways lives on real WANs: links lose, delay,
duplicate and corrupt frames; backbones partition; daemons crash and come
back with or without their disk.  This package injects exactly those
faults into a simulation — *deterministically*, from a single seed — and
checks that the recovery machinery (anti-entropy sync with timeouts and
backoff, orphan re-evaluation, crash/restart resync) actually restores
agreement.

Layout:

- :mod:`repro.chaos.faults` — the :class:`FaultPlan` DSL (pure data);
- :mod:`repro.chaos.injector` — :class:`ChaosInjector`, which interprets
  a plan through :class:`repro.p2p.network.WANetwork` interception hooks
  and the daemon crash/restart lifecycle;
- :mod:`repro.chaos.verify` — :func:`assert_converged`, the oracle;
- :mod:`repro.chaos.scenario` — :func:`build_federation`, the canned
  N-gateway mesh chaos tests run against.
"""

from repro.chaos.faults import (
    CorruptedPayload,
    CrashEvent,
    FaultPlan,
    LatencySpike,
    LinkFault,
    Partition,
    PeerStall,
)
from repro.chaos.injector import ChaosInjector
from repro.chaos.scenario import Federation, build_federation, topology_mesh
from repro.chaos.verify import (
    ConvergenceReport,
    assert_converged,
    assert_hierarchy_converged,
    chain_digest,
    utxo_digest,
)

__all__ = [
    "FaultPlan",
    "LinkFault",
    "Partition",
    "LatencySpike",
    "PeerStall",
    "CrashEvent",
    "CorruptedPayload",
    "ChaosInjector",
    "Federation",
    "build_federation",
    "topology_mesh",
    "ConvergenceReport",
    "assert_converged",
    "assert_hierarchy_converged",
    "chain_digest",
    "utxo_digest",
]
