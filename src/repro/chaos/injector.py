"""The chaos injector: interprets a :class:`FaultPlan` against a run.

One :class:`ChaosInjector` owns a network's interception hook plus the
crash/restart schedule for its managed daemons, and funnels everything it
does into a single shared :class:`~repro.obs.telemetry.ChaosTelemetry`
(registry-backed, so a scenario's ``MetricsRegistry.snapshot()`` sees
every injected fault).

Determinism contract
--------------------

Every random draw comes from one stream derived from ``plan.seed`` (via
its own :class:`~repro.sim.rng.RngRegistry`, independent of the
scenario's registry), and draws happen in network send order — which the
simulator already makes deterministic.  Fault-log lines contain only
times, host names and payload type names (never process-global message
ids), so two runs of the same scenario and plan produce **byte-identical**
``telemetry.fault_log`` contents.  Tests pin exactly that.
"""

from __future__ import annotations

import io
from typing import TYPE_CHECKING, Optional

from repro.blockchain.node import FullNode
from repro.blockchain.store import load_chain, save_chain
from repro.chaos.faults import CorruptedPayload, FaultPlan
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, StatsView
from repro.obs.telemetry import ChaosTelemetry
from repro.p2p.message import Envelope
from repro.p2p.network import FaultDecision, WANetwork
from repro.sim.core import Simulator
from repro.sim.rng import RngRegistry

if TYPE_CHECKING:
    from repro.core.daemon import BlockchainDaemon

__all__ = ["ChaosInjector"]


class ChaosInjector:
    """Drive a fault plan through a network and a set of daemons."""

    def __init__(self, sim: Simulator, network: WANetwork, plan: FaultPlan,
                 daemons: Optional[dict[str, "BlockchainDaemon"]] = None,
                 telemetry: Optional[ChaosTelemetry] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.sim = sim
        self.network = network
        self.plan = plan
        self.daemons: dict[str, "BlockchainDaemon"] = dict(daemons or {})
        self.telemetry = (telemetry if telemetry is not None
                          else ChaosTelemetry(registry))
        # All chaos randomness hangs off the plan's seed, nothing else.
        self._rng = RngRegistry(plan.seed).stream("chaos-faults")
        # host -> serialized chain snapshot taken at crash time.
        self._snapshots: dict[str, str] = {}
        self._installed = False
        self._watcher_running = False

    # -- wiring ------------------------------------------------------------------

    def manage(self, daemon: "BlockchainDaemon") -> None:
        """Adopt a daemon: share telemetry with it (and its sync agent)."""
        self.daemons[daemon.name] = daemon
        daemon.stats.chaos = self.telemetry
        if daemon.sync_agent is not None:
            daemon.sync_agent.telemetry = self.telemetry

    def install(self) -> "ChaosInjector":
        """Hook the network and schedule every planned fault.  Idempotent."""
        if self._installed:
            return self
        if self.network.interceptor is not None:
            raise ConfigurationError(
                "network already has an interceptor; one injector per WAN"
            )
        self.network.interceptor = self._intercept
        for daemon in self.daemons.values():
            self.manage(daemon)
        for partition in self.plan.partitions:
            self.sim.call_at(partition.start,
                             lambda p=partition: self._partition_started(p))
            if partition.heal_at is not None:
                self.sim.call_at(partition.heal_at,
                                 lambda p=partition: self._partition_healed(p))
        for crash in self.plan.crashes:
            self.sim.call_at(crash.at, lambda c=crash: self._crash(c))
            if crash.restart_at is not None:
                self.sim.call_at(crash.restart_at,
                                 lambda c=crash: self._restart(c))
        self._installed = True
        return self

    # -- the interception hook ---------------------------------------------------

    def _intercept(self, envelope: Envelope) -> Optional[FaultDecision]:
        now = self.sim.now
        source, destination = envelope.source, envelope.destination
        payload_kind = type(envelope.payload).__name__
        detail = f"{source}->{destination} {payload_kind}"

        for partition in self.plan.partitions:
            if partition.severs(source, destination, now):
                self.telemetry.partition_drops += 1
                self.telemetry.messages_dropped += 1
                self.telemetry.record_fault("partition-drop", detail, now)
                return FaultDecision(drop=True, reason="partition")

        extra_delay = 0.0
        duplicates = 0
        replace_payload = None
        delayed = False
        for fault in self.plan.link_faults:
            if not fault.matches(source, destination, payload_kind, now):
                continue
            # One draw per *matching* fault, in plan order: the draw
            # sequence is a pure function of the message sequence.
            if self._rng.random() >= fault.probability:
                continue
            if fault.kind == "loss":
                self.telemetry.messages_dropped += 1
                self.telemetry.record_fault("link-loss", detail, now)
                return FaultDecision(drop=True, reason="link-loss")
            if fault.kind == "corrupt":
                replace_payload = CorruptedPayload(original_kind=payload_kind)
                self.telemetry.messages_corrupted += 1
                self.telemetry.record_fault("link-corrupt", detail, now)
            elif fault.kind == "duplicate":
                duplicates += fault.copies
                self.telemetry.messages_duplicated += fault.copies
                self.telemetry.record_fault("link-duplicate", detail, now)
            elif fault.kind == "delay":
                extra_delay += fault.extra_delay
                delayed = True
                self.telemetry.record_fault("link-delay", detail, now)
            elif fault.kind == "reorder":
                extra_delay += self._rng.random() * fault.extra_delay
                delayed = True
                self.telemetry.record_fault("link-reorder", detail, now)

        for spike in self.plan.latency_spikes:
            if spike.applies(source, destination, now):
                extra_delay += spike.extra_delay
                delayed = True
                self.telemetry.record_fault("latency-spike", detail, now)
        for stall in self.plan.stalls:
            if stall.applies(source, now):
                extra_delay += stall.extra_delay
                delayed = True
                self.telemetry.record_fault("peer-stall", detail, now)

        if delayed:
            self.telemetry.messages_delayed += 1
        if extra_delay == 0.0 and duplicates == 0 and replace_payload is None:
            return None
        return FaultDecision(extra_delay=extra_delay, duplicates=duplicates,
                             replace_payload=replace_payload,
                             reason="chaos")

    # -- scheduled faults --------------------------------------------------------

    def _partition_started(self, partition) -> None:
        self.telemetry.partitions_started += 1
        groups = "|".join(",".join(group) for group in partition.groups)
        self.telemetry.record_fault("partition-start", groups, self.sim.now)

    def _partition_healed(self, partition) -> None:
        self.telemetry.partitions_healed += 1
        groups = "|".join(",".join(group) for group in partition.groups)
        self.telemetry.record_fault("partition-heal", groups, self.sim.now)

    def _crash(self, crash) -> None:
        daemon = self.daemons.get(crash.host)
        if daemon is None or not daemon.online:
            return
        if crash.preserve_chain:
            snapshot = io.StringIO()
            save_chain(daemon.node.chain, snapshot)
            self._snapshots[crash.host] = snapshot.getvalue()
        daemon.crash()
        self.telemetry.crashes += 1
        mode = "preserve-chain" if crash.preserve_chain else "state-loss"
        self.telemetry.record_fault("crash", f"{crash.host} {mode}",
                                    self.sim.now)

    def _restart(self, crash) -> None:
        daemon = self.daemons.get(crash.host)
        if daemon is None or daemon.online:
            return
        old_chain = daemon.node.chain
        snapshot = self._snapshots.pop(crash.host, None)
        if crash.preserve_chain and snapshot is not None:
            chain = load_chain(io.StringIO(snapshot),
                               params=old_chain.params,
                               verify_scripts=old_chain.verify_scripts)
            node = FullNode(name=crash.host, chain=chain)
        else:
            node = FullNode(old_chain.params, name=crash.host,
                            verify_scripts=old_chain.verify_scripts)
        daemon.restart(node)
        self.telemetry.restarts += 1
        self.telemetry.record_fault(
            "restart", f"{crash.host} height={node.height}", self.sim.now)

    # -- reconvergence -----------------------------------------------------------

    def watch_reconvergence(self, poll: float = 1.0) -> None:
        """Record how long past the plan's horizon the mesh takes to agree.

        Starts a process that, from the last scheduled fault onward, polls
        the managed daemons until every one is online with the same tip,
        then stamps ``telemetry.reconvergence_time`` (seconds after the
        horizon; 0.0 if already converged at the horizon).
        """
        if self._watcher_running:
            return
        self._watcher_running = True
        self.sim.process(self._watch(poll))

    def _watch(self, poll: float):
        horizon = self.plan.horizon()
        if self.sim.now < horizon:
            yield self.sim.timeout(horizon - self.sim.now)
        while self.telemetry.reconvergence_time is None:
            if self._converged():
                self.telemetry.reconvergence_time = self.sim.now - horizon
                return
            yield self.sim.timeout(poll)

    def stats(self) -> StatsView:
        """The uniform observability accessor over the shared telemetry."""
        return self.telemetry.stats()

    def _converged(self) -> bool:
        daemons = list(self.daemons.values())
        if not daemons:
            return False
        if any(not daemon.online for daemon in daemons):
            return False
        tips = {daemon.node.chain.tip.hash for daemon in daemons}
        return len(tips) == 1
