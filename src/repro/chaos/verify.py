"""Convergence checking: did the federation actually heal?

`assert_converged` is the chaos suite's oracle.  It demands more than
equal heights — heights can match across divergent branches (exactly the
split-brain a partition leaves behind), so agreement is checked on the
tip hash, the full active-chain digest, and the UTXO-set digest.  Digests
are computed over canonically ordered material, so two nodes that agree
on state produce identical hex strings regardless of insertion order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

__all__ = ["ConvergenceReport", "chain_digest", "utxo_digest",
           "assert_converged", "assert_hierarchy_converged"]


def chain_digest(chain) -> str:
    """SHA-256 over the active chain's ``height:hash`` sequence."""
    hasher = hashlib.sha256()
    for height, block in chain.iter_active_blocks(start_height=0):
        hasher.update(height.to_bytes(8, "big"))
        hasher.update(block.hash)
    return hasher.hexdigest()


def utxo_digest(chain) -> str:
    """SHA-256 over the UTXO set in canonical ``(txid, index)`` order."""
    hasher = hashlib.sha256()
    entries = sorted(chain.utxos.items(),
                     key=lambda item: (item[0].txid, item[0].index))
    for outpoint, entry in entries:
        hasher.update(outpoint.txid)
        hasher.update(outpoint.index.to_bytes(8, "big"))
        # entry_hash covers the output; height/coinbase-ness are contextual
        # state two nodes must also agree on, so fold them in explicitly.
        hasher.update(entry.entry_hash)
        hasher.update(entry.height.to_bytes(8, "big"))
        hasher.update(b"\x01" if entry.is_coinbase else b"\x00")
    return hasher.hexdigest()


@dataclass(frozen=True)
class ConvergenceReport:
    """The agreed state (only produced when everyone agrees)."""

    height: int
    tip_hash: bytes
    chain_digest: str
    utxo_digest: str
    participants: tuple[str, ...]


def assert_converged(daemons, require_online: bool = True) -> ConvergenceReport:
    """Assert every daemon agrees on chain state; return the agreed state.

    ``daemons`` is an iterable of :class:`~repro.core.daemon.BlockchainDaemon`
    (or a name->daemon mapping).  Raises :class:`AssertionError` with a
    per-node state table on any disagreement — the table is the first
    thing you want when a chaos scenario fails.
    """
    if hasattr(daemons, "values"):
        daemons = list(daemons.values())
    else:
        daemons = list(daemons)
    if not daemons:
        raise AssertionError("assert_converged needs at least one daemon")

    rows = []
    for daemon in daemons:
        if require_online and not daemon.online:
            raise AssertionError(
                f"daemon {daemon.name!r} is offline; a crashed gateway "
                f"cannot have converged (pass require_online=False to "
                f"check survivors only)"
            )
        chain = daemon.node.chain
        rows.append((daemon.name, chain.height, chain.tip.hash,
                     chain_digest(chain), utxo_digest(chain)))

    reference = rows[0]
    mismatched = [row for row in rows[1:] if row[1:] != reference[1:]]
    if mismatched:
        table = "\n".join(
            f"  {name}: height={height} tip={tip.hex()[:16]}.. "
            f"chain={cdigest[:16]}.. utxo={udigest[:16]}.."
            for name, height, tip, cdigest, udigest in rows
        )
        raise AssertionError(f"federation has not converged:\n{table}")

    return ConvergenceReport(
        height=reference[1],
        tip_hash=reference[2],
        chain_digest=reference[3],
        utxo_digest=reference[4],
        participants=tuple(row[0] for row in rows),
    )


def assert_hierarchy_converged(groups, require_online: bool = True
                               ) -> dict[str, ConvergenceReport]:
    """Per-chain convergence for a hierarchical federation.

    ``groups`` maps a chain label (``"region-0"``, ``"anchor"``, …) to
    the daemons following that chain — exactly the shape
    :meth:`repro.core.network.BcWANNetwork.convergence_groups` returns.
    Each group must converge *internally*; different groups follow
    different chains and are never compared to each other.  Returns the
    per-group reports; the failing group's name prefixes any assertion
    message so a cross-shard chaos failure points at the right chain.
    """
    if not groups:
        raise AssertionError(
            "assert_hierarchy_converged needs at least one group")
    reports: dict[str, ConvergenceReport] = {}
    for label, daemons in groups.items():
        try:
            reports[label] = assert_converged(
                daemons, require_online=require_online)
        except AssertionError as exc:
            raise AssertionError(f"[{label}] {exc}") from None
    return reports
