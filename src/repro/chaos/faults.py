"""The fault-plan DSL: *what* goes wrong, *when*, declaratively.

A :class:`FaultPlan` is pure data — a seed plus lists of fault specs —
with fluent builder methods so scenarios read like prose::

    plan = (FaultPlan(seed=7)
            .partition([["gw-0", "gw-1"], ["gw-2", "gw-3"]],
                       start=10.0, heal_at=40.0)
            .lose_links(probability=0.2, start=0.0, end=60.0)
            .crash("gw-1", at=50.0, restart_at=60.0, preserve_chain=False))

Plans never touch the simulator: they are interpreted by
:class:`repro.chaos.injector.ChaosInjector`, which derives every random
draw from ``plan.seed`` alone.  The same plan against the same scenario
therefore yields a byte-identical fault schedule — determinism is the
load-bearing property here, because a chaos run that cannot be replayed
cannot be debugged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "FaultPlan",
    "LinkFault",
    "Partition",
    "LatencySpike",
    "PeerStall",
    "CrashEvent",
    "CorruptedPayload",
]

ANY = "*"


@dataclass(frozen=True)
class CorruptedPayload:
    """What a corrupted frame decodes to: recognizably garbage.

    Daemons have no handler registered for this type, so a corrupted
    message is received, pays its delivery latency, and is then ignored —
    exactly how a frame that fails its checksum behaves.
    """

    original_kind: str


@dataclass(frozen=True)
class LinkFault:
    """A probabilistic fault on directed links, active inside a window.

    ``kind`` is one of ``loss`` (drop), ``corrupt`` (payload replaced by
    :class:`CorruptedPayload`), ``duplicate`` (``copies`` extra
    deliveries), ``delay`` (fixed ``extra_delay`` seconds) or ``reorder``
    (uniform random delay in ``[0, extra_delay]`` — enough spread to
    overtake later sends).  ``source``/``destination`` of ``"*"`` match
    any host; ``payload_kinds`` (class names) of ``()`` match any payload.
    """

    kind: str
    probability: float
    source: str = ANY
    destination: str = ANY
    start: float = 0.0
    end: float = math.inf
    extra_delay: float = 0.0
    copies: int = 1
    payload_kinds: tuple[str, ...] = ()

    _KINDS = ("loss", "corrupt", "duplicate", "delay", "reorder")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"unknown link fault kind {self.kind!r}; "
                f"expected one of {self._KINDS}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], got {self.probability}"
            )
        if self.end < self.start:
            raise ConfigurationError(
                f"fault window ends ({self.end}) before it starts ({self.start})"
            )
        if self.kind in ("delay", "reorder") and self.extra_delay <= 0:
            raise ConfigurationError(
                f"{self.kind} fault needs a positive extra_delay"
            )
        if self.kind == "duplicate" and self.copies < 1:
            raise ConfigurationError("duplicate fault needs copies >= 1")

    def matches(self, source: str, destination: str, payload_kind: str,
                now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        if self.source != ANY and self.source != source:
            return False
        if self.destination != ANY and self.destination != destination:
            return False
        if self.payload_kinds and payload_kind not in self.payload_kinds:
            return False
        return True


@dataclass(frozen=True)
class Partition:
    """A network split into disjoint host groups, healed at ``heal_at``.

    While active, any message between hosts of *different* groups is
    dropped (both directions).  Hosts in no group are unaffected.
    ``heal_at=None`` means the partition never heals within the run.
    """

    groups: tuple[tuple[str, ...], ...]
    start: float
    heal_at: Optional[float] = None

    def __post_init__(self) -> None:
        if len(self.groups) < 2:
            raise ConfigurationError("a partition needs at least two groups")
        seen: set[str] = set()
        for group in self.groups:
            for host in group:
                if host in seen:
                    raise ConfigurationError(
                        f"host {host!r} appears in two partition groups"
                    )
                seen.add(host)
        if self.heal_at is not None and self.heal_at <= self.start:
            raise ConfigurationError(
                f"partition heals ({self.heal_at}) before it starts "
                f"({self.start})"
            )

    def active(self, now: float) -> bool:
        if now < self.start:
            return False
        return self.heal_at is None or now < self.heal_at

    def severs(self, source: str, destination: str, now: float) -> bool:
        if not self.active(now):
            return False
        src_group = dst_group = None
        for index, group in enumerate(self.groups):
            if source in group:
                src_group = index
            if destination in group:
                dst_group = index
        if src_group is None or dst_group is None:
            return False
        return src_group != dst_group


@dataclass(frozen=True)
class LatencySpike:
    """Extra delay on every message *to or from* ``host`` in a window."""

    host: str
    extra_delay: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.extra_delay <= 0:
            raise ConfigurationError("latency spike needs a positive delay")
        if self.end <= self.start:
            raise ConfigurationError("latency spike window is empty")

    def applies(self, source: str, destination: str, now: float) -> bool:
        if not self.start <= now < self.end:
            return False
        return self.host in (source, destination)


@dataclass(frozen=True)
class PeerStall:
    """A slow peer: its *outbound* messages crawl (GC pause, swap storm).

    Unlike a :class:`LatencySpike` this is asymmetric — the host still
    hears the network at normal speed but answers late, which is what
    starves request/response protocols and exercises sync timeouts.
    """

    host: str
    extra_delay: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.extra_delay <= 0:
            raise ConfigurationError("peer stall needs a positive delay")
        if self.end <= self.start:
            raise ConfigurationError("peer stall window is empty")

    def applies(self, source: str, now: float) -> bool:
        return self.start <= now < self.end and source == self.host


@dataclass(frozen=True)
class CrashEvent:
    """Fail-stop a gateway at ``at``; optionally restart at ``restart_at``.

    ``preserve_chain=True`` models a daemon whose block store survived
    (the chain is snapshotted via :mod:`repro.blockchain.store` and
    replayed on restart); ``False`` is total state loss — the gateway
    returns at genesis and must re-sync everything.
    """

    host: str
    at: float
    restart_at: Optional[float] = None
    preserve_chain: bool = False

    def __post_init__(self) -> None:
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ConfigurationError(
                f"restart ({self.restart_at}) not after crash ({self.at})"
            )


@dataclass
class FaultPlan:
    """A seeded, declarative schedule of faults for one run."""

    seed: int = 0
    link_faults: list = field(default_factory=list)
    partitions: list = field(default_factory=list)
    latency_spikes: list = field(default_factory=list)
    stalls: list = field(default_factory=list)
    crashes: list = field(default_factory=list)

    # -- fluent builders ---------------------------------------------------------

    def add_link_fault(self, fault: LinkFault) -> "FaultPlan":
        self.link_faults.append(fault)
        return self

    def lose_links(self, probability: float, source: str = ANY,
                   destination: str = ANY, start: float = 0.0,
                   end: float = math.inf,
                   payload_kinds: Sequence[str] = ()) -> "FaultPlan":
        return self.add_link_fault(LinkFault(
            kind="loss", probability=probability, source=source,
            destination=destination, start=start, end=end,
            payload_kinds=tuple(payload_kinds)))

    def corrupt_links(self, probability: float, source: str = ANY,
                      destination: str = ANY, start: float = 0.0,
                      end: float = math.inf,
                      payload_kinds: Sequence[str] = ()) -> "FaultPlan":
        return self.add_link_fault(LinkFault(
            kind="corrupt", probability=probability, source=source,
            destination=destination, start=start, end=end,
            payload_kinds=tuple(payload_kinds)))

    def duplicate_links(self, probability: float, copies: int = 1,
                        source: str = ANY, destination: str = ANY,
                        start: float = 0.0,
                        end: float = math.inf) -> "FaultPlan":
        return self.add_link_fault(LinkFault(
            kind="duplicate", probability=probability, copies=copies,
            source=source, destination=destination, start=start, end=end))

    def delay_links(self, probability: float, extra_delay: float,
                    source: str = ANY, destination: str = ANY,
                    start: float = 0.0, end: float = math.inf) -> "FaultPlan":
        return self.add_link_fault(LinkFault(
            kind="delay", probability=probability, extra_delay=extra_delay,
            source=source, destination=destination, start=start, end=end))

    def reorder_links(self, probability: float, spread: float,
                      source: str = ANY, destination: str = ANY,
                      start: float = 0.0, end: float = math.inf) -> "FaultPlan":
        return self.add_link_fault(LinkFault(
            kind="reorder", probability=probability, extra_delay=spread,
            source=source, destination=destination, start=start, end=end))

    def partition(self, groups: Sequence[Sequence[str]], start: float,
                  heal_at: Optional[float] = None) -> "FaultPlan":
        self.partitions.append(Partition(
            groups=tuple(tuple(group) for group in groups),
            start=start, heal_at=heal_at))
        return self

    def spike(self, host: str, extra_delay: float, start: float,
              end: float) -> "FaultPlan":
        self.latency_spikes.append(LatencySpike(
            host=host, extra_delay=extra_delay, start=start, end=end))
        return self

    def stall(self, host: str, extra_delay: float, start: float,
              end: float) -> "FaultPlan":
        self.stalls.append(PeerStall(
            host=host, extra_delay=extra_delay, start=start, end=end))
        return self

    def crash(self, host: str, at: float, restart_at: Optional[float] = None,
              preserve_chain: bool = False) -> "FaultPlan":
        self.crashes.append(CrashEvent(
            host=host, at=at, restart_at=restart_at,
            preserve_chain=preserve_chain))
        return self

    # -- inspection --------------------------------------------------------------

    def horizon(self) -> float:
        """The time of the last *scheduled* fault event.

        Probabilistic link faults with open-ended windows do not count —
        only finite bounds do.  Reconvergence is measured from here.
        """
        times = [0.0]
        for partition in self.partitions:
            times.append(partition.start)
            if partition.heal_at is not None:
                times.append(partition.heal_at)
        for crash in self.crashes:
            times.append(crash.at)
            if crash.restart_at is not None:
                times.append(crash.restart_at)
        for spike in self.latency_spikes:
            times.append(spike.end)
        for stall in self.stalls:
            times.append(stall.end)
        for fault in self.link_faults:
            for bound in (fault.start, fault.end):
                if math.isfinite(bound):
                    times.append(bound)
        return max(times)

    @property
    def empty(self) -> bool:
        return not (self.link_faults or self.partitions
                    or self.latency_spikes or self.stalls or self.crashes)
