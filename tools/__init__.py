"""Developer tooling for the BcWAN reproduction (not shipped with src)."""
